//! OpenCL C kernel-signature parsing.
//!
//! CheCL must decide, for every `clSetKernelArg` byte blob, whether it
//! holds a handle that needs CheCL→vendor translation. The paper solves
//! this by parsing each kernel's parameter list when the program is
//! created (§III-B): parameters with the address-space qualifiers
//! `__global`, `__local`, `__constant`, or of the special types
//! `image2d_t`, `image3d_t`, `sampler_t`, receive handles; everything
//! else is a by-value scalar.
//!
//! The same information drives the vendor drivers' argument resolution
//! (a real driver compiles the source and knows its parameter types),
//! so the parser lives here in `clspec` where both sides can use it.
//!
//! The parser handles comments, preprocessor-free OpenCL C, multiple
//! kernels per translation unit, non-kernel helper functions, and —
//! as the extension the paper leaves to future work — user-defined
//! `struct`s whose members contain `__global` pointers (§IV-D).

use std::collections::BTreeMap;
use std::fmt;

/// Classification of one kernel parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamKind {
    /// `__global T*` — receives a `cl_mem` handle.
    GlobalPtr,
    /// `__constant T*` — receives a `cl_mem` handle.
    ConstantPtr,
    /// `__local T*` — receives a local-memory size (NULL pointer).
    LocalPtr,
    /// `image2d_t` — receives a `cl_mem` (image) handle.
    Image2d,
    /// `image3d_t` — receives a `cl_mem` (image) handle.
    Image3d,
    /// `sampler_t` — receives a `cl_sampler` handle.
    Sampler,
    /// A by-value argument of the named type (`float`, `uint`, or a
    /// user-defined struct).
    Scalar(String),
}

impl ParamKind {
    /// `true` if arguments of this kind carry an object handle that an
    /// interposer must translate.
    pub fn is_handle(&self) -> bool {
        matches!(
            self,
            ParamKind::GlobalPtr
                | ParamKind::ConstantPtr
                | ParamKind::Image2d
                | ParamKind::Image3d
                | ParamKind::Sampler
        )
    }
}

/// One parsed kernel parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamInfo {
    /// Parameter name as written in the source.
    pub name: String,
    /// Classification.
    pub kind: ParamKind,
    /// `true` for pointer-to-const parameters (`__global const float*`):
    /// the kernel cannot write through them, which lets incremental
    /// checkpointing skip re-saving such buffers (§IV-D future work:
    /// "checking if a memory object is modified by a kernel").
    pub is_const: bool,
    /// For pointer parameters, the size in bytes of the pointee element
    /// type (`__global float4*` → 16), when the declared type is a
    /// recognized OpenCL C builtin. `None` for user-defined types —
    /// dirty-range inference must then fall back to whole-buffer.
    pub elem_bytes: Option<u64>,
    /// `true` when body analysis proved every store through this
    /// pointer is indexed by the 1-D global work-item id (or the
    /// constant 0), so an N-item launch writes at most the first
    /// `N * elem_bytes` bytes of the bound buffer. Fan-out kernels
    /// (`out[i*per+j] = …`), indirect indices and any bare use of the
    /// pointer (aliasing) all leave this `false` — dirty tracking then
    /// falls back to whole-buffer.
    pub gid_stride: bool,
}

/// Byte size of a recognized OpenCL C builtin (scalar or vector) type
/// name, e.g. `float` → 4, `uchar4` → 4, `double2` → 16. `None` for
/// anything unrecognized (user-defined structs, images, `half` with
/// exotic suffixes, ...).
pub fn builtin_elem_bytes(ty: &str) -> Option<u64> {
    let split = ty.find(|c: char| c.is_ascii_digit()).unwrap_or(ty.len());
    let (base, lanes) = ty.split_at(split);
    let lanes: u64 = if lanes.is_empty() {
        1
    } else {
        match lanes.parse::<u64>().ok()? {
            n @ (2 | 3 | 4 | 8 | 16) => n,
            _ => return None,
        }
    };
    let scalar = match base {
        "char" | "uchar" | "bool" => 1,
        "short" | "ushort" | "half" => 2,
        "int" | "uint" | "float" => 4,
        "long" | "ulong" | "double" => 8,
        "size_t" | "ptrdiff_t" | "intptr_t" | "uintptr_t" => 8,
        _ => return None,
    };
    Some(scalar * lanes)
}

/// Minimal token for the write-footprint analysis: identifiers (and
/// integer literals) vs. single-character symbols. Multi-character
/// operators (`==`, `+=`) appear as consecutive symbol tokens.
#[derive(Clone, Debug, PartialEq, Eq)]
enum BodyTok {
    Ident(String),
    Sym(char),
}

fn tokenize_body(body: &str) -> Vec<BodyTok> {
    let mut toks = Vec::new();
    let mut it = body.chars().peekable();
    while let Some(&c) = it.peek() {
        if c.is_whitespace() {
            it.next();
        } else if is_ident_char(c) {
            let mut s = String::new();
            while let Some(&c) = it.peek() {
                if is_ident_char(c) {
                    s.push(c);
                    it.next();
                } else {
                    break;
                }
            }
            toks.push(BodyTok::Ident(s));
        } else {
            toks.push(BodyTok::Sym(c));
            it.next();
        }
    }
    toks
}

/// `true` when `toks[at..]` starts with `get_global_id ( 0 )`.
fn is_gid_call(toks: &[BodyTok], at: usize) -> bool {
    matches!(
        (toks.get(at), toks.get(at + 1), toks.get(at + 2), toks.get(at + 3)),
        (
            Some(BodyTok::Ident(f)),
            Some(BodyTok::Sym('(')),
            Some(BodyTok::Ident(dim)),
            Some(BodyTok::Sym(')')),
        ) if f == "get_global_id" && dim == "0"
    )
}

/// `true` when the identifier at `k` is the target of an assignment or
/// increment/decrement (`v = …`, `v += …`, `v++`, `++v`).
fn is_assigned_at(toks: &[BodyTok], k: usize) -> bool {
    // ++v / --v
    if k >= 2 {
        if let (BodyTok::Sym(a), BodyTok::Sym(b)) = (&toks[k - 2], &toks[k - 1]) {
            if (*a == '+' && *b == '+') || (*a == '-' && *b == '-') {
                return true;
            }
        }
    }
    match (toks.get(k + 1), toks.get(k + 2)) {
        // v = … but not v == …
        (Some(BodyTok::Sym('=')), next) => !matches!(next, Some(BodyTok::Sym('='))),
        // v += … / v++ / v <<= … and friends
        (Some(BodyTok::Sym(op)), Some(BodyTok::Sym(eq)))
            if "+-*/%&|^<>".contains(*op) && (*eq == '=' || eq == op) =>
        {
            true
        }
        _ => false,
    }
}

/// Variables that provably hold `get_global_id(0)` for the whole kernel:
/// assigned from it once and never reassigned afterwards.
fn gid_variables(toks: &[BodyTok]) -> Vec<String> {
    let mut candidates: Vec<String> = Vec::new();
    for k in 0..toks.len() {
        if let BodyTok::Ident(v) = &toks[k] {
            // v = get_global_id(0), with a plain (non-compound) `=`.
            if matches!(toks.get(k + 1), Some(BodyTok::Sym('='))) && is_gid_call(toks, k + 2) {
                let compound = k > 0 && matches!(toks[k - 1], BodyTok::Sym(_));
                if !compound && !candidates.contains(v) {
                    candidates.push(v.clone());
                }
            }
        }
    }
    // Drop any candidate that is assigned more than once (loop counters
    // like `for (; i < n; i += stride)` no longer track the gid).
    candidates.retain(|v| {
        let writes = (0..toks.len())
            .filter(|&k| matches!(&toks[k], BodyTok::Ident(x) if x == v) && is_assigned_at(toks, k))
            .count();
        writes == 1
    });
    candidates
}

/// Decide whether every store through pointer parameter `param` in the
/// tokenized body is indexed by the 1-D global id (or the constant 0).
/// Bare (non-subscripted) uses of the pointer disqualify it: the kernel
/// may alias it or pass it to a helper that writes anywhere.
fn gid_stride_writes(toks: &[BodyTok], gid_vars: &[String], param: &str) -> bool {
    let mut k = 0;
    while k < toks.len() {
        if !matches!(&toks[k], BodyTok::Ident(x) if x == param) {
            k += 1;
            continue;
        }
        if !matches!(toks.get(k + 1), Some(BodyTok::Sym('['))) {
            return false; // bare use: possible aliasing
        }
        // Find the matching `]`.
        let mut depth = 1;
        let mut m = k + 2;
        while m < toks.len() && depth > 0 {
            match toks[m] {
                BodyTok::Sym('[') => depth += 1,
                BodyTok::Sym(']') => depth -= 1,
                _ => {}
            }
            m += 1;
        }
        if depth > 0 {
            return false;
        }
        let close = m - 1;
        // Is this subscript a store? `p[i] = …` (not `==`), a compound
        // assignment (`+=`, `<<=`), or `p[i]++`. Anything else —
        // including comparisons like `p[i] <= n` — is a read.
        let t1 = toks.get(close + 1);
        let t2 = toks.get(close + 2);
        let t3 = toks.get(close + 3);
        let is_store = match (t1, t2, t3) {
            (Some(BodyTok::Sym('=')), Some(BodyTok::Sym('=')), _) => false, // ==
            (Some(BodyTok::Sym('=')), _, _) => true,                        // =
            (Some(BodyTok::Sym('+')), Some(BodyTok::Sym('+')), _)
            | (Some(BodyTok::Sym('-')), Some(BodyTok::Sym('-')), _) => true, // ++ / --
            (Some(BodyTok::Sym(op)), Some(BodyTok::Sym('=')), _) if "+-*/%&|^".contains(*op) => {
                true // += and friends
            }
            (Some(BodyTok::Sym('<')), Some(BodyTok::Sym('<')), Some(BodyTok::Sym('=')))
            | (Some(BodyTok::Sym('>')), Some(BodyTok::Sym('>')), Some(BodyTok::Sym('='))) => {
                true // <<= / >>=
            }
            _ => false,
        };
        if is_store {
            let idx = &toks[k + 2..close];
            let ok = match idx {
                [BodyTok::Ident(v)] => v == "0" || gid_vars.iter().any(|g| g == v),
                _ => idx.len() == 4 && is_gid_call(idx, 0),
            };
            if !ok {
                return false;
            }
        }
        k = m;
    }
    true
}

/// One parsed `__kernel` function signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelSig {
    /// Kernel function name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<ParamInfo>,
}

/// Parse failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// A `__kernel` declaration was malformed.
    Malformed(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Malformed(what) => write!(f, "malformed kernel declaration: {what}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Strip `/* */` and `//` comments, preserving everything else
/// (including any non-ASCII text outside comments).
fn strip_comments(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(src.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                i += 1;
            }
            i = (i + 2).min(bytes.len());
            out.push(b' ');
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    // Comment delimiters are ASCII, so removing them cannot break UTF-8
    // sequences; lossy conversion only fires on already-invalid input.
    String::from_utf8_lossy(&out).into_owned()
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Split a parameter list at top-level commas (ignores commas inside
/// parentheses or brackets, which OpenCL C parameter lists can contain
/// via array declarators).
fn split_params(list: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for c in list.chars() {
        match c {
            '(' | '[' => {
                depth += 1;
                current.push(c);
            }
            ')' | ']' => {
                depth -= 1;
                current.push(c);
            }
            ',' if depth == 0 => {
                parts.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    let last = current.trim();
    if !last.is_empty() {
        parts.push(last.to_string());
    }
    parts
}

fn classify_param(decl: &str, structs_with_handles: &BTreeMap<String, bool>) -> ParamInfo {
    let tokens: Vec<&str> = decl
        .split(|c: char| !is_ident_char(c) && c != '*')
        .filter(|t| !t.is_empty())
        .collect();
    let has = |kw: &str| tokens.iter().any(|t| t.trim_matches('*') == kw);
    let name = tokens
        .iter()
        .rev()
        .map(|t| t.trim_matches('*'))
        .find(|t| !t.is_empty())
        .unwrap_or("")
        .to_string();

    let is_const = has("const");
    // The pointee type of a pointer declaration, for dirty-range math:
    // the first token (qualifiers aside, `*` stripped) naming a builtin.
    let elem_bytes = tokens
        .iter()
        .map(|t| t.trim_matches('*'))
        .filter(|t| *t != name)
        .find_map(builtin_elem_bytes);
    let kind = if has("__global") || has("global") {
        ParamKind::GlobalPtr
    } else if has("__constant") || has("constant") {
        ParamKind::ConstantPtr
    } else if has("__local") || has("local") {
        ParamKind::LocalPtr
    } else if has("image2d_t") {
        ParamKind::Image2d
    } else if has("image3d_t") {
        ParamKind::Image3d
    } else if has("sampler_t") {
        ParamKind::Sampler
    } else {
        // The declared type is the last identifier before the name
        // (skipping qualifiers like const/unsigned).
        let type_name = tokens
            .iter()
            .map(|t| t.trim_matches('*'))
            .rfind(|t| !t.is_empty() && *t != "const" && *t != name)
            .unwrap_or("int")
            .to_string();
        let _ = structs_with_handles;
        ParamKind::Scalar(type_name)
    };
    let elem_bytes = if kind.is_handle() || kind == ParamKind::LocalPtr {
        elem_bytes
    } else {
        None
    };
    ParamInfo {
        name,
        kind,
        is_const,
        elem_bytes,
        gid_stride: false,
    }
}

/// Scan `typedef struct { ... } Name;` and `struct Name { ... };`
/// definitions, recording whether each struct contains `__global` (or
/// other handle-carrying) members. This is the "OpenCL C code parser …
/// under development to check if each user-defined structure includes
/// OpenCL handles" of §IV-D.
pub fn parse_struct_defs(source: &str) -> BTreeMap<String, bool> {
    let src = strip_comments(source);
    let bytes = src.as_bytes();
    let is_ident_byte = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut out = BTreeMap::new();
    let mut i = 0;
    while let Some(pos) = src.get(i..).and_then(|s| s.find("struct")) {
        let start = i + pos;
        // Require token boundary (all offsets here are byte offsets; the
        // keyword and identifier characters are ASCII).
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after = start + "struct".len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if !(before_ok && after_ok) {
            i = after;
            continue;
        }
        // Optional tag name, then a brace block.
        let mut j = after;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let tag_start = j;
        while j < bytes.len() && is_ident_byte(bytes[j]) {
            j += 1;
        }
        let tag = String::from_utf8_lossy(&bytes[tag_start..j]).into_owned();
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] != b'{' {
            i = after;
            continue;
        }
        let body_start = j + 1;
        let mut depth = 1;
        let mut k = body_start;
        while k < bytes.len() && depth > 0 {
            match bytes[k] {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        let body = String::from_utf8_lossy(&bytes[body_start..k.saturating_sub(1)]);
        let has_handles = body.contains("__global")
            || body.contains("__constant")
            || body.contains("image2d_t")
            || body.contains("image3d_t")
            || body.contains("sampler_t");
        // typedef name follows the closing brace (if any).
        let mut m = k;
        while m < bytes.len() && (bytes[m].is_ascii_whitespace() || bytes[m] == b'*') {
            m += 1;
        }
        let td_start = m;
        while m < bytes.len() && is_ident_byte(bytes[m]) {
            m += 1;
        }
        let typedef_name = String::from_utf8_lossy(&bytes[td_start..m]).into_owned();
        if !typedef_name.is_empty() {
            out.insert(typedef_name, has_handles);
        }
        if !tag.is_empty() {
            out.insert(tag, has_handles);
        }
        i = k;
    }
    out
}

/// Parse all `__kernel` signatures in a translation unit.
pub fn parse_kernel_sigs(source: &str) -> Result<Vec<KernelSig>, ParseError> {
    let src = strip_comments(source);
    let structs = parse_struct_defs(&src);
    let mut sigs = Vec::new();
    let mut search_from = 0;
    while let Some(rel) = src[search_from..].find("__kernel") {
        let at = search_from + rel;
        search_from = at + "__kernel".len();
        // Token boundary check.
        let prev_ok = at == 0
            || !src[..at]
                .chars()
                .next_back()
                .map(is_ident_char)
                .unwrap_or(false);
        if !prev_ok {
            continue;
        }
        let rest = &src[at + "__kernel".len()..];
        // Expect: [attributes] void <name> ( <params> )
        let open = rest
            .find('(')
            .ok_or_else(|| ParseError::Malformed("missing parameter list".into()))?;
        let header = &rest[..open];
        let name = header
            .split(|c: char| !is_ident_char(c))
            .rfind(|t| !t.is_empty())
            .ok_or_else(|| ParseError::Malformed("missing kernel name".into()))?
            .to_string();
        if name == "void" {
            return Err(ParseError::Malformed("kernel without a name".into()));
        }
        // Find matching close paren.
        let mut depth = 0i32;
        let mut close = None;
        for (idx, c) in rest.char_indices().skip(open) {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(idx);
                        break;
                    }
                }
                _ => {}
            }
        }
        let close =
            close.ok_or_else(|| ParseError::Malformed(format!("unbalanced parens in {name}")))?;
        let list = &rest[open + 1..close];
        let mut params: Vec<ParamInfo> = if list.trim().is_empty() || list.trim() == "void" {
            Vec::new()
        } else {
            split_params(list)
                .iter()
                .map(|p| classify_param(p, &structs))
                .collect()
        };
        // Write-footprint analysis over the kernel body (the brace block
        // after the parameter list, if present).
        let after = &rest[close + 1..];
        if let Some(brace) = after.find('{') {
            if after[..brace].trim().is_empty() {
                let mut depth = 0i32;
                let mut end = None;
                for (idx, c) in after.char_indices().skip(brace) {
                    match c {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                end = Some(idx);
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if let Some(end) = end {
                    let toks = tokenize_body(&after[brace + 1..end]);
                    let gid_vars = gid_variables(&toks);
                    for p in &mut params {
                        p.gid_stride = p.kind == ParamKind::GlobalPtr
                            && !p.is_const
                            && gid_stride_writes(&toks, &gid_vars, &p.name);
                    }
                }
            }
        }
        sigs.push(KernelSig { name, params });
    }
    Ok(sigs)
}

use simcore::codec::{Codec, CodecError, Reader};

impl Codec for ParamKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ParamKind::GlobalPtr => out.push(0),
            ParamKind::ConstantPtr => out.push(1),
            ParamKind::LocalPtr => out.push(2),
            ParamKind::Image2d => out.push(3),
            ParamKind::Image3d => out.push(4),
            ParamKind::Sampler => out.push(5),
            ParamKind::Scalar(ty) => {
                out.push(6);
                ty.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match u8::decode(r)? {
            0 => ParamKind::GlobalPtr,
            1 => ParamKind::ConstantPtr,
            2 => ParamKind::LocalPtr,
            3 => ParamKind::Image2d,
            4 => ParamKind::Image3d,
            5 => ParamKind::Sampler,
            6 => ParamKind::Scalar(String::decode(r)?),
            _ => return Err(CodecError::Invalid("ParamKind tag")),
        })
    }
}

simcore::impl_codec_struct!(ParamInfo {
    name,
    kind,
    is_const,
    elem_bytes,
    gid_stride
});
simcore::impl_codec_struct!(KernelSig { name, params });

/// Convenience: which argument indices of `sig` carry handles.
pub fn handle_arg_indices(sig: &KernelSig) -> Vec<u32> {
    sig.params
        .iter()
        .enumerate()
        .filter(|(_, p)| p.kind.is_handle())
        .map(|(i, _)| i as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const VEC_ADD: &str = r#"
__kernel void vec_add(__global const float* a,
                      __global const float* b,
                      __global float* c,
                      const uint n)
{
    int i = get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}
"#;

    #[test]
    fn parses_simple_kernel() {
        let sigs = parse_kernel_sigs(VEC_ADD).unwrap();
        assert_eq!(sigs.len(), 1);
        let s = &sigs[0];
        assert_eq!(s.name, "vec_add");
        assert_eq!(s.params.len(), 4);
        assert_eq!(s.params[0].kind, ParamKind::GlobalPtr);
        assert_eq!(s.params[0].name, "a");
        assert!(s.params[0].is_const, "a is __global const float*");
        assert!(!s.params[2].is_const, "c is written by the kernel");
        assert_eq!(s.params[3].kind, ParamKind::Scalar("uint".into()));
        assert_eq!(s.params[3].name, "n");
        assert_eq!(handle_arg_indices(s), vec![0, 1, 2]);
    }

    #[test]
    fn parses_all_qualifier_kinds() {
        let src = r#"
__kernel void zoo(__global float* g,
                  __constant float* c,
                  __local float* l,
                  image2d_t img2,
                  image3d_t img3,
                  sampler_t smp,
                  float scalar)
{ }
"#;
        let sigs = parse_kernel_sigs(src).unwrap();
        let kinds: Vec<&ParamKind> = sigs[0].params.iter().map(|p| &p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &ParamKind::GlobalPtr,
                &ParamKind::ConstantPtr,
                &ParamKind::LocalPtr,
                &ParamKind::Image2d,
                &ParamKind::Image3d,
                &ParamKind::Sampler,
                &ParamKind::Scalar("float".into()),
            ]
        );
        // __local receives a size, not a handle.
        assert_eq!(handle_arg_indices(&sigs[0]), vec![0, 1, 3, 4, 5]);
    }

    #[test]
    fn multiple_kernels_and_helpers() {
        let src = r#"
float helper(float x) { return x * 2.0f; }

__kernel void first(__global float* a) { a[0] = helper(a[0]); }

/* a comment with the word __kernel inside */
__kernel void second(__global float* b, const uint n) { }
"#;
        let sigs = parse_kernel_sigs(src).unwrap();
        let names: Vec<&str> = sigs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["first", "second"]);
    }

    #[test]
    fn comments_do_not_confuse_parser() {
        let src = r#"
// __kernel void fake(__global float* x);
__kernel void real_one(/* inline */ __global float* y, const int n) { }
"#;
        let sigs = parse_kernel_sigs(src).unwrap();
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].name, "real_one");
        assert_eq!(sigs[0].params.len(), 2);
        assert_eq!(sigs[0].params[0].name, "y");
    }

    #[test]
    fn no_kernels_is_fine() {
        assert!(parse_kernel_sigs("int main() { return 0; }")
            .unwrap()
            .is_empty());
        assert!(parse_kernel_sigs("").unwrap().is_empty());
    }

    #[test]
    fn unqualified_global_keyword_also_matches() {
        // OpenCL allows the qualifiers without leading underscores.
        let src = "__kernel void k(global float* a, local float* b, constant float* c) {}";
        let sigs = parse_kernel_sigs(src).unwrap();
        assert_eq!(sigs[0].params[0].kind, ParamKind::GlobalPtr);
        assert_eq!(sigs[0].params[1].kind, ParamKind::LocalPtr);
        assert_eq!(sigs[0].params[2].kind, ParamKind::ConstantPtr);
    }

    #[test]
    fn struct_defs_with_handles_detected() {
        let src = r#"
typedef struct {
    __global float* data;
    int n;
} BufDesc;

typedef struct {
    float x, y, z;
} Plain;

__kernel void uses(BufDesc d, Plain p, __global float* out) { }
"#;
        let defs = parse_struct_defs(src);
        assert_eq!(defs.get("BufDesc"), Some(&true));
        assert_eq!(defs.get("Plain"), Some(&false));
        let sigs = parse_kernel_sigs(src).unwrap();
        assert_eq!(sigs[0].params[0].kind, ParamKind::Scalar("BufDesc".into()));
        assert_eq!(sigs[0].params[1].kind, ParamKind::Scalar("Plain".into()));
    }

    #[test]
    fn multibyte_source_is_handled() {
        // Regression: byte/char offset mixing used to panic or skip
        // definitions when multibyte characters preceded a struct.
        let src = "\u{e9}\u{e9}\u{e9}\u{e9}\u{e9}\u{e9}\u{e9}\u{e9} struct A { __global int* p; };";
        assert_eq!(parse_struct_defs(src).get("A"), Some(&true));
        let tail = "\u{e9}".repeat(16) + "struct";
        let _ = parse_struct_defs(&tail); // must not panic
                                          // Non-ASCII comments don't disturb kernel parsing either.
        let k = "// commentaire accentu\u{e9}\n__kernel void k(__global float* a) {}";
        assert_eq!(parse_kernel_sigs(k).unwrap()[0].name, "k");
    }

    #[test]
    fn struct_with_tag_name() {
        let src = "struct Packet { __global int* payload; };";
        let defs = parse_struct_defs(src);
        assert_eq!(defs.get("Packet"), Some(&true));
    }

    #[test]
    fn malformed_kernel_reports_error() {
        assert!(parse_kernel_sigs("__kernel void broken(").is_err());
        assert!(parse_kernel_sigs("__kernel void (int x) {}").is_err());
    }

    #[test]
    fn zero_param_kernels() {
        let sigs = parse_kernel_sigs("__kernel void nothing() {}").unwrap();
        assert!(sigs[0].params.is_empty());
        let sigs = parse_kernel_sigs("__kernel void nothing2(void) {}").unwrap();
        assert!(sigs[0].params.is_empty());
    }

    #[test]
    fn pointer_element_sizes_inferred() {
        let src = r#"
__kernel void sizes(__global float* a,
                    __global const uchar4* b,
                    __global double2* c,
                    __local int* scratch,
                    __global BufDesc* d,
                    const uint n)
{ }
"#;
        let sigs = parse_kernel_sigs(src).unwrap();
        let eb: Vec<Option<u64>> = sigs[0].params.iter().map(|p| p.elem_bytes).collect();
        assert_eq!(
            eb,
            vec![Some(4), Some(4), Some(16), Some(4), None, None],
            "float=4, uchar4=4, double2=16, int=4, user struct and scalar None"
        );
        assert_eq!(builtin_elem_bytes("half8"), Some(16));
        assert_eq!(builtin_elem_bytes("long16"), Some(128));
        assert_eq!(builtin_elem_bytes("float5"), None);
        assert_eq!(builtin_elem_bytes("BufDesc"), None);
    }

    #[test]
    fn gid_stride_write_analysis() {
        let src = r#"
__kernel void mixed(__global const float* a,
                    __global float* unit,
                    __global float* fanout,
                    __global float* swap,
                    __global float* grouped,
                    __global float* strided,
                    __global float* negated,
                    const uint n,
                    const uint per)
{
    int i = get_global_id(0);
    if (i < n) unit[i] = a[i] * 2.0f;
    for (uint j = 0; j < per; ++j) fanout[i * per + j] = a[i];
    uint partner = i ^ 1u;
    if (swap[i] > swap[partner]) { swap[partner] = swap[i]; }
    grouped[get_group_id(0)] += a[i];
    int s = get_global_id(0);
    for (; s < n; s += get_global_size(0)) strided[s] = a[s];
    if (i < n) negated[i] = -a[i];
}
"#;
        let sigs = parse_kernel_sigs(src).unwrap();
        let by_name = |n: &str| sigs[0].params.iter().find(|p| p.name == n).unwrap();
        assert!(
            !by_name("a").gid_stride,
            "const input is never a store target"
        );
        assert!(by_name("unit").gid_stride, "unit[i] = … qualifies");
        assert!(!by_name("fanout").gid_stride, "fanout writes i*per+j");
        assert!(!by_name("swap").gid_stride, "swap writes a non-gid partner");
        assert!(!by_name("grouped").gid_stride, "group-id indexed store");
        assert!(
            !by_name("strided").gid_stride,
            "s is reassigned in the loop"
        );
        assert!(by_name("negated").gid_stride, "`= -x` is still a store");
        // Direct-call indexing and the constant 0 both qualify.
        let direct = parse_kernel_sigs(
            "__kernel void d(__global float* o, __global float* z)\
             { o[get_global_id(0)] = 1.0f; z[0] = 2.0f; }",
        )
        .unwrap();
        assert!(direct[0].params[0].gid_stride);
        assert!(direct[0].params[1].gid_stride);
        // A bare (unsubscripted) use of the pointer disqualifies it.
        let aliased =
            parse_kernel_sigs("__kernel void al(__global float* p) { helper(p); }").unwrap();
        assert!(!aliased[0].params[0].gid_stride);
    }

    #[test]
    fn corpus_style_multiline_declarations() {
        let src = "__kernel void conv(__global const float* src,\n    __global float* dst,\n    __constant float* filter,\n    const uint width)\n{ }";
        let sigs = parse_kernel_sigs(src).unwrap();
        assert_eq!(sigs[0].params.len(), 4);
        assert_eq!(handle_arg_indices(&sigs[0]), vec![0, 1, 2]);
    }
}
