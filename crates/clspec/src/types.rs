//! Value types of the API surface: flags, descriptors and info structs.
//!
//! Everything here is [`Codec`] because CheCL records these values in
//! its wrapper objects, and the wrapper objects travel inside the
//! checkpoint image.

use crate::handles::RawHandle;
use simcore::codec::{decode_bytes, encode_bytes, Codec, CodecError, Reader};
use simcore::{impl_codec_struct, ByteSize};

/// `cl_device_type` — the device classes an application can request.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DeviceType {
    /// CL_DEVICE_TYPE_CPU
    Cpu,
    /// CL_DEVICE_TYPE_GPU
    Gpu,
    /// CL_DEVICE_TYPE_ACCELERATOR
    Accelerator,
    /// CL_DEVICE_TYPE_ALL
    All,
}

impl Codec for DeviceType {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            DeviceType::Cpu => 0,
            DeviceType::Gpu => 1,
            DeviceType::Accelerator => 2,
            DeviceType::All => 3,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match u8::decode(r)? {
            0 => DeviceType::Cpu,
            1 => DeviceType::Gpu,
            2 => DeviceType::Accelerator,
            3 => DeviceType::All,
            _ => return Err(CodecError::Invalid("DeviceType tag")),
        })
    }
}

/// `cl_mem_flags` — buffer creation flags.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct MemFlags(u32);

impl MemFlags {
    /// CL_MEM_READ_WRITE (default).
    pub const READ_WRITE: MemFlags = MemFlags(1 << 0);
    /// CL_MEM_WRITE_ONLY.
    pub const WRITE_ONLY: MemFlags = MemFlags(1 << 1);
    /// CL_MEM_READ_ONLY.
    pub const READ_ONLY: MemFlags = MemFlags(1 << 2);
    /// CL_MEM_USE_HOST_PTR — device memory is backed by / cached in a
    /// host region (§IV-D discusses the performance hazard under CheCL).
    pub const USE_HOST_PTR: MemFlags = MemFlags(1 << 3);
    /// CL_MEM_ALLOC_HOST_PTR.
    pub const ALLOC_HOST_PTR: MemFlags = MemFlags(1 << 4);
    /// CL_MEM_COPY_HOST_PTR — initialise from host data at creation.
    pub const COPY_HOST_PTR: MemFlags = MemFlags(1 << 5);

    /// Empty flag set (treated as READ_WRITE by drivers, as in OpenCL).
    pub const fn empty() -> MemFlags {
        MemFlags(0)
    }

    /// Union of two flag sets.
    pub const fn union(self, other: MemFlags) -> MemFlags {
        MemFlags(self.0 | other.0)
    }

    /// `true` if every flag in `other` is set in `self`.
    pub const fn contains(self, other: MemFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Raw bit representation.
    pub const fn bits(self) -> u32 {
        self.0
    }
}

impl std::ops::BitOr for MemFlags {
    type Output = MemFlags;
    fn bitor(self, rhs: MemFlags) -> MemFlags {
        self.union(rhs)
    }
}

impl Codec for MemFlags {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MemFlags(u32::decode(r)?))
    }
}

/// `cl_command_queue_properties`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct QueueProps {
    /// CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE.
    pub out_of_order: bool,
    /// CL_QUEUE_PROFILING_ENABLE.
    pub profiling: bool,
}

impl_codec_struct!(QueueProps {
    out_of_order,
    profiling
});

/// `cl_sampler` creation arguments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct SamplerDesc {
    /// CL_SAMPLER_NORMALIZED_COORDS.
    pub normalized_coords: bool,
    /// Addressing mode (CLAMP, REPEAT, …) as the raw enum value.
    pub addressing_mode: u32,
    /// Filter mode (NEAREST, LINEAR) as the raw enum value.
    pub filter_mode: u32,
}

impl_codec_struct!(SamplerDesc {
    normalized_coords,
    addressing_mode,
    filter_mode
});

/// An N-dimensional range for kernel launches (`global_work_size` /
/// `local_work_size`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct NDRange {
    /// Work dimensions actually used (1..=3).
    pub dims: u32,
    /// Sizes per dimension; unused dimensions are 1.
    pub sizes: [u64; 3],
}

impl NDRange {
    /// A 1-D range.
    pub fn d1(x: u64) -> NDRange {
        NDRange {
            dims: 1,
            sizes: [x, 1, 1],
        }
    }

    /// A 2-D range.
    pub fn d2(x: u64, y: u64) -> NDRange {
        NDRange {
            dims: 2,
            sizes: [x, y, 1],
        }
    }

    /// A 3-D range.
    pub fn d3(x: u64, y: u64, z: u64) -> NDRange {
        NDRange {
            dims: 3,
            sizes: [x, y, z],
        }
    }

    /// Total number of work items.
    pub fn total(self) -> u64 {
        self.sizes[0]
            .saturating_mul(self.sizes[1])
            .saturating_mul(self.sizes[2])
    }
}

impl Codec for NDRange {
    fn encode(&self, out: &mut Vec<u8>) {
        self.dims.encode(out);
        self.sizes[0].encode(out);
        self.sizes[1].encode(out);
        self.sizes[2].encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let dims = u32::decode(r)?;
        if !(1..=3).contains(&dims) {
            return Err(CodecError::Invalid("NDRange dims"));
        }
        Ok(NDRange {
            dims,
            sizes: [u64::decode(r)?, u64::decode(r)?, u64::decode(r)?],
        })
    }
}

/// A `clSetKernelArg` value, exactly as the C API sees it: either an
/// opaque byte blob (`arg_size` + `arg_value`), or a local-memory size
/// (`arg_value == NULL`).
///
/// The byte blob may or may not contain a handle — the application does
/// not say. Deciding that is CheCL's kernel-signature-parsing problem
/// (§III-B).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ArgValue {
    /// `arg_value` bytes copied at call time.
    Bytes(Vec<u8>),
    /// `__local` allocation of the given size (NULL `arg_value`).
    LocalMem(u64),
}

impl ArgValue {
    /// Build an argument from a plain-old-data value.
    pub fn scalar<T: ScalarArg>(v: T) -> ArgValue {
        ArgValue::Bytes(v.to_arg_bytes())
    }

    /// Build an argument carrying a handle value, as an application
    /// would pass `&mem` to `clSetKernelArg`.
    pub fn handle(h: RawHandle) -> ArgValue {
        ArgValue::Bytes(h.0.to_le_bytes().to_vec())
    }

    /// Size in bytes as reported to the API (`arg_size`).
    pub fn size(&self) -> u64 {
        match self {
            ArgValue::Bytes(b) => b.len() as u64,
            ArgValue::LocalMem(n) => *n,
        }
    }

    /// Interpret the bytes as a handle value, if they are exactly
    /// handle-sized.
    pub fn as_handle(&self) -> Option<RawHandle> {
        match self {
            ArgValue::Bytes(b) if b.len() == 8 => {
                Some(RawHandle(u64::from_le_bytes(b[..8].try_into().unwrap())))
            }
            _ => None,
        }
    }
}

impl Codec for ArgValue {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ArgValue::Bytes(b) => {
                out.push(0);
                encode_bytes(out, b);
            }
            ArgValue::LocalMem(n) => {
                out.push(1);
                n.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match u8::decode(r)? {
            0 => ArgValue::Bytes(decode_bytes(r)?),
            1 => ArgValue::LocalMem(u64::decode(r)?),
            _ => return Err(CodecError::Invalid("ArgValue tag")),
        })
    }
}

/// Plain-old-data types that can be passed by value to kernels.
pub trait ScalarArg {
    /// The argument's byte image, as `clSetKernelArg` would copy it.
    fn to_arg_bytes(&self) -> Vec<u8>;
}

macro_rules! impl_scalar_arg {
    ($($ty:ty),+) => {$(
        impl ScalarArg for $ty {
            fn to_arg_bytes(&self) -> Vec<u8> {
                self.to_le_bytes().to_vec()
            }
        }
    )+};
}

impl_scalar_arg!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

/// `clGetPlatformInfo` results.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlatformInfo {
    /// CL_PLATFORM_NAME.
    pub name: String,
    /// CL_PLATFORM_VENDOR.
    pub vendor: String,
    /// CL_PLATFORM_VERSION.
    pub version: String,
    /// CL_PLATFORM_PROFILE.
    pub profile: String,
}

impl_codec_struct!(PlatformInfo {
    name,
    vendor,
    version,
    profile
});

/// `clGetDeviceInfo` results.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeviceInfo {
    /// CL_DEVICE_NAME.
    pub name: String,
    /// CL_DEVICE_TYPE.
    pub device_type: DeviceType,
    /// CL_DEVICE_VENDOR.
    pub vendor: String,
    /// CL_DEVICE_GLOBAL_MEM_SIZE.
    pub global_mem_size: ByteSize,
    /// CL_DEVICE_MAX_COMPUTE_UNITS.
    pub max_compute_units: u32,
    /// CL_DEVICE_MAX_WORK_GROUP_SIZE.
    pub max_work_group_size: u64,
    /// CL_DEVICE_MAX_WORK_ITEM_SIZES (x, y, z).
    pub max_work_item_sizes: NDRange,
}

impl_codec_struct!(DeviceInfo {
    name,
    device_type,
    vendor,
    global_mem_size,
    max_compute_units,
    max_work_group_size,
    max_work_item_sizes
});

/// `cl_int` execution status of an event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventStatus {
    /// CL_QUEUED.
    Queued,
    /// CL_SUBMITTED.
    Submitted,
    /// CL_RUNNING.
    Running,
    /// CL_COMPLETE.
    Complete,
}

impl Codec for EventStatus {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            EventStatus::Queued => 0,
            EventStatus::Submitted => 1,
            EventStatus::Running => 2,
            EventStatus::Complete => 3,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match u8::decode(r)? {
            0 => EventStatus::Queued,
            1 => EventStatus::Submitted,
            2 => EventStatus::Running,
            3 => EventStatus::Complete,
            _ => return Err(CodecError::Invalid("EventStatus tag")),
        })
    }
}

/// `clGetEventProfilingInfo` timestamps (virtual-clock nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProfilingInfo {
    /// CL_PROFILING_COMMAND_QUEUED.
    pub queued: u64,
    /// CL_PROFILING_COMMAND_SUBMIT.
    pub submit: u64,
    /// CL_PROFILING_COMMAND_START.
    pub start: u64,
    /// CL_PROFILING_COMMAND_END.
    pub end: u64,
}

impl_codec_struct!(ProfilingInfo {
    queued,
    submit,
    start,
    end
});

/// `cl_build_status`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BuildStatus {
    /// CL_BUILD_NONE.
    None,
    /// CL_BUILD_SUCCESS.
    Success,
    /// CL_BUILD_ERROR.
    Error,
}

impl Codec for BuildStatus {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            BuildStatus::None => 0,
            BuildStatus::Success => 1,
            BuildStatus::Error => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match u8::decode(r)? {
            0 => BuildStatus::None,
            1 => BuildStatus::Success,
            2 => BuildStatus::Error,
            _ => return Err(CodecError::Invalid("BuildStatus tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_flags_set_operations() {
        let f = MemFlags::READ_ONLY | MemFlags::COPY_HOST_PTR;
        assert!(f.contains(MemFlags::READ_ONLY));
        assert!(f.contains(MemFlags::COPY_HOST_PTR));
        assert!(!f.contains(MemFlags::USE_HOST_PTR));
        assert!(f.contains(MemFlags::empty()));
    }

    #[test]
    fn ndrange_totals() {
        assert_eq!(NDRange::d1(100).total(), 100);
        assert_eq!(NDRange::d2(16, 16).total(), 256);
        assert_eq!(NDRange::d3(4, 4, 4).total(), 64);
    }

    #[test]
    fn ndrange_codec_rejects_bad_dims() {
        let mut bytes = Vec::new();
        0u32.encode(&mut bytes);
        0u64.encode(&mut bytes);
        0u64.encode(&mut bytes);
        0u64.encode(&mut bytes);
        assert!(NDRange::from_bytes(&bytes).is_err());
    }

    #[test]
    fn arg_value_handle_detection() {
        let h = RawHandle(0xdeadbeef);
        let a = ArgValue::handle(h);
        assert_eq!(a.size(), 8);
        assert_eq!(a.as_handle(), Some(h));
        // A 4-byte scalar is never mistaken for a handle.
        let s = ArgValue::scalar(1.5f32);
        assert_eq!(s.size(), 4);
        assert_eq!(s.as_handle(), None);
        // Local mem has no byte image at all.
        assert_eq!(ArgValue::LocalMem(256).as_handle(), None);
        assert_eq!(ArgValue::LocalMem(256).size(), 256);
    }

    #[test]
    fn scalar_arg_layout_is_little_endian() {
        assert_eq!(ArgValue::scalar(1u32).size(), 4);
        match ArgValue::scalar(0x01020304u32) {
            ArgValue::Bytes(b) => assert_eq!(b, vec![4, 3, 2, 1]),
            _ => panic!(),
        }
    }

    #[test]
    fn codec_roundtrips() {
        let arg = ArgValue::Bytes(vec![1, 2, 3]);
        assert_eq!(ArgValue::from_bytes(&arg.to_bytes()).unwrap(), arg);
        let local = ArgValue::LocalMem(512);
        assert_eq!(ArgValue::from_bytes(&local.to_bytes()).unwrap(), local);
        let nd = NDRange::d2(8, 8);
        assert_eq!(NDRange::from_bytes(&nd.to_bytes()).unwrap(), nd);
        let pi = PlatformInfo {
            name: "Nimbus OpenCL".into(),
            vendor: "Nimbus".into(),
            version: "OpenCL 1.0".into(),
            profile: "FULL_PROFILE".into(),
        };
        assert_eq!(PlatformInfo::from_bytes(&pi.to_bytes()).unwrap(), pi);
        for s in [
            EventStatus::Queued,
            EventStatus::Submitted,
            EventStatus::Running,
            EventStatus::Complete,
        ] {
            assert_eq!(EventStatus::from_bytes(&s.to_bytes()).unwrap(), s);
        }
        for b in [BuildStatus::None, BuildStatus::Success, BuildStatus::Error] {
            assert_eq!(BuildStatus::from_bytes(&b.to_bytes()).unwrap(), b);
        }
    }
}
