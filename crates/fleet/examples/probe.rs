use fleet::{default_job_mix, run_fleet, FleetConfig};
use simcore::SimDuration;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let nodes: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let gap_us: u64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let cfg = FleetConfig {
        nodes,
        check_bit_exact: true,
        ..FleetConfig::default()
    };
    let t0 = std::time::Instant::now();
    let r = run_fleet(
        &cfg,
        default_job_mix(jobs, 42, SimDuration::from_micros(gap_us)),
    );
    println!(
        "jobs={} nodes={} wall={:?} makespan={:?} thr={:.1}/s p50={:?} p99={:?} preempt={} cold={} live={} gen={} events={} ops/ev={:.2} bit={}/{} slo={}:{}",
        r.jobs, r.nodes, t0.elapsed(), r.makespan, r.throughput_per_s, r.p50_latency, r.p99_latency,
        r.preemptions, r.migrations_cold, r.migrations_live, r.generations,
        r.sched_events, r.ops_per_event(), r.bit_exact_ok, r.bit_exact_checked,
        r.slo_attained, r.slo_missed,
    );
}
