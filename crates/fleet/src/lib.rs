//! Fleet-scale multi-tenant scheduler on the `simcore::des` core.
//!
//! The paper pitches checkpointing as more than fault tolerance: it is
//! the mechanism that makes *scheduling* possible — a job that can be
//! checkpointed can be preempted, and a job that can be restored on a
//! different node can be migrated. This crate closes that loop. It
//! admits thousands of heterogeneous jobs from `workloads::catalog`,
//! bin-packs them onto a cluster of nodes with device slots, preempts
//! low-priority tenants *by checkpointing them* through the
//! `checl::engine` policy lattice when higher-priority work is waiting,
//! resumes them later (often on a different node — a cold migration),
//! live-migrates tenants off checkpoint-saturated nodes with
//! `migrate_with_policy`, and gang-schedules multi-rank `mpisim` jobs
//! with coordinated preemption at barriers.
//!
//! ## Scheduling model
//!
//! Tenants advance in *slices*: [`workloads::CheclSession::run_step`]
//! runs at most one quantum of virtual time and yields at `clFinish`
//! sync boundaries. A dispatched slice is executed optimistically and
//! its end posted to the event queue; scheduler decisions (preemption,
//! migration, completion) take effect at yield points, exactly where a
//! checkpoint is cheapest — at a [`YieldPoint::Sync`] the dump's sync
//! phase is nearly free, the Delayed-trigger observation of §III-C
//! promoted to a fleet-wide policy.
//!
//! ## Determinism
//!
//! Everything is virtual-time and seed-driven: the event queue breaks
//! ties by insertion sequence, job order comes from `(priority,
//! admission)` keys in B-trees, and the scheduler-overhead metric is a
//! *counted* quantity ([`EventQueue::ops`] plus set-operation counts),
//! not wall-clock. Replaying the same seed replays the same schedule
//! bit for bit.

use checl::cpr::RestoreTarget;
use checl::{CheclConfig, CprPolicy};
use osproc::{Cluster, NodeId};
use simcore::des::{ChannelMap, EventQueue, ProcSet, ProcState};
use simcore::{obs, SimDuration, SimTime, SplitMix64};
use std::collections::{BTreeMap, BTreeSet};
use workloads::{workload_by_name, CheclSession, StopCondition, WorkloadCfg, YieldPoint};

use clspec::types::DeviceType;
use mpisim::MpiWorld;

/// One admitted job: what to run, when it arrives, how important it is.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Fleet-unique name (also the obs ledger key).
    pub name: String,
    /// `workloads::catalog` entry to run.
    pub workload: &'static str,
    /// Problem scale in thousandths (`100` = 0.1× paper size). Integer
    /// so specs hash and compare exactly.
    pub scale_milli: u32,
    /// Priority class, 0 = most important.
    pub priority: u8,
    /// Virtual arrival time.
    pub arrival: SimTime,
    /// 1 = solo tenant; >1 = gang of MPI ranks running the script SPMD.
    pub ranks: u32,
}

impl JobSpec {
    fn scale(&self) -> f64 {
        self.scale_milli as f64 / 1000.0
    }

    fn cfg(&self) -> WorkloadCfg {
        WorkloadCfg {
            device_mem: simcore::calib::tesla_c1060_memory(),
            scale: self.scale(),
            device_type: DeviceType::Gpu,
        }
    }

    fn script(&self) -> workloads::Script {
        workload_by_name(self.workload)
            .unwrap_or_else(|| panic!("unknown workload {}", self.workload))
            .script(&self.cfg())
    }
}

/// Scheduler knobs.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Cluster width ([`Cluster::with_standard_nodes`]).
    pub nodes: usize,
    /// Device slots per node (concurrent tenants a node hosts).
    pub slots_per_node: usize,
    /// Slice quantum: the most virtual time a tenant runs between
    /// yields (it may overshoot to the end of the op in flight).
    pub quantum: SimDuration,
    /// SLO budget: a job should finish within `slo` of its arrival.
    pub slo: SimDuration,
    /// Checkpoint-channel backlog at which a node counts as hot and
    /// sheds its least important solo tenant by live migration.
    pub hot_backlog: SimDuration,
    /// Preemption hysteresis: a tenant is immune until it has held its
    /// slot this long since its last (re)start. Without it the fleet
    /// thrashes — a resumed victim is re-flagged before it amortizes
    /// its own restore.
    pub preempt_cooldown: SimDuration,
    /// Hard cap on preemptions per job: past it the job runs to
    /// completion, bounding its dump chain and guaranteeing progress.
    pub max_preemptions_per_job: u64,
    /// Verify every finished job's checksums against an uninterrupted
    /// solo run of the same spec (cached per distinct spec).
    pub check_bit_exact: bool,
    /// Backpressure rung 1 — *stretch*: while any node's `ckpt.disk`
    /// backlog sits at or above this, the preemption cooldown is
    /// multiplied by `backlog / threshold` (clamped to 8×). Young/Daly
    /// in fleet clothing: a brownout inflates the checkpoint cost δ, so
    /// τ = sqrt(2δM) says checkpoint *less often*, not queue harder.
    /// `None` disables the rung.
    pub stretch_backlog: Option<SimDuration>,
    /// Backpressure rung 2 — *shed*: a node whose `ckpt.disk` backlog
    /// reaches this sheds its least important tenant by
    /// checkpoint-preemption even when nothing is waiting, freeing the
    /// slot (and its I/O share) for later redispatch on a cooler node.
    /// `None` disables the rung.
    pub shed_backlog: Option<SimDuration>,
    /// Backpressure rung 3 — *reject*: a job arriving while any node's
    /// `ckpt.disk` backlog is at or above this is refused admission
    /// with a typed `admission_rejected` obs event instead of queueing
    /// into a fleet that cannot serve it. Rejected jobs are excluded
    /// from SLO accounting. `None` disables the rung.
    pub reject_backlog: Option<SimDuration>,
    /// Channel brownouts: `(node, from, until, percent)` windows during
    /// which the node's `ckpt.disk` channel runs at `percent`% of its
    /// bandwidth. This is what builds the backlog the ladder reacts to.
    pub brownouts: Vec<(usize, SimTime, SimTime, u32)>,
    /// Placement fences: `(node, from, until)` windows during which the
    /// node is partitioned from the scheduler (a rack outage, a network
    /// partition) — no *new* tenant is placed there while the window is
    /// open, unless it holds the only free slots left.
    pub drains: Vec<(usize, SimTime, SimTime)>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            nodes: 4,
            slots_per_node: 4,
            quantum: SimDuration::from_micros(500),
            slo: SimDuration::from_millis(250),
            hot_backlog: SimDuration::from_millis(2),
            preempt_cooldown: SimDuration::from_millis(60),
            max_preemptions_per_job: 4,
            check_bit_exact: true,
            stretch_backlog: None,
            shed_backlog: None,
            reject_backlog: None,
            brownouts: Vec::new(),
            drains: Vec::new(),
        }
    }
}

/// The CprPolicy lattice points preemption rotates through, in dump
/// order. Every point lands a complete standalone-restorable dump (live
/// policies are excluded: a parked drain cannot outlive its process,
/// and a preemption kills the process right after the cut).
pub fn preempt_policies() -> Vec<CprPolicy> {
    vec![
        CprPolicy::sequential(),
        CprPolicy::pipelined(),
        CprPolicy::pipelined().incremental(true),
        CprPolicy::pipelined().dedup(true),
    ]
}

/// Light catalog subset the default mix draws from: small scripts that
/// keep a 10k-job sweep tractable while still mixing suites, buffer
/// shapes and op counts.
pub const MIX_WORKLOADS: [&str; 6] = [
    "oclVectorAdd",
    "oclDotProduct",
    "oclTranspose",
    "Triad",
    "Reduction",
    "oclDCT8x8",
];

/// Deterministic heterogeneous job mix: `jobs` specs with seeded
/// workloads, scales, priorities, arrival times and an occasional gang.
pub fn default_job_mix(jobs: usize, seed: u64, mean_gap: SimDuration) -> Vec<JobSpec> {
    let mut rng = SplitMix64::new(seed);
    let mut at = SimTime::ZERO;
    (0..jobs)
        .map(|i| {
            let workload = MIX_WORKLOADS[rng.next_below(MIX_WORKLOADS.len() as u64) as usize];
            let scale_milli = [10, 25, 60][rng.next_below(3) as usize];
            let priority = rng.next_below(4) as u8;
            // ~3% of jobs are 2–4-rank gangs.
            let ranks = if rng.next_below(100) < 3 {
                2 + rng.next_below(3) as u32
            } else {
                1
            };
            let gap = SimDuration::from_nanos(rng.next_below(2 * mean_gap.as_nanos().max(1)));
            at += gap;
            JobSpec {
                name: format!("j{i:05}.{workload}"),
                workload,
                scale_milli,
                priority,
                arrival: at,
                ranks,
            }
        })
        .collect()
}

/// Per-job outcome, in admission order.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Spec name.
    pub name: String,
    /// Priority class.
    pub priority: u8,
    /// Gang width (1 = solo).
    pub ranks: u32,
    /// Arrival-to-completion latency.
    pub latency: SimDuration,
    /// Times the job was checkpointed out of its slot.
    pub preemptions: u64,
    /// Times the job changed nodes (cold resumes + live migrations).
    pub migrations: u64,
    /// Live migrations among those.
    pub live_migrations: u64,
    /// Checkpoint generations written for the job.
    pub generations: u64,
    /// Checksum-identical to the uninterrupted solo baseline (`None`
    /// when verification was off).
    pub bit_exact: Option<bool>,
    /// Finished within the SLO budget.
    pub slo_ok: bool,
    /// Node the job finished on.
    pub node: usize,
}

/// What a fleet run produced.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Jobs offered to the fleet (admitted + rejected).
    pub jobs: usize,
    /// Jobs that ran to completion (always == jobs − rejected; the
    /// field keeps the invariant checkable).
    pub completed: usize,
    /// Jobs refused at admission by the backpressure ladder's reject
    /// rung. Excluded from latency and SLO accounting.
    pub rejected: usize,
    /// Cluster width.
    pub nodes: usize,
    /// Slots per node.
    pub slots_per_node: usize,
    /// First arrival to last completion.
    pub makespan: SimDuration,
    /// Completed jobs per virtual second.
    pub throughput_per_s: f64,
    /// Median arrival-to-completion latency.
    pub p50_latency: SimDuration,
    /// 99th-percentile latency (nearest-rank).
    pub p99_latency: SimDuration,
    /// Preemptions-by-checkpoint performed.
    pub preemptions: u64,
    /// Cold migrations (preempted job resumed on a different node).
    pub migrations_cold: u64,
    /// Live migrations (running tenant moved via `migrate_with_policy`).
    pub migrations_live: u64,
    /// Checkpoint generations written fleet-wide.
    pub generations: u64,
    /// Scheduler events processed (arrivals + queue pops).
    pub sched_events: u64,
    /// Deterministic scheduler work: event-queue heap traversals plus
    /// ready/running-set operations.
    pub sched_ops: u64,
    /// Jobs whose checksums were verified against a solo baseline.
    pub bit_exact_checked: u64,
    /// How many of those matched exactly.
    pub bit_exact_ok: u64,
    /// Jobs that met the SLO budget.
    pub slo_attained: u64,
    /// Jobs that blew through it.
    pub slo_missed: u64,
    /// Per-job outcomes in admission order.
    pub outcomes: Vec<JobOutcome>,
}

impl FleetReport {
    /// Scheduler overhead per event — the "no linear scans" witness:
    /// this stays O(log active-events) as the job count grows.
    pub fn ops_per_event(&self) -> f64 {
        if self.sched_events == 0 {
            0.0
        } else {
            self.sched_ops as f64 / self.sched_events as f64
        }
    }

    /// Every verified job restored bit-exact.
    pub fn all_bit_exact(&self) -> bool {
        self.bit_exact_checked == self.bit_exact_ok
    }
}

/// Event payloads on the fleet timeline.
enum Ev {
    /// A tenant's slice ended (it yielded; decide what happens next).
    Slice(u32),
    /// A job's SLO deadline came due (cancelled on timely completion —
    /// the hot path of `EventQueue::cancel`).
    Deadline(u32),
}

/// A job's live half: sessions occupying slots.
struct Tenant {
    sessions: Vec<CheclSession>,
    /// `(node, slot)` per rank.
    slots: Vec<(usize, usize)>,
    /// How the last slice ended.
    yielded: YieldPoint,
}

#[derive(PartialEq, Eq, Clone, Copy, Debug)]
enum JobPhase {
    Waiting,
    Running,
    Done,
}

struct Job {
    spec: JobSpec,
    phase: JobPhase,
    active: Option<Tenant>,
    /// MPI topology, kept across suspensions (pids swapped on resume).
    world: Option<MpiWorld>,
    /// Latest dump path prefix to resume from.
    dump: Option<String>,
    /// Every dump file the job has written, deleted at completion.
    dump_files: Vec<String>,
    /// When the job last (re)gained its slots — the hysteresis anchor.
    last_start: SimTime,
    generations: u64,
    preemptions: u64,
    migrations: u64,
    live_migrations: u64,
    last_nodes: Vec<usize>,
    completed_at: Option<SimTime>,
    /// Census handle minted by `ProcSet::spawn` at admission.
    proc: Option<simcore::des::ProcId>,
    deadline: Option<simcore::des::EventId>,
    slo_missed: bool,
    bit_exact: Option<bool>,
    preempt_req: bool,
    migrate_req: Option<usize>,
    final_node: usize,
    /// Refused at admission by the backpressure reject rung.
    rejected: bool,
}

/// Ordering key in the ready/running sets: priority first, then
/// admission order — a total, deterministic order.
type Key = (u8, u32);

fn key(job: &Job, idx: u32) -> Key {
    (job.spec.priority, idx)
}

struct Sched {
    cfg: FleetConfig,
    cluster: Cluster,
    node_ids: Vec<NodeId>,
    jobs: Vec<Job>,
    procs: ProcSet,
    queue: EventQueue<Ev>,
    chans: ChannelMap,
    ready: BTreeSet<Key>,
    running: BTreeSet<Key>,
    /// `slots[node][slot]` = occupying job.
    slots: Vec<Vec<Option<u32>>>,
    free: Vec<usize>,
    total_free: usize,
    set_ops: u64,
    events: u64,
    /// Preemptions flagged but not yet executed at a yield.
    pending_preempts: usize,
    preemptions: u64,
    migrations_cold: u64,
    migrations_live: u64,
    generations: u64,
    baselines: BTreeMap<(&'static str, u32), Vec<u64>>,
    policies: Vec<CprPolicy>,
}

/// How many ready-queue candidates dispatch considers before giving up
/// on filling the remaining slots (bounds head-of-line blocking by wide
/// gangs without scanning the whole backlog).
const LOOKAHEAD: usize = 8;

impl Sched {
    fn new(cfg: FleetConfig, specs: Vec<JobSpec>) -> Sched {
        let cluster = Cluster::with_standard_nodes(cfg.nodes);
        let node_ids = cluster.node_ids();
        let slots = vec![vec![None; cfg.slots_per_node]; cfg.nodes];
        let free = vec![cfg.slots_per_node; cfg.nodes];
        let total_free = cfg.nodes * cfg.slots_per_node;
        let jobs = specs
            .into_iter()
            .map(|spec| Job {
                final_node: 0,
                spec,
                phase: JobPhase::Waiting,
                active: None,
                world: None,
                dump: None,
                dump_files: Vec::new(),
                last_start: SimTime::ZERO,
                generations: 0,
                preemptions: 0,
                migrations: 0,
                live_migrations: 0,
                last_nodes: Vec::new(),
                completed_at: None,
                proc: None,
                deadline: None,
                slo_missed: false,
                bit_exact: None,
                preempt_req: false,
                migrate_req: None,
                rejected: false,
            })
            .collect();
        let mut chans = ChannelMap::new(SimTime::ZERO);
        // Install brownout windows up front: the degraded `ckpt.disk`
        // channel is what every later placement (and the rebalancer's
        // backlog reads) sees.
        for &(node, from, until, percent) in &cfg.brownouts {
            let set = chans.node(node);
            let ch = set.channel("ckpt.disk");
            set.degrade(ch, from, until, percent);
        }
        Sched {
            cluster,
            node_ids,
            jobs,
            procs: ProcSet::new(),
            queue: EventQueue::new(),
            chans,
            ready: BTreeSet::new(),
            running: BTreeSet::new(),
            slots,
            free,
            total_free,
            set_ops: 0,
            events: 0,
            pending_preempts: 0,
            preemptions: 0,
            migrations_cold: 0,
            migrations_live: 0,
            generations: 0,
            baselines: BTreeMap::new(),
            policies: preempt_policies(),
            cfg,
        }
    }

    fn vendor() -> cldriver::VendorConfig {
        cldriver::vendor::nimbus()
    }

    /// The node with the most free slots (ties to the lowest index) —
    /// spreading load keeps nodes symmetric for gang admission. Nodes
    /// inside an open drain window (partition / rack fence) are
    /// avoided; they are used only when nothing else has a free slot,
    /// so admitted work always completes.
    fn best_node(&self, now: SimTime) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        let mut fenced_best: Option<(usize, usize)> = None;
        for (n, &f) in self.free.iter().enumerate() {
            if f == 0 {
                continue;
            }
            let slot = if self.node_fenced(n, now) {
                &mut fenced_best
            } else {
                &mut best
            };
            if slot.map(|(bf, _)| f > bf).unwrap_or(true) {
                *slot = Some((f, n));
            }
        }
        best.or(fenced_best).map(|(_, n)| n)
    }

    /// Whether `node` sits inside an open drain window at `now`.
    fn node_fenced(&self, node: usize, now: SimTime) -> bool {
        self.cfg
            .drains
            .iter()
            .any(|&(n, from, until)| n == node && now >= from && now < until)
    }

    /// `ckpt.disk` backlog of one node at `now` (zero if the channel
    /// has never been placed on).
    fn node_backlog(&self, node: usize, now: SimTime) -> SimDuration {
        self.chans
            .try_node(node)
            .and_then(|set| set.lookup("ckpt.disk").map(|ch| (set, ch)))
            .map(|(set, ch)| set.free_at(ch).max(now).since(now))
            .unwrap_or(SimDuration::ZERO)
    }

    /// Worst `ckpt.disk` backlog across the fleet: the pressure signal
    /// every rung of the backpressure ladder reads.
    fn max_backlog(&self, now: SimTime) -> (SimDuration, usize) {
        let mut worst = (SimDuration::ZERO, 0usize);
        for n in 0..self.cfg.nodes {
            let b = self.node_backlog(n, now);
            if b > worst.0 {
                worst = (b, n);
            }
        }
        worst
    }

    /// Preemption cooldown after the stretch rung: under sustained
    /// backlog the cooldown grows with `backlog / threshold` (clamped
    /// to 8×) — checkpointing is exactly the I/O the hot channel does
    /// not have, so the cadence stretches instead of piling on.
    fn effective_cooldown(&self, now: SimTime) -> SimDuration {
        let base = self.cfg.preempt_cooldown;
        let Some(threshold) = self.cfg.stretch_backlog else {
            return base;
        };
        let (backlog, _) = self.max_backlog(now);
        if backlog < threshold || threshold.as_nanos() == 0 {
            return base;
        }
        base * (backlog.as_nanos() / threshold.as_nanos()).clamp(1, 8)
    }

    fn claim_slot(&mut self, node: usize, idx: u32) -> usize {
        let slot = self.slots[node]
            .iter()
            .position(|s| s.is_none())
            .expect("claim on full node");
        self.slots[node][slot] = Some(idx);
        self.free[node] -= 1;
        self.total_free -= 1;
        slot
    }

    fn release_slots(&mut self, tenant_slots: &[(usize, usize)]) {
        for &(node, slot) in tenant_slots {
            self.slots[node][slot] = None;
            self.free[node] += 1;
            self.total_free += 1;
        }
    }

    /// Run one slice of every rank and align gangs at a barrier.
    /// Returns the post-slice frontier (event time of the yield).
    fn run_slice(&mut self, idx: u32) -> SimTime {
        let quantum = self.cfg.quantum;
        let job = &mut self.jobs[idx as usize];
        let tenant = job.active.as_mut().expect("slice without tenant");
        let mut yp = YieldPoint::Done;
        for (r, session) in tenant.sessions.iter_mut().enumerate() {
            let before = self.cluster.process(session.pid).clock;
            let rank_yp = session
                .run_step(&mut self.cluster, quantum)
                .expect("fleet workload step failed");
            let after = self.cluster.process(session.pid).clock;
            let (node, slot) = tenant.slots[r];
            let set = self.chans.node(node);
            let ch = set.channel(SLOT_NAMES[slot.min(SLOT_NAMES.len() - 1)]);
            set.place(ch, before, after.since(before), "slice");
            // Gang aggregate: every rank must be done for Done; a
            // single non-sync rank demotes the gang cut to Quantum.
            yp = match (yp, rank_yp) {
                (YieldPoint::Done, r) => r,
                (YieldPoint::Sync, YieldPoint::Done) => YieldPoint::Sync,
                (YieldPoint::Sync, r) => r,
                (YieldPoint::Quantum, _) => YieldPoint::Quantum,
            };
        }
        if tenant.sessions.len() > 1 {
            // Coordinated yield: ranks align at an MPI barrier, so a
            // preemption here checkpoints a consistent global cut.
            let world = job.world.as_ref().expect("gang without world");
            world.barrier(&mut self.cluster);
        }
        tenant.yielded = if tenant.sessions.iter().all(|s| s.program.is_done()) {
            YieldPoint::Done
        } else if yp == YieldPoint::Done {
            YieldPoint::Quantum
        } else {
            yp
        };
        tenant
            .sessions
            .iter()
            .map(|s| self.cluster.process(s.pid).clock)
            .max()
            .expect("tenant has ranks")
    }

    /// Start (or resume) a job on freshly claimed slots at `now`.
    fn start_job(&mut self, idx: u32, now: SimTime) {
        let ranks = self.jobs[idx as usize].spec.ranks as usize;
        let mut placed: Vec<(usize, usize)> = Vec::with_capacity(ranks);
        for _ in 0..ranks {
            let node = self.best_node(now).expect("dispatch checked capacity");
            let slot = self.claim_slot(node, idx);
            placed.push((node, slot));
        }
        let resumed = self.jobs[idx as usize].dump.is_some();
        let sessions: Vec<CheclSession> = if resumed {
            self.resume_sessions(idx, &placed, now)
        } else {
            self.launch_sessions(idx, &placed, now)
        };
        let job = &mut self.jobs[idx as usize];
        // A resume that lands any rank on a new node is a migration:
        // the dump moved the tenant across the cluster.
        if resumed {
            let moved = placed
                .iter()
                .zip(job.last_nodes.iter())
                .any(|(&(n, _), &old)| n != old);
            if moved {
                job.migrations += 1;
                self.migrations_cold += 1;
                obs::emit(
                    "fleet",
                    now,
                    obs::EventKind::TenantMigrated {
                        job: job.spec.name.clone(),
                        from_node: job.last_nodes[0] as u64,
                        to_node: placed[0].0 as u64,
                        live: 0,
                    },
                );
            }
        }
        job.last_nodes = placed.iter().map(|&(n, _)| n).collect();
        job.last_start = now;
        job.active = Some(Tenant {
            sessions,
            slots: placed,
            yielded: YieldPoint::Quantum,
        });
        job.phase = JobPhase::Running;
        let proc = self.jobs[idx as usize].proc.expect("admitted job has proc");
        self.procs.set_state(proc, ProcState::Running);
        let k = key(&self.jobs[idx as usize], idx);
        self.running.insert(k);
        self.set_ops += 1;
        let frontier = self.run_slice(idx);
        self.queue.push(frontier, Ev::Slice(idx));
    }

    fn launch_sessions(
        &mut self,
        idx: u32,
        placed: &[(usize, usize)],
        now: SimTime,
    ) -> Vec<CheclSession> {
        let spec = self.jobs[idx as usize].spec.clone();
        let script = spec.script();
        if placed.len() == 1 {
            let pid = self.cluster.spawn(self.node_ids[placed[0].0]);
            self.cluster.process_mut(pid).clock = now;
            return vec![CheclSession::attach(
                &mut self.cluster,
                pid,
                Self::vendor(),
                CheclConfig::default(),
                script,
            )];
        }
        let rank_nodes: Vec<NodeId> = placed.iter().map(|&(n, _)| self.node_ids[n]).collect();
        let world = MpiWorld::init(&mut self.cluster, &rank_nodes, placed.len());
        let sessions = world
            .pids()
            .to_vec()
            .into_iter()
            .map(|pid| {
                self.cluster.process_mut(pid).clock = now;
                CheclSession::attach(
                    &mut self.cluster,
                    pid,
                    Self::vendor(),
                    CheclConfig::default(),
                    script.clone(),
                )
            })
            .collect();
        self.jobs[idx as usize].world = Some(world);
        sessions
    }

    fn resume_sessions(
        &mut self,
        idx: u32,
        placed: &[(usize, usize)],
        now: SimTime,
    ) -> Vec<CheclSession> {
        let prefix = self.jobs[idx as usize].dump.clone().expect("resume dump");
        let ranks = placed.len();
        let mut sessions = Vec::with_capacity(ranks);
        for (r, &(node, _)) in placed.iter().enumerate() {
            let path = rank_dump_path(&prefix, r, ranks);
            let session = CheclSession::restart_pipelined(
                &mut self.cluster,
                self.node_ids[node],
                &path,
                Self::vendor(),
                RestoreTarget::default(),
            )
            .expect("fleet resume failed");
            // The restore charged its I/O from a zero clock; re-anchor
            // the tenant at the dispatch time plus that restore cost.
            let cost = self.cluster.process(session.pid).clock.since(SimTime::ZERO);
            self.cluster.process_mut(session.pid).clock = now + cost;
            if ranks > 1 {
                self.jobs[idx as usize]
                    .world
                    .as_mut()
                    .expect("gang world")
                    .replace_rank(r, session.pid);
            }
            sessions.push(session);
        }
        sessions
    }

    /// Fill free slots from the ready queue in priority order,
    /// considering at most [`LOOKAHEAD`] candidates.
    fn dispatch(&mut self, now: SimTime) {
        loop {
            if self.total_free == 0 {
                return;
            }
            let mut chosen: Option<Key> = None;
            for &k in self.ready.iter().take(LOOKAHEAD) {
                let ranks = self.jobs[k.1 as usize].spec.ranks as usize;
                if ranks <= self.total_free {
                    chosen = Some(k);
                    break;
                }
            }
            let Some(k) = chosen else { return };
            self.ready.remove(&k);
            self.set_ops += 1;
            self.start_job(k.1, now);
        }
    }

    /// If important work is waiting with no capacity, flag the least
    /// important strictly-lower-priority tenant for checkpoint-out at
    /// its next yield. At most one preemption is in flight fleet-wide,
    /// victims get a cooldown after every (re)start, and a job's total
    /// preemptions are capped — otherwise an oversubscribed fleet
    /// thrashes, spending all its time dumping and restoring.
    fn maybe_preempt(&mut self, now: SimTime) {
        if self.total_free > 0 || self.pending_preempts > 0 {
            return;
        }
        let Some(&(wait_prio, _)) = self.ready.first() else {
            return;
        };
        // Worst running tenant that is past its cooldown and under its
        // preemption budget. The cooldown is the stretch rung's lever:
        // under sustained checkpoint-channel backlog it grows, spacing
        // the dumps a preemption costs.
        let cooldown = self.effective_cooldown(now);
        let victim = self
            .running
            .iter()
            .rev()
            .find(|&&(p, j)| {
                let job = &self.jobs[j as usize];
                p > wait_prio
                    && !job.preempt_req
                    && job.preemptions < self.cfg.max_preemptions_per_job
                    && now.since(job.last_start) >= cooldown
            })
            .copied();
        if let Some((_, j)) = victim {
            self.jobs[j as usize].preempt_req = true;
            self.pending_preempts += 1;
        }
    }

    /// Backpressure shed rung: a node whose checkpoint channel is
    /// backlogged past the shed threshold checkpoints its least
    /// important tenant out *even with nothing waiting* — the slot (and
    /// the tenant's share of the hot channel) frees up, and redispatch
    /// places the job on a cooler node.
    fn maybe_shed(&mut self, now: SimTime) {
        let Some(threshold) = self.cfg.shed_backlog else {
            return;
        };
        if self.pending_preempts > 0 {
            return;
        }
        let (backlog, hot_n) = self.max_backlog(now);
        if backlog < threshold {
            return;
        }
        let cooldown = self.effective_cooldown(now);
        let victim = self
            .running
            .iter()
            .rev()
            .find(|&&(_, j)| {
                let job = &self.jobs[j as usize];
                !job.preempt_req
                    && job.preemptions < self.cfg.max_preemptions_per_job
                    && now.since(job.last_start) >= cooldown
                    && job.last_nodes.contains(&hot_n)
            })
            .copied();
        if let Some((_, j)) = victim {
            self.jobs[j as usize].preempt_req = true;
            self.pending_preempts += 1;
        }
    }

    /// Checkpoint a yielded tenant out of its slots and requeue it.
    fn preempt(&mut self, idx: u32, now: SimTime) {
        let policy = self.policies
            [(self.jobs[idx as usize].generations as usize) % self.policies.len()]
        .clone();
        let gen = self.jobs[idx as usize].generations;
        let prefix = format!("/nfs/fleet/{}.g{}", self.jobs[idx as usize].spec.name, gen);
        let mut tenant = self.jobs[idx as usize].active.take().expect("preempt idle");
        let ranks = tenant.sessions.len();
        let mut dump_files = Vec::with_capacity(ranks);
        for (r, mut session) in tenant.sessions.drain(..).enumerate() {
            let path = rank_dump_path(&prefix, r, ranks);
            let before = self.cluster.process(session.pid).clock;
            let outcome = session
                .checkpoint_with_policy(&mut self.cluster, &path, &policy)
                .expect("preemption checkpoint failed");
            // Account the dump's write phase on the node's checkpoint
            // channel: sustained preemption pressure builds a backlog
            // that the rebalancer reads as heat.
            let node = tenant.slots[r].0;
            let set = self.chans.node(node);
            let ch = set.channel("ckpt.disk");
            set.place(ch, before, outcome.report.write, "preempt.dump");
            session.kill(&mut self.cluster);
            dump_files.push(path);
        }
        self.release_slots(&tenant.slots);
        let job = &mut self.jobs[idx as usize];
        job.dump = Some(prefix);
        job.generations += 1;
        job.preemptions += 1;
        job.preempt_req = false;
        job.dump_files.append(&mut dump_files);
        self.pending_preempts -= 1;
        // Any pending migration target is stale once the job leaves its
        // slot — placement is re-decided at the next dispatch anyway.
        job.migrate_req = None;
        job.phase = JobPhase::Waiting;
        self.generations += 1;
        self.preemptions += 1;
        obs::emit(
            "fleet",
            now,
            obs::EventKind::TenantPreempted {
                job: job.spec.name.clone(),
                node: job.last_nodes[0] as u64,
                generation: job.generations,
                policy: policy.label(),
            },
        );
        let k = key(&self.jobs[idx as usize], idx);
        self.running.remove(&k);
        self.ready.insert(k);
        self.set_ops += 2;
        let proc = self.jobs[idx as usize].proc.expect("admitted job has proc");
        self.procs.set_state(proc, ProcState::Ready);
    }

    /// Live-migrate a yielded solo tenant to `target` and keep running.
    fn live_migrate(&mut self, idx: u32, target: usize, now: SimTime) {
        let mut tenant = self.jobs[idx as usize].active.take().expect("migrate idle");
        let session = tenant.sessions.pop().expect("solo tenant");
        let k = self.jobs[idx as usize].live_migrations;
        let path = format!("/nfs/fleet/{}.m{}", self.jobs[idx as usize].spec.name, k);
        let from = tenant.slots[0].0;
        self.release_slots(&tenant.slots);
        let slot = self.claim_slot(target, idx);
        let (new_session, report) = session
            .migrate_with_policy(
                &mut self.cluster,
                self.node_ids[target],
                Self::vendor(),
                &path,
                RestoreTarget::default(),
                &CprPolicy::pipelined(),
            )
            .expect("fleet live migration failed");
        // The destination pid's clock restarted from zero and read only
        // the restore cost; re-anchor it on the fleet timeline at the
        // yield point plus the full source+destination migration cost.
        self.cluster.process_mut(new_session.pid).clock = now + report.actual;
        let job = &mut self.jobs[idx as usize];
        job.migrations += 1;
        job.live_migrations += 1;
        job.migrate_req = None;
        job.last_nodes = vec![target];
        job.last_start = now;
        job.dump_files.push(path);
        self.migrations_live += 1;
        obs::emit(
            "fleet",
            now,
            obs::EventKind::TenantMigrated {
                job: job.spec.name.clone(),
                from_node: from as u64,
                to_node: target as u64,
                live: 1,
            },
        );
        tenant.sessions.push(new_session);
        tenant.slots = vec![(target, slot)];
        job.active = Some(tenant);
        let frontier = self.run_slice(idx);
        self.queue.push(frontier, Ev::Slice(idx));
    }

    /// A node whose checkpoint channel is backlogged past the threshold
    /// sheds its least important solo tenant to the coolest node with a
    /// free slot.
    fn maybe_rebalance(&mut self, now: SimTime) {
        if self.total_free == 0 {
            return;
        }
        let backlog = |set: Option<&simcore::channels::ChannelSet>, now: SimTime| {
            set.and_then(|s| s.lookup("ckpt.disk"))
                .map(|ch| {
                    let set = set.unwrap();
                    set.free_at(ch).max(now).since(now)
                })
                .unwrap_or(SimDuration::ZERO)
        };
        let mut hot: Option<(SimDuration, usize)> = None;
        let mut cool: Option<(SimDuration, usize)> = None;
        for n in 0..self.cfg.nodes {
            let b = backlog(self.chans.try_node(n), now);
            if b >= self.cfg.hot_backlog
                && self.free[n] < self.cfg.slots_per_node
                && hot.map(|(hb, _)| b > hb).unwrap_or(true)
            {
                hot = Some((b, n));
            }
            if self.free[n] > 0 && cool.map(|(cb, _)| b < cb).unwrap_or(true) {
                cool = Some((b, n));
            }
        }
        let (Some((hb, hot_n)), Some((cb, cool_n))) = (hot, cool) else {
            return;
        };
        if hot_n == cool_n || cb * 2 > hb {
            return;
        }
        // Least important running solo tenant on the hot node.
        let victim = self
            .running
            .iter()
            .rev()
            .find(|&&(_, j)| {
                let job = &self.jobs[j as usize];
                job.spec.ranks == 1
                    && !job.preempt_req
                    && job.migrate_req.is_none()
                    && job.last_nodes == [hot_n]
            })
            .copied();
        if let Some((_, j)) = victim {
            self.jobs[j as usize].migrate_req = Some(cool_n);
        }
    }

    fn baseline(&mut self, spec: &JobSpec) -> Vec<u64> {
        let bkey = (spec.workload, spec.scale_milli);
        if let Some(sums) = self.baselines.get(&bkey) {
            return sums.clone();
        }
        // Uninterrupted solo run of the same script in a scratch
        // cluster: the reference every interrupted execution must match.
        let mut scratch = Cluster::with_standard_nodes(1);
        let node = scratch.node_ids()[0];
        let mut session = CheclSession::launch(
            &mut scratch,
            node,
            Self::vendor(),
            CheclConfig::default(),
            spec.script(),
        );
        session
            .run(&mut scratch, StopCondition::Completion)
            .expect("baseline run failed");
        let sums = session.program.checksums.clone();
        self.baselines.insert(bkey, sums.clone());
        sums
    }

    fn complete(&mut self, idx: u32, now: SimTime) {
        let mut tenant = self.jobs[idx as usize]
            .active
            .take()
            .expect("complete idle");
        let was_disturbed = {
            let job = &self.jobs[idx as usize];
            job.preemptions > 0 || job.migrations > 0
        };
        let bit_exact = if self.cfg.check_bit_exact {
            let spec = self.jobs[idx as usize].spec.clone();
            let expect = self.baseline(&spec);
            Some(
                tenant
                    .sessions
                    .iter()
                    .all(|s| s.program.checksums == expect),
            )
        } else {
            None
        };
        let _ = was_disturbed;
        if self.jobs[idx as usize].preempt_req {
            self.jobs[idx as usize].preempt_req = false;
            self.pending_preempts -= 1;
        }
        // The dump chain is dead once the job is done (incremental
        // bases are only needed while another restore could happen);
        // dropping it keeps /nfs bounded over a 10k-job sweep.
        let dump_files = std::mem::take(&mut self.jobs[idx as usize].dump_files);
        let janitor = tenant.sessions[0].pid;
        for path in dump_files {
            let _ = self.cluster.delete_file(janitor, path.as_str());
        }
        for session in tenant.sessions.drain(..) {
            session.kill(&mut self.cluster);
        }
        self.release_slots(&tenant.slots);
        let k = key(&self.jobs[idx as usize], idx);
        self.running.remove(&k);
        self.set_ops += 1;
        let job = &mut self.jobs[idx as usize];
        job.phase = JobPhase::Done;
        job.completed_at = Some(now);
        job.bit_exact = bit_exact;
        job.final_node = job.last_nodes[0];
        let proc = job.proc.expect("admitted job has proc");
        let deadline = job.deadline.take();
        let deadline_at = job.spec.arrival + self.cfg.slo;
        self.procs.set_state(proc, ProcState::Done);
        // Timely completion revokes the pending deadline event — the
        // common case, so `cancel` is as hot as `push` here. A late
        // completion finds the event already popped (stale cancel is a
        // no-op) and records the miss.
        if let Some(ev) = deadline {
            self.queue.cancel(ev);
            if now > deadline_at {
                self.jobs[idx as usize].slo_missed = true;
            }
        }
        let job = &mut self.jobs[idx as usize];
        let slo_ok = !job.slo_missed && now.since(job.spec.arrival) <= self.cfg.slo;
        obs::emit(
            "fleet",
            now,
            obs::EventKind::TenantCompleted {
                job: job.spec.name.clone(),
                node: job.final_node as u64,
                latency_ns: now.since(job.spec.arrival).as_nanos(),
                preemptions: job.preemptions,
                migrations: job.migrations,
                generations: job.generations,
                bit_exact: match job.bit_exact {
                    Some(true) => 1,
                    _ => 0,
                },
                slo_ok: slo_ok as u64,
            },
        );
    }

    fn admit(&mut self, idx: u32, now: SimTime) {
        let proc = self.procs.spawn();
        debug_assert_eq!(proc.index(), idx as usize);
        self.jobs[idx as usize].proc = Some(proc);
        // Backpressure reject rung: a fleet already drowning in
        // checkpoint backlog refuses new work with a typed rejection
        // instead of queueing it into an SLO it cannot meet.
        if let Some(threshold) = self.cfg.reject_backlog {
            let (backlog, _) = self.max_backlog(now);
            if backlog >= threshold {
                let job = &mut self.jobs[idx as usize];
                job.rejected = true;
                job.phase = JobPhase::Done;
                self.procs.set_state(proc, ProcState::Done);
                obs::emit(
                    "fleet",
                    now,
                    obs::EventKind::AdmissionRejected {
                        job: job.spec.name.clone(),
                        backlog_ns: backlog.as_nanos(),
                    },
                );
                return;
            }
        }
        let ev = self.queue.push(now + self.cfg.slo, Ev::Deadline(idx));
        let job = &mut self.jobs[idx as usize];
        job.deadline = Some(ev);
        let k = key(&self.jobs[idx as usize], idx);
        self.ready.insert(k);
        self.set_ops += 1;
    }

    fn handle_slice(&mut self, idx: u32, now: SimTime) {
        let yielded = self.jobs[idx as usize]
            .active
            .as_ref()
            .expect("slice for idle job")
            .yielded;
        if yielded == YieldPoint::Done {
            self.complete(idx, now);
        } else if self.jobs[idx as usize].preempt_req {
            self.preempt(idx, now);
        } else if let Some(target) = self.jobs[idx as usize].migrate_req {
            // The request was flagged at rebalance time; the target may
            // have filled up since. Re-validate at the yield point and
            // drop stale requests instead of overpacking.
            let from = self.jobs[idx as usize].last_nodes[0];
            if target != from && self.free[target] > 0 {
                self.live_migrate(idx, target, now);
            } else {
                self.jobs[idx as usize].migrate_req = None;
                let frontier = self.run_slice(idx);
                self.queue.push(frontier, Ev::Slice(idx));
            }
        } else {
            let frontier = self.run_slice(idx);
            self.queue.push(frontier, Ev::Slice(idx));
        }
    }

    fn run(mut self) -> FleetReport {
        let arrivals: Vec<(SimTime, u32)> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (j.spec.arrival, i as u32))
            .collect();
        // Specs come pre-sorted from the mix generator; a custom list
        // is normalized here so admission order is arrival order.
        let mut order: Vec<usize> = (0..arrivals.len()).collect();
        order.sort_by_key(|&i| (arrivals[i].0, i));
        let mut cursor = 0usize;
        loop {
            let next_arrival = order.get(cursor).map(|&i| arrivals[i]);
            let next_event = self.queue.peek_time();
            let (now, is_arrival) = match (next_arrival, next_event) {
                (Some((ta, _)), Some(te)) if ta <= te => (ta, true),
                (Some((ta, _)), None) => (ta, true),
                (_, Some(te)) => (te, false),
                (None, None) => break,
            };
            self.events += 1;
            if std::env::var_os("FLEET_DEBUG").is_some() && self.events.is_multiple_of(1000) {
                eprintln!(
                    "ev={} now={:?} ready={} running={} free={} preempts={} gens={}",
                    self.events,
                    now,
                    self.ready.len(),
                    self.running.len(),
                    self.total_free,
                    self.preemptions,
                    self.generations,
                );
            }
            if is_arrival {
                let (_, idx) = next_arrival.unwrap();
                cursor += 1;
                self.admit(idx, now);
            } else {
                match self.queue.pop() {
                    Some((_, _, Ev::Slice(idx))) => self.handle_slice(idx, now),
                    Some((_, _, Ev::Deadline(idx))) => {
                        let job = &mut self.jobs[idx as usize];
                        job.deadline = None;
                        if job.phase != JobPhase::Done {
                            job.slo_missed = true;
                        }
                    }
                    None => unreachable!("peeked event vanished"),
                }
            }
            self.maybe_preempt(now);
            self.maybe_shed(now);
            self.maybe_rebalance(now);
            self.dispatch(now);
        }
        assert!(self.ready.is_empty(), "jobs stranded in the ready queue");
        assert!(self.procs.all_done(), "fleet drained with live tenants");
        self.report()
    }

    fn report(self) -> FleetReport {
        let mut latencies: Vec<SimDuration> = Vec::with_capacity(self.jobs.len());
        let mut outcomes = Vec::with_capacity(self.jobs.len());
        let mut first_arrival: Option<SimTime> = None;
        let mut last_done = SimTime::ZERO;
        let mut bit_checked = 0u64;
        let mut bit_ok = 0u64;
        let mut slo_attained = 0u64;
        let mut slo_missed = 0u64;
        let mut completed = 0usize;
        let mut rejected = 0usize;
        for job in &self.jobs {
            if job.rejected {
                // Refused at the door: no latency, no SLO verdict, no
                // outcome row — the ledger's admission_rejected record
                // is the full accounting.
                rejected += 1;
                continue;
            }
            let done = job.completed_at.expect("fleet drained incomplete");
            completed += 1;
            let latency = done.since(job.spec.arrival);
            latencies.push(latency);
            first_arrival =
                Some(first_arrival.map_or(job.spec.arrival, |f| f.min(job.spec.arrival)));
            last_done = last_done.max(done);
            if let Some(ok) = job.bit_exact {
                bit_checked += 1;
                if ok {
                    bit_ok += 1;
                }
            }
            let slo_ok = !job.slo_missed && latency <= self.cfg.slo;
            if slo_ok {
                slo_attained += 1;
            } else {
                slo_missed += 1;
            }
            outcomes.push(JobOutcome {
                name: job.spec.name.clone(),
                priority: job.spec.priority,
                ranks: job.spec.ranks,
                latency,
                preemptions: job.preemptions,
                migrations: job.migrations,
                live_migrations: job.live_migrations,
                generations: job.generations,
                bit_exact: job.bit_exact,
                slo_ok,
                node: job.final_node,
            });
        }
        latencies.sort();
        let pick = |q_num: usize, q_den: usize| -> SimDuration {
            if latencies.is_empty() {
                return SimDuration::ZERO;
            }
            let rank = (latencies.len() * q_num).div_ceil(q_den);
            latencies[rank.clamp(1, latencies.len()) - 1]
        };
        let makespan = last_done.since(first_arrival.unwrap_or(SimTime::ZERO));
        let secs = makespan.as_nanos() as f64 / 1e9;
        FleetReport {
            jobs: self.jobs.len(),
            completed,
            rejected,
            nodes: self.cfg.nodes,
            slots_per_node: self.cfg.slots_per_node,
            makespan,
            throughput_per_s: if secs > 0.0 {
                completed as f64 / secs
            } else {
                0.0
            },
            p50_latency: pick(1, 2),
            p99_latency: pick(99, 100),
            preemptions: self.preemptions,
            migrations_cold: self.migrations_cold,
            migrations_live: self.migrations_live,
            generations: self.generations,
            sched_events: self.events,
            sched_ops: self.queue.ops() + self.set_ops,
            bit_exact_checked: bit_checked,
            bit_exact_ok: bit_ok,
            slo_attained,
            slo_missed,
            outcomes,
        }
    }
}

/// Slot channel names (static so per-slice bookkeeping never formats).
const SLOT_NAMES: [&str; 16] = [
    "slot00", "slot01", "slot02", "slot03", "slot04", "slot05", "slot06", "slot07", "slot08",
    "slot09", "slot10", "slot11", "slot12", "slot13", "slot14", "slot15",
];

/// Per-rank dump path: solo jobs use the prefix itself, gang ranks get
/// a rank suffix.
fn rank_dump_path(prefix: &str, rank: usize, ranks: usize) -> String {
    if ranks == 1 {
        format!("{prefix}.ckpt")
    } else {
        format!("{prefix}.r{rank}.ckpt")
    }
}

/// Run `specs` through the fleet scheduler under `cfg`.
pub fn run_fleet(cfg: &FleetConfig, specs: Vec<JobSpec>) -> FleetReport {
    Sched::new(cfg.clone(), specs).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FleetConfig {
        FleetConfig {
            nodes: 2,
            slots_per_node: 2,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn tiny_fleet_drains_and_verifies() {
        let specs = default_job_mix(12, 7, SimDuration::from_micros(50));
        let report = run_fleet(&small_cfg(), specs);
        assert_eq!(report.completed, 12);
        assert_eq!(report.bit_exact_checked, 12);
        assert!(report.all_bit_exact(), "a job diverged from its baseline");
        assert!(report.makespan > SimDuration::ZERO);
    }

    #[test]
    fn drain_window_fences_new_placements() {
        let cfg = FleetConfig {
            nodes: 2,
            slots_per_node: 2,
            drains: vec![(
                0,
                SimTime::ZERO,
                SimTime::ZERO + SimDuration::from_secs(3600),
            )],
            ..FleetConfig::default()
        };
        let specs: Vec<JobSpec> = (0..2)
            .map(|i| JobSpec {
                name: format!("d{i}"),
                workload: "oclVectorAdd",
                scale_milli: 10,
                priority: 0,
                arrival: SimTime::ZERO,
                ranks: 1,
            })
            .collect();
        let report = run_fleet(&cfg, specs);
        assert_eq!(report.completed, 2);
        for o in &report.outcomes {
            assert_ne!(o.node, 0, "{} placed inside the fenced rack", o.name);
        }
    }

    #[test]
    fn brownout_ladder_completes_every_admitted_job() {
        // Node 0's checkpoint channel browns out to 5% for the whole
        // run; every rung of the ladder is armed. The invariants: no
        // admitted job is stranded, and SLO accounting stays drift-free
        // (attained + missed == completed, rejected jobs outside it).
        let cfg = FleetConfig {
            nodes: 2,
            slots_per_node: 2,
            stretch_backlog: Some(SimDuration::from_micros(500)),
            shed_backlog: Some(SimDuration::from_millis(1)),
            reject_backlog: Some(SimDuration::from_millis(4)),
            brownouts: vec![(
                0,
                SimTime::ZERO,
                SimTime::ZERO + SimDuration::from_secs(3600),
                5,
            )],
            ..FleetConfig::default()
        };
        let specs = default_job_mix(16, 3, SimDuration::from_micros(20));
        let report = run_fleet(&cfg, specs);
        assert_eq!(report.completed + report.rejected, report.jobs);
        assert_eq!(
            report.slo_attained + report.slo_missed,
            report.completed as u64,
            "SLO accounting drifted"
        );
        assert_eq!(report.outcomes.len(), report.completed);
        assert!(report.all_bit_exact(), "a job diverged under the brownout");
    }

    #[test]
    fn backpressure_off_is_bitwise_the_baseline() {
        // The ladder knobs default to None/empty: a run with the
        // defaults must be indistinguishable from one predating them.
        let cfg = small_cfg();
        let a = run_fleet(&cfg, default_job_mix(12, 7, SimDuration::from_micros(50)));
        assert_eq!(a.rejected, 0);
        assert_eq!(a.completed, a.jobs);
    }

    #[test]
    fn seed_replay_is_bit_identical() {
        let cfg = small_cfg();
        let a = run_fleet(&cfg, default_job_mix(20, 11, SimDuration::from_micros(30)));
        let b = run_fleet(&cfg, default_job_mix(20, 11, SimDuration::from_micros(30)));
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.preemptions, b.preemptions);
        assert_eq!(a.migrations_cold, b.migrations_cold);
        assert_eq!(a.sched_ops, b.sched_ops);
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            assert_eq!(x.latency, y.latency);
            assert_eq!(x.preemptions, y.preemptions);
            assert_eq!(x.node, y.node);
        }
    }
}
