//! `mpisim` — MPI-like ranks and coordinated global snapshots.
//!
//! The paper demonstrates CheCL on MPI programs (Open MPI + the Hursey
//! et al. coordinated checkpointing: "the checkpoint files of
//! individual computing nodes, called local snapshots, are aggregated
//! into a global snapshot, and stored in an NFS file. Therefore, the
//! checkpoint time also increases with the number of nodes", §IV-B /
//! Fig. 6). This crate provides exactly that substrate:
//!
//! * [`MpiWorld`] — a set of rank processes spread over cluster nodes,
//!   with barrier/allreduce collectives that advance the ranks'
//!   virtual clocks through a gigabit-Ethernet cost model;
//! * [`coordinated_checkpoint`] — barrier, then per-rank local
//!   snapshots serialized onto the shared NFS server (one writer at a
//!   time — the contention that makes global snapshot time grow with
//!   rank count).
//!
//! The checkpoint mechanism itself is injected as a closure, so the
//! same machinery snapshots plain CPU ranks via `blcr` and CheCL ranks
//! via `checl` without a dependency cycle.

use osproc::{Cluster, NodeId, Pid};
use simcore::{calib, obs, telemetry, ByteSize, SimDuration, SimTime};

/// A communicator: rank index → process.
#[derive(Clone, Debug)]
pub struct MpiWorld {
    ranks: Vec<Pid>,
}

impl MpiWorld {
    /// Launch `n_ranks` processes round-robin across `nodes`
    /// (`mpirun -np n`).
    pub fn init(cluster: &mut Cluster, nodes: &[NodeId], n_ranks: usize) -> MpiWorld {
        assert!(!nodes.is_empty(), "need at least one node");
        assert!(n_ranks > 0, "need at least one rank");
        let ranks: Vec<Pid> = (0..n_ranks)
            .map(|i| cluster.spawn(nodes[i % nodes.len()]))
            .collect();
        if telemetry::enabled() {
            for (i, &p) in ranks.iter().enumerate() {
                telemetry::name_process(p.0 as u64, &format!("rank {i} ({p})"));
            }
        }
        MpiWorld { ranks }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// The process behind a rank.
    pub fn rank_pid(&self, rank: usize) -> Pid {
        self.ranks[rank]
    }

    /// All rank pids in rank order.
    pub fn pids(&self) -> &[Pid] {
        &self.ranks
    }

    /// Replace a rank's process (after restart/migration).
    pub fn replace_rank(&mut self, rank: usize, pid: Pid) {
        self.ranks[rank] = pid;
    }

    /// The latest clock among all ranks.
    pub fn max_clock(&self, cluster: &Cluster) -> SimTime {
        self.ranks
            .iter()
            .map(|&p| cluster.process(p).clock)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// `MPI_Barrier`: all ranks synchronize to the slowest, paying a
    /// log₂(n)-deep exchange over the interconnect.
    pub fn barrier(&self, cluster: &mut Cluster) {
        let rounds = (self.size().max(2) as f64).log2().ceil() as u64;
        let cost = calib::gige_link().cost_empty() * rounds;
        let target = self.max_clock(cluster) + cost;
        self.collective(cluster, "mpi.barrier", target, None);
    }

    /// `MPI_Allreduce` on `bytes` of payload: a barrier-equivalent
    /// exchange that also moves data every round.
    pub fn allreduce(&self, cluster: &mut Cluster, bytes: ByteSize) {
        let rounds = (self.size().max(2) as f64).log2().ceil() as u64;
        let per_round = calib::gige_link().cost(bytes);
        let target = self.max_clock(cluster) + per_round * rounds;
        self.collective(cluster, "mpi.allreduce", target, Some(bytes));
    }

    /// Advance every rank to `target`, tracing one wait span per rank
    /// (ranks that arrived early show longer waits on their timeline).
    fn collective(
        &self,
        cluster: &mut Cluster,
        name: &'static str,
        target: SimTime,
        bytes: Option<ByteSize>,
    ) {
        let trace = telemetry::enabled();
        for &p in &self.ranks {
            let arrived = cluster.process(p).clock;
            cluster.process_mut(p).clock = target;
            if trace {
                let _rank = telemetry::track_scope(telemetry::Track::process(p.0 as u64));
                let mut args = vec![("ranks", (self.size() as u64).into())];
                if let Some(b) = bytes {
                    args.push(("bytes", b.as_u64().into()));
                }
                telemetry::span_begin("mpi", name, arrived, args);
                telemetry::span_end(
                    "mpi",
                    name,
                    target,
                    vec![("wait_ns", target.since(arrived).into())],
                );
            }
        }
        if trace {
            telemetry::counter_add("mpi.collectives", 1);
        }
    }

    /// Point-to-point send: advances both clocks past the transfer.
    pub fn send(&self, cluster: &mut Cluster, from: usize, to: usize, bytes: ByteSize) {
        let cost = calib::gige_link().cost(bytes);
        let sender = self.ranks[from];
        let receiver = self.ranks[to];
        let depart = cluster.process(sender).clock + cost;
        cluster.process_mut(sender).clock = depart;
        let r = cluster.process_mut(receiver);
        r.clock = r.clock.max(depart);
        if telemetry::enabled() {
            let arrive = cluster.process(receiver).clock;
            {
                let _s = telemetry::track_scope(telemetry::Track::process(sender.0 as u64));
                telemetry::instant(
                    "mpi",
                    "mpi.send",
                    depart,
                    vec![("to", (to as u64).into()), ("bytes", bytes.as_u64().into())],
                );
            }
            {
                let _r = telemetry::track_scope(telemetry::Track::process(receiver.0 as u64));
                telemetry::instant(
                    "mpi",
                    "mpi.recv",
                    arrive,
                    vec![
                        ("from", (from as u64).into()),
                        ("bytes", bytes.as_u64().into()),
                    ],
                );
            }
            telemetry::counter_add("mpi.messages", 1);
            telemetry::counter_add("mpi.bytes", bytes.as_u64());
        }
    }
}

/// The result of one coordinated (global) checkpoint.
#[derive(Clone, Debug)]
pub struct GlobalSnapshot {
    /// Per-rank snapshot file paths (on the shared mount).
    pub files: Vec<String>,
    /// Per-rank snapshot sizes.
    pub sizes: Vec<ByteSize>,
    /// Wall time from the coordination barrier to the last local
    /// snapshot landing in the global store.
    pub elapsed: SimDuration,
}

impl GlobalSnapshot {
    /// Total global snapshot size.
    pub fn total_size(&self) -> ByteSize {
        self.sizes.iter().copied().sum()
    }
}

/// Coordinated checkpointing (Hursey et al.): barrier all ranks, then
/// write each rank's local snapshot into the shared store under
/// `prefix`. The shared NFS server admits one snapshot writer at a
/// time, so elapsed time grows with both snapshot size *and* rank
/// count — the two trends of Fig. 6.
///
/// `ckpt_rank(cluster, pid, path)` performs one rank's snapshot and
/// returns its file size; it is `blcr::checkpoint` for plain ranks or
/// a `checl` checkpoint for OpenCL ranks.
pub fn coordinated_checkpoint<E>(
    cluster: &mut Cluster,
    world: &MpiWorld,
    prefix: &str,
    ckpt_rank: impl FnMut(&mut Cluster, Pid, &str) -> Result<ByteSize, E>,
) -> Result<GlobalSnapshot, E> {
    coordinated_core(cluster, world, prefix, false, ckpt_rank).map_err(|abort| abort.error)
}

/// The single serialized-writer loop behind both coordination flavors.
///
/// With `rollback_on_error` the failure path is the atomic contract:
/// delete the local snapshots already landed, trace the abort, close
/// the global-snapshot span. Without it the error propagates
/// immediately — earlier rank files stay on disk and the span stays
/// open, exactly as a `?` out of the loop would leave things.
fn coordinated_core<E>(
    cluster: &mut Cluster,
    world: &MpiWorld,
    prefix: &str,
    rollback_on_error: bool,
    mut ckpt_rank: impl FnMut(&mut Cluster, Pid, &str) -> Result<ByteSize, E>,
) -> Result<GlobalSnapshot, SnapshotAbort<E>> {
    world.barrier(cluster);
    let start = world.max_clock(cluster);
    if telemetry::enabled() {
        let _cluster_track = telemetry::track_scope(telemetry::Track::CLUSTER);
        telemetry::span_begin(
            "mpi",
            "mpi.global_snapshot",
            start,
            vec![
                ("ranks", (world.size() as u64).into()),
                ("prefix", prefix.into()),
            ],
        );
    }
    let mut files = Vec::with_capacity(world.size());
    let mut sizes = Vec::with_capacity(world.size());
    // One writer at a time on the shared server: each rank may begin
    // its write only when the previous rank's write has finished.
    let mut server_free = start;
    for rank in 0..world.size() {
        let pid = world.rank_pid(rank);
        {
            let p = cluster.process_mut(pid);
            p.clock = p.clock.max(server_free);
        }
        let path = format!("{prefix}.rank{rank}.ckpt");
        match ckpt_rank(cluster, pid, &path) {
            Ok(size) => {
                server_free = cluster.process(pid).clock;
                files.push(path);
                sizes.push(size);
            }
            Err(error) => {
                if !rollback_on_error {
                    return Err(SnapshotAbort { rank, error });
                }
                server_free = cluster.process(pid).clock.max(server_free);
                // Roll back the ranks that did land. Deletion may itself
                // fail mid-outage; a leftover local snapshot under a
                // rank-file name is harmless without its siblings.
                for (r, f) in files.iter().enumerate() {
                    let _ = cluster.delete_file(world.rank_pid(r), f);
                }
                if telemetry::enabled() {
                    let _cluster_track = telemetry::track_scope(telemetry::Track::CLUSTER);
                    telemetry::instant(
                        telemetry::RECOVERY_CATEGORY,
                        "recovery.snapshot_abort",
                        server_free,
                        vec![
                            ("rank", (rank as u64).into()),
                            ("rolled_back", (files.len() as u64).into()),
                        ],
                    );
                    telemetry::span_end(
                        "mpi",
                        "mpi.global_snapshot",
                        server_free,
                        vec![("aborted_rank", (rank as u64).into())],
                    );
                    telemetry::counter_add("recovery.snapshot_aborts", 1);
                }
                return Err(SnapshotAbort { rank, error });
            }
        }
    }
    let snapshot = GlobalSnapshot {
        files,
        sizes,
        elapsed: server_free.since(start),
    };
    if telemetry::enabled() {
        let _cluster_track = telemetry::track_scope(telemetry::Track::CLUSTER);
        telemetry::span_end(
            "mpi",
            "mpi.global_snapshot",
            server_free,
            vec![
                ("elapsed_ns", snapshot.elapsed.into()),
                ("total_bytes", snapshot.total_size().as_u64().into()),
            ],
        );
        telemetry::counter_add("mpi.global_snapshots", 1);
    }
    // The global snapshot is itself a dump whose provenance is the set
    // of per-rank files: a node with `bases` pointing at each rank's
    // checkpoint, so `lineage(prefix)` walks the whole coordinated set.
    if obs::enabled() {
        obs::emit(
            "mpi",
            server_free,
            obs::EventKind::CheckpointCommitted {
                path: prefix.to_string(),
                format: "coordinated".to_string(),
                policy: "coordinated".to_string(),
                bases: snapshot.files.clone(),
                buffers: world.size() as u64,
                skipped: 0,
                chunks: snapshot.files.len() as u64,
                logical_bytes: snapshot.total_size().as_u64(),
                file_bytes: snapshot.total_size().as_u64(),
                sync_ns: 0,
                preprocess_ns: 0,
                write_ns: snapshot.elapsed.as_nanos(),
                postprocess_ns: 0,
                cost_ns: snapshot.elapsed.as_nanos(),
            },
        );
    }
    Ok(snapshot)
}

/// A coordinated checkpoint that aborted at one rank's local snapshot.
/// The partial global snapshot has been rolled back — local snapshots
/// already on the shared store are deleted — because a global snapshot
/// missing any rank is unrestartable and worse than none: a restart
/// chain must not be tempted by it.
#[derive(Debug)]
pub struct SnapshotAbort<E> {
    /// The rank whose local snapshot failed.
    pub rank: usize,
    /// The underlying per-rank failure.
    pub error: E,
}

impl<E: std::fmt::Display> std::fmt::Display for SnapshotAbort<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "global snapshot aborted at rank {}: {}",
            self.rank, self.error
        )
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for SnapshotAbort<E> {}

/// [`coordinated_checkpoint`] with abort/rollback semantics: if any
/// rank's local snapshot fails (disk fault, NFS outage), the local
/// snapshots already written under `prefix` are deleted and the whole
/// attempt reports a [`SnapshotAbort`] naming the failed rank. Either a
/// complete global snapshot lands or nothing does.
pub fn coordinated_checkpoint_atomic<E>(
    cluster: &mut Cluster,
    world: &MpiWorld,
    prefix: &str,
    ckpt_rank: impl FnMut(&mut Cluster, Pid, &str) -> Result<ByteSize, E>,
) -> Result<GlobalSnapshot, SnapshotAbort<E>> {
    coordinated_core(cluster, world, prefix, true, ckpt_rank)
}

/// Retry [`coordinated_checkpoint_atomic`] up to `max_attempts` times
/// with doubling virtual-time backoff charged to every rank — the
/// job-level answer to a transient storage fault (an NFS outage window
/// ends, the retry lands).
pub fn coordinated_checkpoint_with_retry<E>(
    cluster: &mut Cluster,
    world: &MpiWorld,
    prefix: &str,
    max_attempts: u32,
    backoff: SimDuration,
    mut ckpt_rank: impl FnMut(&mut Cluster, Pid, &str) -> Result<ByteSize, E>,
) -> Result<GlobalSnapshot, SnapshotAbort<E>> {
    assert!(max_attempts >= 1, "need at least one attempt");
    let mut last: Option<SnapshotAbort<E>> = None;
    for attempt in 0..max_attempts {
        if attempt > 0 {
            let wait = backoff * (1u64 << (attempt - 1).min(16));
            for &p in world.pids() {
                cluster.process_mut(p).clock += wait;
            }
            if telemetry::enabled() {
                let _cluster_track = telemetry::track_scope(telemetry::Track::CLUSTER);
                telemetry::instant(
                    telemetry::RECOVERY_CATEGORY,
                    "recovery.snapshot_retry",
                    world.max_clock(cluster),
                    vec![("attempt", (u64::from(attempt) + 1).into())],
                );
                telemetry::counter_add("recovery.actions", 1);
            }
        }
        match coordinated_checkpoint_atomic(cluster, world, prefix, &mut ckpt_rank) {
            Ok(snapshot) => return Ok(snapshot),
            Err(abort) => last = Some(abort),
        }
    }
    Err(last.expect("loop ran at least once"))
}

/// Restart every rank of a failed job from a global snapshot,
/// round-robin across `nodes`, returning the new world.
///
/// `restart_rank(cluster, node, path)` restores one rank (plain
/// `blcr::restart`, or a CheCL restart for OpenCL ranks).
pub fn restart_world<E>(
    cluster: &mut Cluster,
    snapshot: &GlobalSnapshot,
    nodes: &[NodeId],
    mut restart_rank: impl FnMut(&mut Cluster, NodeId, &str) -> Result<Pid, E>,
) -> Result<MpiWorld, E> {
    assert!(!nodes.is_empty(), "need at least one node");
    let mut ranks = Vec::with_capacity(snapshot.files.len());
    for (i, file) in snapshot.files.iter().enumerate() {
        let node = nodes[i % nodes.len()];
        ranks.push(restart_rank(cluster, node, file)?);
    }
    Ok(MpiWorld { ranks })
}

/// The outcome of migrating one rank to another node.
#[derive(Clone, Debug)]
pub struct RankMigration {
    /// The migrated rank index.
    pub rank: usize,
    /// Node the rank left.
    pub from_node: NodeId,
    /// Node the rank now runs on.
    pub to_node: NodeId,
    /// The torn-down source process.
    pub old_pid: Pid,
    /// The restarted destination process (now behind `rank`).
    pub new_pid: Pid,
    /// The migration checkpoint file on the shared store.
    pub file: String,
    /// Size of that checkpoint file.
    pub size: ByteSize,
    /// Wall time from the coordination barrier until the destination
    /// process is ready to rejoin collectives.
    pub elapsed: SimDuration,
}

/// Migrate one rank of a live job to `dest_node`: barrier the world
/// (so no in-flight message targets the moving rank), dump the rank to
/// `{prefix}.rank{N}.migrate.ckpt`, restart it on the destination, and
/// splice the new process into the communicator.
///
/// `ckpt_rank` / `restart_rank` are injected exactly as in
/// [`coordinated_checkpoint`] and [`restart_world`] — `blcr` for plain
/// ranks, a `checl` policy-driven snapshot/restore pair for OpenCL
/// ranks — so a single rank can hop vendors mid-job. On any failure
/// the source rank is left alive and in place: the world is unchanged
/// and the job may simply continue (or retry toward another node).
pub fn migrate_rank<E>(
    cluster: &mut Cluster,
    world: &mut MpiWorld,
    rank: usize,
    dest_node: NodeId,
    prefix: &str,
    ckpt_rank: impl FnOnce(&mut Cluster, Pid, &str) -> Result<ByteSize, E>,
    restart_rank: impl FnOnce(&mut Cluster, NodeId, &str) -> Result<Pid, E>,
) -> Result<RankMigration, E> {
    assert!(rank < world.size(), "rank out of range");
    world.barrier(cluster);
    let old_pid = world.rank_pid(rank);
    let from_node = cluster.process(old_pid).node;
    let start = world.max_clock(cluster);
    if telemetry::enabled() {
        let _cluster_track = telemetry::track_scope(telemetry::Track::CLUSTER);
        telemetry::span_begin(
            "mpi",
            "mpi.migrate_rank",
            start,
            vec![("rank", (rank as u64).into()), ("prefix", prefix.into())],
        );
    }
    let file = format!("{prefix}.rank{rank}.migrate.ckpt");
    let size = match ckpt_rank(cluster, old_pid, &file) {
        Ok(size) => size,
        Err(error) => {
            if telemetry::enabled() {
                let _cluster_track = telemetry::track_scope(telemetry::Track::CLUSTER);
                telemetry::span_end(
                    "mpi",
                    "mpi.migrate_rank",
                    cluster.process(old_pid).clock,
                    vec![("failed_phase", "checkpoint".into())],
                );
            }
            return Err(error);
        }
    };
    let dump_done = cluster.process(old_pid).clock;
    let new_pid = match restart_rank(cluster, dest_node, &file) {
        Ok(pid) => pid,
        Err(error) => {
            // The restart never came up; the source rank is still alive
            // and the communicator still points at it.
            if telemetry::enabled() {
                let _cluster_track = telemetry::track_scope(telemetry::Track::CLUSTER);
                telemetry::span_end(
                    "mpi",
                    "mpi.migrate_rank",
                    dump_done,
                    vec![("failed_phase", "restart".into())],
                );
            }
            return Err(error);
        }
    };
    // The destination clock started at zero and now reads the restart
    // cost; in wall time that work began only once the dump landed.
    let dest_side = cluster.process(new_pid).clock.since(SimTime::ZERO);
    let ready = dump_done + dest_side;
    cluster.process_mut(new_pid).clock = ready;
    cluster.kill(old_pid);
    world.replace_rank(rank, new_pid);
    let migration = RankMigration {
        rank,
        from_node,
        to_node: dest_node,
        old_pid,
        new_pid,
        file,
        size,
        elapsed: ready.since(start),
    };
    if telemetry::enabled() {
        let _cluster_track = telemetry::track_scope(telemetry::Track::CLUSTER);
        telemetry::span_end(
            "mpi",
            "mpi.migrate_rank",
            ready,
            vec![
                ("elapsed_ns", migration.elapsed.into()),
                ("file_bytes", migration.size.as_u64().into()),
            ],
        );
        telemetry::counter_add("mpi.rank_migrations", 1);
    }
    Ok(migration)
}

/// Re-create a *dead* rank on `spare` from its file in the last global
/// snapshot and splice the new process into the communicator — the
/// node-crash half of supervision, where [`migrate_rank`] is
/// impossible because there is no live source to dump.
///
/// The respawned rank's clock is pushed up to the world's frontier:
/// the survivors kept computing while the rank was down, and the
/// replacement cannot rejoin collectives in their past. The rank then
/// re-executes from the snapshot, which is exactly the wasted work the
/// supervisor accounts for.
pub fn respawn_rank_on_spare<E>(
    cluster: &mut Cluster,
    world: &mut MpiWorld,
    rank: usize,
    snapshot: &GlobalSnapshot,
    spare: NodeId,
    restart_rank: impl FnOnce(&mut Cluster, NodeId, &str) -> Result<Pid, E>,
) -> Result<Pid, E> {
    assert!(rank < world.size(), "rank out of range");
    assert!(rank < snapshot.files.len(), "snapshot lacks this rank");
    let frontier = world.max_clock(cluster);
    let new_pid = restart_rank(cluster, spare, &snapshot.files[rank])?;
    let restore_cost = cluster.process(new_pid).clock.since(SimTime::ZERO);
    let ready = frontier + restore_cost;
    cluster.process_mut(new_pid).clock = ready;
    world.replace_rank(rank, new_pid);
    if telemetry::enabled() {
        let _cluster_track = telemetry::track_scope(telemetry::Track::CLUSTER);
        telemetry::instant(
            "mpi",
            "mpi.respawn_rank",
            ready,
            vec![
                ("rank", (rank as u64).into()),
                ("file", snapshot.files[rank].as_str().into()),
            ],
        );
        telemetry::counter_add("mpi.rank_respawns", 1);
    }
    Ok(new_pid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_and_world(nodes: usize, ranks: usize) -> (Cluster, MpiWorld) {
        let mut cluster = Cluster::with_standard_nodes(nodes);
        let node_ids = cluster.node_ids();
        let world = MpiWorld::init(&mut cluster, &node_ids, ranks);
        (cluster, world)
    }

    #[test]
    fn ranks_distributed_round_robin() {
        let (cluster, world) = cluster_and_world(2, 4);
        assert_eq!(world.size(), 4);
        let n0 = cluster.process(world.rank_pid(0)).node;
        let n1 = cluster.process(world.rank_pid(1)).node;
        let n2 = cluster.process(world.rank_pid(2)).node;
        assert_ne!(n0, n1);
        assert_eq!(n0, n2);
    }

    #[test]
    fn dead_rank_respawns_on_a_spare_at_the_frontier() {
        let (mut cluster, mut world) = cluster_and_world(3, 2);
        for (i, &p) in world.pids().iter().enumerate() {
            cluster.process_mut(p).image.put("rank", vec![i as u8; 8]);
        }
        let snap =
            coordinated_checkpoint(&mut cluster, &world, "/nfs/w", blcr::checkpoint).unwrap();
        // Rank 1's node dies; the survivor computes on.
        let dead_node = cluster.process(world.rank_pid(1)).node;
        cluster.fail_node(dead_node);
        cluster.process_mut(world.rank_pid(0)).clock += SimDuration::from_millis(40);
        let frontier = world.max_clock(&cluster);
        let spare = cluster.node_ids()[2];
        let new_pid =
            respawn_rank_on_spare(&mut cluster, &mut world, 1, &snap, spare, blcr::restart)
                .unwrap();
        assert_eq!(world.rank_pid(1), new_pid);
        assert_eq!(cluster.process(new_pid).node, spare);
        assert!(cluster.process(new_pid).is_alive());
        // State is from the snapshot, clock is past the frontier.
        assert_eq!(
            cluster.process(new_pid).image.get("rank"),
            Some(&vec![1u8; 8][..])
        );
        assert!(cluster.process(new_pid).clock > frontier);
        // The world can barrier again.
        world.barrier(&mut cluster);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let (mut cluster, world) = cluster_and_world(2, 4);
        cluster.process_mut(world.rank_pid(2)).clock += SimDuration::from_millis(5);
        world.barrier(&mut cluster);
        let clocks: Vec<SimTime> = world
            .pids()
            .iter()
            .map(|&p| cluster.process(p).clock)
            .collect();
        assert!(clocks.windows(2).all(|w| w[0] == w[1]));
        assert!(clocks[0] > SimTime::ZERO + SimDuration::from_millis(5));
    }

    #[test]
    fn allreduce_costs_more_with_payload() {
        let (mut cluster, world) = cluster_and_world(2, 4);
        world.allreduce(&mut cluster, ByteSize::mib(1));
        let t1 = world.max_clock(&cluster);
        world.allreduce(&mut cluster, ByteSize::mib(8));
        let t2 = world.max_clock(&cluster);
        assert!(t2.since(t1) > t1.since(SimTime::ZERO));
    }

    #[test]
    fn send_advances_receiver() {
        let (mut cluster, world) = cluster_and_world(2, 2);
        world.send(&mut cluster, 0, 1, ByteSize::mib(4));
        let s = cluster.process(world.rank_pid(0)).clock;
        let r = cluster.process(world.rank_pid(1)).clock;
        assert_eq!(s, r);
        assert!(s > SimTime::ZERO);
    }

    #[test]
    fn global_snapshot_grows_with_ranks_and_size() {
        let snap = |ranks: usize, bytes: usize| {
            let (mut cluster, world) = cluster_and_world(2, ranks);
            for &p in world.pids() {
                cluster.process_mut(p).image.put("data", vec![0u8; bytes]);
            }
            coordinated_checkpoint(&mut cluster, &world, "/nfs/job", blcr::checkpoint).unwrap()
        };
        let small_few = snap(2, 1 << 20);
        let small_many = snap(4, 1 << 20);
        let big_few = snap(2, 8 << 20);
        // More ranks → longer (serialized NFS writes).
        assert!(small_many.elapsed > small_few.elapsed);
        // Bigger problem → longer.
        assert!(big_few.elapsed > small_few.elapsed);
        // And the snapshot sizes add up.
        assert_eq!(small_many.sizes.len(), 4);
        assert!(small_many.total_size() > small_few.total_size());
    }

    #[test]
    fn whole_world_restart() {
        let (mut cluster, world) = cluster_and_world(2, 4);
        for (i, &p) in world.pids().iter().enumerate() {
            cluster
                .process_mut(p)
                .image
                .put("rank", vec![i as u8 + 1; 16]);
        }
        let snap =
            coordinated_checkpoint(&mut cluster, &world, "/nfs/w", blcr::checkpoint).unwrap();
        // The whole job dies.
        for &p in world.pids() {
            cluster.kill(p);
        }
        // Bring it back on one surviving node.
        let nodes = [cluster.node_ids()[0]];
        let new_world = restart_world(&mut cluster, &snap, &nodes, blcr::restart).unwrap();
        assert_eq!(new_world.size(), 4);
        for (i, &p) in new_world.pids().iter().enumerate() {
            assert_eq!(
                cluster.process(p).image.get("rank"),
                Some(&vec![i as u8 + 1; 16][..]),
                "rank {i} state"
            );
            assert_eq!(cluster.process(p).node, nodes[0]);
        }
    }

    #[test]
    fn aborted_snapshot_rolls_back_earlier_ranks() {
        let (mut cluster, world) = cluster_and_world(2, 3);
        // Rank 1's local snapshot fails; ranks write in rank order, so
        // rank 0's file is already on the shared store by then.
        cluster.install_faults(
            osproc::FaultPlan::new(21)
                .fail_next_writes(u32::MAX)
                .only_paths_containing(".rank1."),
        );
        let abort =
            coordinated_checkpoint_atomic(&mut cluster, &world, "/nfs/job", |c, p, path| {
                blcr::checkpoint(c, p, path)
            })
            .unwrap_err();
        assert_eq!(abort.rank, 1);
        // Rank 0's partial contribution must be gone.
        let node0 = cluster.process(world.rank_pid(0)).node;
        assert_eq!(cluster.file_size_on(node0, "/nfs/job.rank0.ckpt"), None);
    }

    #[test]
    fn snapshot_retry_survives_transient_faults() {
        let (mut cluster, world) = cluster_and_world(2, 2);
        // Exactly one write fails: the first attempt aborts at rank 0,
        // the retry lands a complete global snapshot.
        cluster.install_faults(osproc::FaultPlan::new(22).fail_next_writes(1));
        let t0 = world.max_clock(&cluster);
        let snap = coordinated_checkpoint_with_retry(
            &mut cluster,
            &world,
            "/nfs/job",
            3,
            SimDuration::from_millis(50),
            blcr::checkpoint,
        )
        .unwrap();
        assert_eq!(snap.files.len(), 2);
        // The retry's backoff shows up as virtual time.
        assert!(world.max_clock(&cluster).since(t0) > SimDuration::from_millis(50));
        // And the snapshot restarts.
        let node0 = cluster.node_ids()[0];
        blcr::restart(&mut cluster, node0, &snap.files[1]).unwrap();
    }

    #[test]
    fn snapshot_retry_gives_up_after_max_attempts() {
        let (mut cluster, world) = cluster_and_world(1, 2);
        cluster.install_faults(osproc::FaultPlan::new(23).fail_next_writes(u32::MAX));
        let abort = coordinated_checkpoint_with_retry(
            &mut cluster,
            &world,
            "/nfs/job",
            2,
            SimDuration::from_millis(10),
            blcr::checkpoint,
        )
        .unwrap_err();
        assert_eq!(abort.rank, 0);
    }

    #[test]
    fn migrate_rank_moves_one_rank_and_preserves_state() {
        let (mut cluster, mut world) = cluster_and_world(2, 4);
        for (i, &p) in world.pids().iter().enumerate() {
            cluster
                .process_mut(p)
                .image
                .put("rank-data", vec![i as u8 + 10; 32]);
        }
        let node0 = cluster.node_ids()[0];
        let old_pid = world.rank_pid(1);
        let from_node = cluster.process(old_pid).node;
        assert_ne!(from_node, node0, "rank 1 starts off node 0");
        let mig = migrate_rank(
            &mut cluster,
            &mut world,
            1,
            node0,
            "/nfs/job",
            blcr::checkpoint,
            blcr::restart,
        )
        .unwrap();
        assert_eq!(mig.rank, 1);
        assert_eq!(mig.from_node, from_node);
        assert_eq!(mig.to_node, node0);
        assert_eq!(mig.file, "/nfs/job.rank1.migrate.ckpt");
        assert!(mig.elapsed > SimDuration::ZERO);
        // The communicator now routes rank 1 to the new process…
        assert_eq!(world.rank_pid(1), mig.new_pid);
        assert_ne!(mig.new_pid, mig.old_pid);
        assert_eq!(cluster.process(mig.new_pid).node, node0);
        assert_eq!(
            cluster.process(mig.new_pid).image.get("rank-data"),
            Some(&[11u8; 32][..])
        );
        // …the old one is dead, and collectives still work.
        assert!(!cluster.process(mig.old_pid).is_alive());
        world.barrier(&mut cluster);
        world.allreduce(&mut cluster, ByteSize::mib(1));
        // The migrated rank's clock includes both dump and restart.
        assert!(world.max_clock(&cluster) > SimTime::ZERO + mig.elapsed);
    }

    #[test]
    fn migrate_rank_failure_leaves_source_rank_alive() {
        let (mut cluster, mut world) = cluster_and_world(2, 2);
        cluster.install_faults(
            osproc::FaultPlan::new(31)
                .fail_next_writes(u32::MAX)
                .only_paths_containing(".migrate."),
        );
        let node0 = cluster.node_ids()[0];
        let old_pid = world.rank_pid(1);
        migrate_rank(
            &mut cluster,
            &mut world,
            1,
            node0,
            "/nfs/job",
            blcr::checkpoint,
            blcr::restart,
        )
        .unwrap_err();
        // The dump failed, so nothing moved: the rank is intact and the
        // job keeps running.
        assert_eq!(world.rank_pid(1), old_pid);
        assert!(cluster.process(old_pid).is_alive());
        world.barrier(&mut cluster);
    }

    #[test]
    fn global_snapshot_restartable_per_rank() {
        let (mut cluster, world) = cluster_and_world(2, 2);
        for (i, &p) in world.pids().iter().enumerate() {
            cluster
                .process_mut(p)
                .image
                .put("rank-data", vec![i as u8; 64]);
        }
        let snap =
            coordinated_checkpoint(&mut cluster, &world, "/nfs/md", blcr::checkpoint).unwrap();
        // Restart rank 1 on node 0 (cross-node via NFS).
        let node0 = cluster.node_ids()[0];
        let new_pid = blcr::restart(&mut cluster, node0, &snap.files[1]).unwrap();
        assert_eq!(
            cluster.process(new_pid).image.get("rank-data"),
            Some(&[1u8; 64][..])
        );
    }
}
