//! The cluster: nodes, mounted filesystems, and the process table.

use crate::fault::{FaultPlan, WriteFault};
use crate::fs::{Fs, FsError, FsKind};
use crate::ids::{FsId, NodeId, Pid};
use crate::process::{ProcState, Process, Signal};
use simcore::{ByteSize, SimDuration, SimTime};
use std::collections::BTreeMap;

/// A machine in the cluster.
#[derive(Clone, Debug)]
pub struct Node {
    /// Node id.
    pub id: NodeId,
    /// Host name (e.g. `"pc0"`).
    pub name: String,
    /// Mount table: mount point → filesystem. Longest-prefix match wins
    /// during path resolution.
    pub mounts: BTreeMap<String, FsId>,
}

impl Node {
    /// Resolve an absolute path to `(filesystem, path)` via the mount
    /// table.
    pub fn resolve(&self, path: &str) -> Option<(FsId, String)> {
        self.mounts
            .iter()
            .filter(|(mp, _)| path == *mp || path.starts_with(&format!("{mp}/")))
            .max_by_key(|(mp, _)| mp.len())
            .map(|(_, fs)| (*fs, path.to_string()))
    }
}

/// The whole simulated cluster.
///
/// Processes, nodes and filesystems are arena-allocated and addressed
/// by id so the simulation stays single-threaded and deterministic.
#[derive(Debug, Default)]
pub struct Cluster {
    nodes: Vec<Node>,
    filesystems: Vec<Fs>,
    processes: BTreeMap<Pid, Process>,
    next_pid: u32,
    /// Installed fault schedule, if any. `None` (the default) means the
    /// fault hooks are never consulted — zero cost when off.
    faults: Option<FaultPlan>,
}

impl Cluster {
    /// An empty cluster.
    pub fn new() -> Self {
        Cluster::default()
    }

    /// Build the standard evaluation node layout of the paper: every
    /// node gets a local disk (`/local`) and a RAM disk (`/ram`), and
    /// all nodes share one NFS mount (`/nfs`).
    pub fn with_standard_nodes(n: usize) -> Self {
        let mut c = Cluster::new();
        let nfs = c.add_fs(Fs::new(FsKind::Nfs, "nfs-shared"));
        for i in 0..n {
            let node = c.add_node(format!("pc{i}"));
            let local = c.add_fs(Fs::new(FsKind::LocalDisk, format!("pc{i}-disk")));
            let ram = c.add_fs(Fs::new(FsKind::RamDisk, format!("pc{i}-ram")));
            c.mount(node, "/local", local);
            c.mount(node, "/ram", ram);
            c.mount(node, "/nfs", nfs);
        }
        c
    }

    /// Add a node.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            name: name.into(),
            mounts: BTreeMap::new(),
        });
        id
    }

    /// Add a filesystem instance.
    pub fn add_fs(&mut self, fs: Fs) -> FsId {
        let id = FsId(self.filesystems.len() as u32);
        self.filesystems.push(fs);
        id
    }

    /// Mount a filesystem on a node.
    pub fn mount(&mut self, node: NodeId, mount_point: &str, fs: FsId) {
        self.nodes[node.0 as usize]
            .mounts
            .insert(mount_point.to_string(), fs);
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// All node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id).collect()
    }

    /// Filesystem accessor.
    pub fn fs(&self, id: FsId) -> &Fs {
        &self.filesystems[id.0 as usize]
    }

    /// Mutable filesystem accessor.
    pub fn fs_mut(&mut self, id: FsId) -> &mut Fs {
        &mut self.filesystems[id.0 as usize]
    }

    /// Spawn a fresh process on `node`.
    pub fn spawn(&mut self, node: NodeId) -> Pid {
        assert!(
            (node.0 as usize) < self.nodes.len(),
            "spawn on unknown node"
        );
        self.next_pid += 1;
        let pid = Pid(self.next_pid);
        self.processes.insert(pid, Process::new(pid, node, None));
        pid
    }

    /// Fork a child of `parent` on the same node. The child starts with
    /// an empty image (we model `fork` + `exec` of a helper binary, which
    /// is how CheCL launches its API proxy) and inherits the parent's
    /// clock plus the fork cost.
    pub fn fork(&mut self, parent: Pid, cost: SimDuration) -> Pid {
        let (node, clock) = {
            let p = self.process(parent);
            assert!(p.is_alive(), "fork from dead process");
            (p.node, p.clock)
        };
        self.next_pid += 1;
        let child = Pid(self.next_pid);
        let mut proc = Process::new(child, node, Some(parent));
        proc.clock = clock + cost;
        self.processes.insert(child, proc);
        let parent_proc = self.process_mut(parent);
        parent_proc.children.push(child);
        parent_proc.clock += cost;
        child
    }

    /// Process accessor. Panics on unknown pid (a simulation bug).
    pub fn process(&self, pid: Pid) -> &Process {
        self.processes
            .get(&pid)
            .unwrap_or_else(|| panic!("unknown {pid}"))
    }

    /// Mutable process accessor.
    pub fn process_mut(&mut self, pid: Pid) -> &mut Process {
        self.processes
            .get_mut(&pid)
            .unwrap_or_else(|| panic!("unknown {pid}"))
    }

    /// All pids, in creation order.
    pub fn pids(&self) -> Vec<Pid> {
        self.processes.keys().copied().collect()
    }

    /// Kill a process (and implicitly orphan its children).
    pub fn kill(&mut self, pid: Pid) {
        let p = self.process_mut(pid);
        if p.is_alive() {
            p.state = ProcState::Killed;
        }
    }

    /// Fail an entire node: every process running there is killed (the
    /// scenario CPR exists for — power loss, kernel panic, cooling
    /// failure on a commodity PC, §I of the paper). Files on the
    /// node's local mounts survive, as they would on disk.
    pub fn fail_node(&mut self, node: NodeId) {
        let victims: Vec<Pid> = self
            .processes
            .values()
            .filter(|p| p.node == node && p.is_alive())
            .map(|p| p.pid)
            .collect();
        for pid in victims {
            self.kill(pid);
        }
    }

    /// Mark a process exited.
    pub fn exit(&mut self, pid: Pid, code: i32) {
        let p = self.process_mut(pid);
        if p.is_alive() {
            p.state = ProcState::Exited(code);
        }
    }

    /// Deliver a signal to a process's pending queue.
    pub fn signal(&mut self, pid: Pid, sig: Signal) {
        let p = self.process_mut(pid);
        if p.is_alive() {
            p.pending_signals.push_back(sig);
        }
    }

    /// Install a fault schedule. Filesystem, node and process faults
    /// fire from here on; pass the plan built with
    /// [`FaultPlan`](crate::FaultPlan) combinators.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The installed fault plan, if any (to inspect its log).
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Mutable access to the installed fault plan (the session layer
    /// polls process-fault schedules through this).
    pub fn faults_mut(&mut self) -> Option<&mut FaultPlan> {
        self.faults.as_mut()
    }

    /// Remove and return the installed fault plan.
    pub fn take_faults(&mut self) -> Option<FaultPlan> {
        self.faults.take()
    }

    /// Deliver node crashes scheduled at or before `now`, killing every
    /// process on the crashed nodes. Returns the nodes that failed.
    pub fn poll_faults(&mut self, now: SimTime) -> Vec<NodeId> {
        let due = match self.faults.as_mut() {
            Some(plan) => plan.due_node_crashes(now),
            None => return Vec::new(),
        };
        for node in &due {
            self.fail_node(*node);
        }
        due
    }

    /// Write a file at an absolute path as seen by `pid`, charging that
    /// process's clock. Returns the I/O cost.
    pub fn write_file(
        &mut self,
        pid: Pid,
        path: &str,
        data: Vec<u8>,
    ) -> Result<SimDuration, FsError> {
        let (fs_id, rel, mut clock) = self.resolve_for(pid, path)?;
        let kind = self.filesystems[fs_id.0 as usize].kind();
        let mut data = data;
        if let Some(plan) = self.faults.as_mut() {
            if plan.crash_due(clock) {
                return Err(FsError::WriteFailed(path.to_string()));
            }
            match plan.on_write(kind, path, clock, data.len()) {
                WriteFault::None => {}
                WriteFault::Fail => {
                    // A failed write still pays the submission latency.
                    clock += kind.write_link().cost_empty();
                    self.process_mut(pid).clock = clock;
                    return Err(FsError::WriteFailed(path.to_string()));
                }
                WriteFault::Short(n) => data.truncate(n),
                WriteFault::Corrupt(flips) => {
                    for (pos, mask) in flips {
                        if let Some(b) = data.get_mut(pos) {
                            *b ^= mask;
                        }
                    }
                }
            }
        }
        let mut cost = self.filesystems[fs_id.0 as usize].write(&mut clock, &rel, data);
        if let Some(plan) = self.faults.as_mut() {
            // A browned-out mount still stores the bytes — it just
            // takes `100/percent` as long.
            let extra = plan.degradation_extra(kind, clock, cost);
            clock += extra;
            cost += extra;
        }
        self.process_mut(pid).clock = clock;
        Ok(cost)
    }

    /// Append to a file at an absolute path as seen by `pid`, charging
    /// that process's clock. Creates the file if absent. Each chunk
    /// goes through the same fault hooks as [`Cluster::write_file`], so
    /// an injected disk fault can hit any individual append of a
    /// streamed checkpoint.
    pub fn append_file(
        &mut self,
        pid: Pid,
        path: &str,
        data: &[u8],
    ) -> Result<SimDuration, FsError> {
        let (fs_id, rel, mut clock) = self.resolve_for(pid, path)?;
        let kind = self.filesystems[fs_id.0 as usize].kind();
        let mut data = data.to_vec();
        if let Some(plan) = self.faults.as_mut() {
            if plan.crash_due(clock) {
                return Err(FsError::WriteFailed(path.to_string()));
            }
            match plan.on_write(kind, path, clock, data.len()) {
                WriteFault::None => {}
                WriteFault::Fail => {
                    // A failed append still pays the submission latency.
                    clock += kind.write_link().cost_empty();
                    self.process_mut(pid).clock = clock;
                    return Err(FsError::WriteFailed(path.to_string()));
                }
                WriteFault::Short(n) => data.truncate(n),
                WriteFault::Corrupt(flips) => {
                    for (pos, mask) in flips {
                        if let Some(b) = data.get_mut(pos) {
                            *b ^= mask;
                        }
                    }
                }
            }
        }
        let mut cost = self.filesystems[fs_id.0 as usize].append(&mut clock, &rel, &data);
        if let Some(plan) = self.faults.as_mut() {
            let extra = plan.degradation_extra(kind, clock, cost);
            clock += extra;
            cost += extra;
        }
        self.process_mut(pid).clock = clock;
        Ok(cost)
    }

    /// Read a file at an absolute path as seen by `pid`.
    pub fn read_file(&mut self, pid: Pid, path: &str) -> Result<Vec<u8>, FsError> {
        let (fs_id, rel, mut clock) = self.resolve_for(pid, path)?;
        if let Some(plan) = self.faults.as_mut() {
            let kind = self.filesystems[fs_id.0 as usize].kind();
            if plan.on_read(kind, path, clock) {
                clock += kind.read_link().cost_empty();
                self.process_mut(pid).clock = clock;
                return Err(FsError::Unavailable(path.to_string()));
            }
        }
        let before = clock;
        let data = self.filesystems[fs_id.0 as usize].read(&mut clock, &rel)?;
        if let Some(plan) = self.faults.as_mut() {
            let kind = self.filesystems[fs_id.0 as usize].kind();
            clock += plan.degradation_extra(kind, clock, clock.since(before));
        }
        self.process_mut(pid).clock = clock;
        Ok(data)
    }

    /// Rename a file as seen by `pid`. Within one mount this is the
    /// cheap atomic commit; across mounts it degrades to copy + delete,
    /// paying full I/O costs. Rename itself is never fault-injected —
    /// it models POSIX `rename(2)`, which is atomic.
    pub fn rename_file(&mut self, pid: Pid, from: &str, to: &str) -> Result<(), FsError> {
        let (from_fs, from_rel, mut clock) = self.resolve_for(pid, from)?;
        let (to_fs, to_rel, _) = self.resolve_for(pid, to)?;
        if let Some(plan) = self.faults.as_mut() {
            // The torture gate only: rename is atomic and never
            // partially fault-injected, but a dead process renames
            // nothing.
            if plan.crash_due(clock) {
                return Err(FsError::WriteFailed(to.to_string()));
            }
        }
        if from_fs == to_fs {
            self.filesystems[from_fs.0 as usize].rename(&mut clock, &from_rel, &to_rel)?;
        } else {
            let data = self.filesystems[from_fs.0 as usize].read(&mut clock, &from_rel)?;
            self.filesystems[to_fs.0 as usize].write(&mut clock, &to_rel, data);
            self.filesystems[from_fs.0 as usize].delete(&mut clock, &from_rel)?;
        }
        self.process_mut(pid).clock = clock;
        Ok(())
    }

    /// Delete a file at an absolute path as seen by `pid`.
    pub fn delete_file(&mut self, pid: Pid, path: &str) -> Result<(), FsError> {
        let (fs_id, rel, mut clock) = self.resolve_for(pid, path)?;
        if let Some(plan) = self.faults.as_mut() {
            if plan.crash_due(clock) {
                return Err(FsError::WriteFailed(path.to_string()));
            }
        }
        self.filesystems[fs_id.0 as usize].delete(&mut clock, &rel)?;
        self.process_mut(pid).clock = clock;
        Ok(())
    }

    /// Size of a file at an absolute path as seen by any process on
    /// `node`.
    pub fn file_size_on(&self, node: NodeId, path: &str) -> Option<ByteSize> {
        let (fs_id, rel) = self.node(node.to_owned()).resolve(path)?;
        self.fs(fs_id).file_size(&rel)
    }

    /// Stored bytes of a file as seen from `node`, costing nothing in
    /// virtual time and bypassing fault hooks — an inspection helper
    /// for lineage verification and tests, not a modelled read.
    pub fn peek_file_on(&self, node: NodeId, path: &str) -> Option<&[u8]> {
        let (fs_id, rel) = self.node(node).resolve(path)?;
        self.fs(fs_id).peek(&rel)
    }

    /// Every file path reachable from `node` through its mount table,
    /// sorted and de-duplicated. Costs nothing in virtual time — this
    /// is an inspection helper for tests and the supervisor's scrubber,
    /// not a modelled `readdir`.
    pub fn paths_on(&self, node: NodeId) -> Vec<String> {
        let mut out: Vec<String> = self
            .node(node)
            .mounts
            .values()
            .flat_map(|fs_id| self.fs(*fs_id).list())
            .map(|p| p.to_string())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    fn resolve_for(&self, pid: Pid, path: &str) -> Result<(FsId, String, SimTime), FsError> {
        let p = self.process(pid);
        let node = self.node(p.node);
        let (fs_id, rel) = node
            .resolve(path)
            .ok_or_else(|| FsError::NotFound(format!("{path} (no mount on {})", node.name)))?;
        Ok((fs_id, rel, p.clock))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_layout_shares_nfs() {
        let mut c = Cluster::with_standard_nodes(2);
        let nodes = c.node_ids();
        let p0 = c.spawn(nodes[0]);
        let p1 = c.spawn(nodes[1]);
        c.write_file(p0, "/nfs/global.ckpt", vec![42]).unwrap();
        // Visible from the other node through the shared mount.
        assert_eq!(c.read_file(p1, "/nfs/global.ckpt").unwrap(), vec![42]);
        // Local disks are private.
        c.write_file(p0, "/local/x", vec![1]).unwrap();
        assert!(c.read_file(p1, "/local/x").is_err());
    }

    #[test]
    fn fork_links_parent_and_child() {
        let mut c = Cluster::with_standard_nodes(1);
        let n = c.node_ids()[0];
        let parent = c.spawn(n);
        let child = c.fork(parent, SimDuration::from_millis(80));
        assert_eq!(c.process(child).parent, Some(parent));
        assert_eq!(c.process(parent).children, vec![child]);
        // Both clocks advanced by the fork cost.
        assert_eq!(
            c.process(parent).clock,
            SimTime::ZERO + SimDuration::from_millis(80)
        );
        assert_eq!(c.process(child).clock, c.process(parent).clock);
    }

    #[test]
    fn kill_and_exit_change_state() {
        let mut c = Cluster::with_standard_nodes(1);
        let n = c.node_ids()[0];
        let a = c.spawn(n);
        let b = c.spawn(n);
        c.kill(a);
        c.exit(b, 0);
        assert_eq!(c.process(a).state, ProcState::Killed);
        assert_eq!(c.process(b).state, ProcState::Exited(0));
        assert!(!c.process(a).is_alive());
    }

    #[test]
    fn signals_reach_pending_queue() {
        let mut c = Cluster::with_standard_nodes(1);
        let n = c.node_ids()[0];
        let p = c.spawn(n);
        c.signal(p, Signal::Usr1);
        assert_eq!(c.process_mut(p).poll_signal(), Some(Signal::Usr1));
    }

    #[test]
    fn signals_to_dead_process_dropped() {
        let mut c = Cluster::with_standard_nodes(1);
        let n = c.node_ids()[0];
        let p = c.spawn(n);
        c.kill(p);
        c.signal(p, Signal::Usr1);
        assert_eq!(c.process_mut(p).poll_signal(), None);
    }

    #[test]
    fn io_charges_calling_process_clock() {
        let mut c = Cluster::with_standard_nodes(1);
        let n = c.node_ids()[0];
        let p = c.spawn(n);
        let before = c.process(p).clock;
        c.write_file(p, "/local/big", vec![0u8; 11_000_000])
            .unwrap();
        let after = c.process(p).clock;
        // 11 MB at 110 MB/s = 100 ms (+8 ms seek).
        let took = after.since(before).as_secs_f64();
        assert!((0.09..0.13).contains(&took), "write took {took}");
    }

    #[test]
    fn unknown_mount_is_an_error() {
        let mut c = Cluster::with_standard_nodes(1);
        let n = c.node_ids()[0];
        let p = c.spawn(n);
        assert!(c.write_file(p, "/does-not-exist/f", vec![1]).is_err());
    }

    #[test]
    fn longest_prefix_mount_wins() {
        let mut c = Cluster::new();
        let n = c.add_node("pc0");
        let outer = c.add_fs(Fs::new(FsKind::LocalDisk, "outer"));
        let inner = c.add_fs(Fs::new(FsKind::RamDisk, "inner"));
        c.mount(n, "/data", outer);
        c.mount(n, "/data/fast", inner);
        let (fs, _) = c.node(n).resolve("/data/fast/file").unwrap();
        assert_eq!(fs, inner);
        let (fs, _) = c.node(n).resolve("/data/slow/file").unwrap();
        assert_eq!(fs, outer);
        // Prefix match must respect path component boundaries.
        let (fs, _) = c.node(n).resolve("/data/fastfile").unwrap();
        assert_eq!(fs, outer);
    }

    #[test]
    fn node_failure_kills_only_that_node() {
        let mut c = Cluster::with_standard_nodes(2);
        let nodes = c.node_ids();
        let a = c.spawn(nodes[0]);
        let b = c.spawn(nodes[0]);
        let other = c.spawn(nodes[1]);
        c.write_file(a, "/local/survives", vec![1]).unwrap();
        c.fail_node(nodes[0]);
        assert!(!c.process(a).is_alive());
        assert!(!c.process(b).is_alive());
        assert!(c.process(other).is_alive());
        // Local disk contents survive the crash for post-mortem restart.
        let p2 = c.spawn(nodes[0]);
        assert_eq!(c.read_file(p2, "/local/survives").unwrap(), vec![1]);
    }

    #[test]
    fn injected_write_failure_stores_nothing() {
        let mut c = Cluster::with_standard_nodes(1);
        let n = c.node_ids()[0];
        let p = c.spawn(n);
        c.install_faults(FaultPlan::new(1).fail_next_writes(1));
        let before = c.process(p).clock;
        assert!(matches!(
            c.write_file(p, "/local/f", vec![1, 2, 3]),
            Err(FsError::WriteFailed(_))
        ));
        // The failed attempt still cost time, but stored nothing.
        assert!(c.process(p).clock > before);
        assert!(matches!(
            c.read_file(p, "/local/f"),
            Err(FsError::NotFound(_))
        ));
        // The counter is spent; the retry goes through.
        c.write_file(p, "/local/f", vec![1, 2, 3]).unwrap();
        assert_eq!(c.read_file(p, "/local/f").unwrap(), vec![1, 2, 3]);
        assert_eq!(c.faults().unwrap().log().len(), 1);
    }

    #[test]
    fn append_file_hits_fault_hooks_per_chunk() {
        let mut c = Cluster::with_standard_nodes(1);
        let n = c.node_ids()[0];
        let p = c.spawn(n);
        // First chunk lands clean; then arm a one-shot write failure so
        // the *second* append is the one that faults.
        c.append_file(p, "/local/stream", &[1, 2]).unwrap();
        c.install_faults(FaultPlan::new(7).fail_next_writes(1));
        assert!(matches!(
            c.append_file(p, "/local/stream", &[3, 4]),
            Err(FsError::WriteFailed(_))
        ));
        // The earlier chunk is still on disk (partial file; the caller
        // is responsible for discarding the tmp).
        assert_eq!(c.read_file(p, "/local/stream").unwrap(), vec![1, 2]);
    }

    #[test]
    fn injected_corruption_mangles_stored_bytes() {
        let mut c = Cluster::with_standard_nodes(1);
        let n = c.node_ids()[0];
        let p = c.spawn(n);
        c.install_faults(FaultPlan::new(2).corrupt_next_writes(1));
        let data = vec![0u8; 64];
        c.write_file(p, "/ram/f", data.clone()).unwrap();
        assert_ne!(c.read_file(p, "/ram/f").unwrap(), data);
    }

    #[test]
    fn scheduled_node_crash_fires_via_poll() {
        let mut c = Cluster::with_standard_nodes(2);
        let nodes = c.node_ids();
        let victim = c.spawn(nodes[0]);
        let other = c.spawn(nodes[1]);
        let at = SimTime::ZERO + SimDuration::from_secs(1);
        c.install_faults(FaultPlan::new(3).schedule_node_crash(at, nodes[0]));
        assert!(c.poll_faults(SimTime::ZERO).is_empty());
        assert!(c.process(victim).is_alive());
        assert_eq!(c.poll_faults(at), vec![nodes[0]]);
        assert!(!c.process(victim).is_alive());
        assert!(c.process(other).is_alive());
        // One-shot: already delivered.
        assert!(c.poll_faults(at + SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn rename_commits_within_a_mount() {
        let mut c = Cluster::with_standard_nodes(1);
        let n = c.node_ids()[0];
        let p = c.spawn(n);
        c.write_file(p, "/local/ck.tmp", vec![9]).unwrap();
        c.rename_file(p, "/local/ck.tmp", "/local/ck").unwrap();
        assert_eq!(c.read_file(p, "/local/ck").unwrap(), vec![9]);
        assert!(c.read_file(p, "/local/ck.tmp").is_err());
        // Cross-mount rename degrades to copy + delete.
        c.rename_file(p, "/local/ck", "/ram/ck").unwrap();
        assert_eq!(c.read_file(p, "/ram/ck").unwrap(), vec![9]);
        assert!(c.read_file(p, "/local/ck").is_err());
    }

    #[test]
    fn file_size_on_node() {
        let mut c = Cluster::with_standard_nodes(1);
        let n = c.node_ids()[0];
        let p = c.spawn(n);
        c.write_file(p, "/ram/ckpt", vec![0u8; 123]).unwrap();
        assert_eq!(c.file_size_on(n, "/ram/ckpt"), Some(ByteSize::bytes(123)));
        assert_eq!(c.file_size_on(n, "/ram/none"), None);
    }
}
