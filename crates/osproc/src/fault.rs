//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded, virtual-time-scheduled fault schedule
//! installed on a [`Cluster`](crate::Cluster). It can fail or mangle
//! filesystem writes (outright failure, short write, bit-flip
//! corruption), make the NFS mount unavailable for a window of virtual
//! time, crash whole nodes at scheduled instants, and deliver
//! process-level faults (API-proxy death, pipe breakage) that the
//! CheCL runtime polls for.
//!
//! Everything is driven either by explicit schedules (virtual-time
//! instants, one-shot counters) or by a [`SplitMix64`] stream seeded at
//! construction, so a plan replays bit-for-bit: the same seed over the
//! same workload injects the same faults at the same virtual times.
//! When no plan is installed the hooks are never consulted — fault
//! support is zero-cost when off.
//!
//! Every injected fault is appended to [`FaultPlan::log`] and, when a
//! telemetry sink is installed, emitted as an instant event in the
//! [`telemetry::FAULT_CATEGORY`] category named `fault.<class>`.

use crate::fs::FsKind;
use crate::ids::NodeId;
use simcore::{obs, telemetry, SimDuration, SimTime, SplitMix64};

/// The classes of fault the plan can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A filesystem write returns an error; nothing is stored.
    DiskWriteFail,
    /// A filesystem write silently stores a prefix of the data.
    ShortWrite,
    /// A filesystem write silently stores bit-flipped data.
    CorruptWrite,
    /// The NFS mount rejects reads and writes during a window.
    NfsOutage,
    /// A whole node fails; its processes die, local files survive.
    NodeCrash,
    /// The app↔proxy pipe breaks; calls fail until a respawn.
    PipeBreak,
    /// The API proxy process dies.
    ProxyDeath,
    /// A storage channel runs at reduced bandwidth for a window — the
    /// gray sibling of an outage: every I/O still succeeds, just
    /// slower.
    ChannelDegraded,
    /// Heartbeats are dropped for a window while the sender stays
    /// alive, stressing the failure detector with false positives.
    HeartbeatLoss,
    /// The supervisor loses network reachability to a set of nodes for
    /// a window that later heals; the nodes (and any writer on them)
    /// keep running.
    Partition,
}

impl FaultKind {
    /// Stable lower-case name used in telemetry and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DiskWriteFail => "disk_write_fail",
            FaultKind::ShortWrite => "short_write",
            FaultKind::CorruptWrite => "corrupt_write",
            FaultKind::NfsOutage => "nfs_outage",
            FaultKind::NodeCrash => "node_crash",
            FaultKind::PipeBreak => "pipe_break",
            FaultKind::ProxyDeath => "proxy_death",
            FaultKind::ChannelDegraded => "channel_degraded",
            FaultKind::HeartbeatLoss => "heartbeat_loss",
            FaultKind::Partition => "partition",
        }
    }
}

/// One fault that actually fired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// What fired.
    pub kind: FaultKind,
    /// Virtual time of injection.
    pub at: SimTime,
    /// Human-readable context (path, node, …).
    pub detail: String,
}

/// What the plan decided about one filesystem write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WriteFault {
    /// Proceed untouched.
    None,
    /// Fail the write; store nothing.
    Fail,
    /// Store only the first `n` bytes, reporting success.
    Short(usize),
    /// XOR the given `(offset, mask)` flips into the data, reporting
    /// success.
    Corrupt(Vec<(usize, u8)>),
}

/// A seeded, deterministic fault schedule. Build with the `with_*` /
/// `schedule_*` combinators, then install via
/// [`Cluster::install_faults`](crate::Cluster::install_faults).
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    rng: SplitMix64,
    /// Probability each eligible write fails outright.
    write_fail_prob: f64,
    /// Probability each eligible write is stored short.
    short_write_prob: f64,
    /// Probability each eligible write is stored corrupted.
    corrupt_write_prob: f64,
    /// One-shot counters: the next N eligible writes fail / go short /
    /// corrupt. Checked before any probabilistic draw so tests can
    /// script exact fault sequences.
    fail_next_writes: u32,
    short_next_writes: u32,
    corrupt_next_writes: u32,
    /// When set, write faults only hit paths containing this substring
    /// (e.g. `".ckpt"` to target checkpoint files only).
    path_filter: Option<String>,
    /// When set, corruption bit flips land within the first N bytes of
    /// the data (the header / live-frame region of a checkpoint file);
    /// unset means uniform over the whole write.
    corrupt_prefix: Option<usize>,
    /// Half-open `[from, until)` windows during which NFS is down.
    nfs_outages: Vec<(SimTime, SimTime)>,
    /// Scheduled node crashes, delivered by `Cluster::poll_faults`.
    node_crashes: Vec<(SimTime, NodeId)>,
    /// Scheduled proxy deaths, polled by the CheCL session layer.
    proxy_deaths: Vec<SimTime>,
    /// Scheduled pipe breaks, polled by the CheCL session layer.
    pipe_breaks: Vec<SimTime>,
    /// Recurring proxy deaths: mean inter-arrival time, the next armed
    /// instant (armed lazily at the first poll), and a dedicated RNG
    /// stream so arming never perturbs the write-fault draws.
    proxy_death_rate: Option<RecurringFaults<()>>,
    /// Recurring node crashes: same shape, plus the candidate victims.
    node_crash_rate: Option<RecurringFaults<Vec<NodeId>>>,
    /// Gray-failure windows: storage running at reduced bandwidth.
    degradations: Vec<GrayWindow>,
    /// Gray-failure windows: heartbeats silently dropped while the
    /// sender stays alive.
    heartbeat_losses: Vec<GrayWindow>,
    /// Gray-failure windows: supervisor↔node partitions that heal.
    partitions: Vec<GrayWindow>,
    /// Named failure domains (rack/zone): members crash together when
    /// a domain crash is scheduled.
    domains: Vec<(String, Vec<NodeId>)>,
    /// Scheduled correlated crashes of a whole domain by name.
    domain_crashes: Vec<(SimTime, String)>,
    /// Torture-harness hook: once the obs ledger has recorded this
    /// many events, every subsequent filesystem mutation fails — the
    /// process "died" at exactly that event boundary.
    crash_at_event: Option<u64>,
    crash_tripped: bool,
    log: Vec<InjectedFault>,
}

/// One gray-failure window `[from, until)`. `percent` is the surviving
/// bandwidth for degradations (ignored for loss/partition windows);
/// `fs`/`nodes` scope the window; `recorded` makes the window log one
/// `FaultInjected` on first activation instead of one per poll.
#[derive(Clone, Debug)]
struct GrayWindow {
    from: SimTime,
    until: SimTime,
    percent: u32,
    fs: Option<FsKind>,
    nodes: Vec<NodeId>,
    recorded: bool,
}

impl GrayWindow {
    fn active(&self, now: SimTime) -> bool {
        now >= self.from && now < self.until
    }
}

/// An open-ended stream of one fault class: arrivals are drawn one at
/// a time from a dedicated [`SplitMix64`] stream, uniformly jittered
/// in `[0.25, 1.75] × mean` so the mean inter-arrival time is exactly
/// `mean` while staying free of transcendental math (bit-identical
/// across platforms, which the golden-guarded benches rely on).
#[derive(Clone, Debug)]
struct RecurringFaults<T> {
    mean: SimDuration,
    next: Option<SimTime>,
    rng: SplitMix64,
    targets: T,
}

impl<T> RecurringFaults<T> {
    fn new(seed: u64, salt: u64, mean: SimDuration, targets: T) -> Self {
        RecurringFaults {
            mean: mean.max(SimDuration::from_micros(1)),
            next: None,
            rng: SplitMix64::new(seed ^ salt),
            targets,
        }
    }

    /// Draw the next inter-arrival gap.
    fn gap(&mut self) -> SimDuration {
        self.mean * (0.25 + 1.5 * self.rng.next_f64())
    }

    /// `true` when an arrival at or before `now` is due; the stream is
    /// armed on its first consult and re-armed after each delivery.
    fn due(&mut self, now: SimTime) -> bool {
        match self.next {
            None => {
                let gap = self.gap();
                self.next = Some(now + gap);
                false
            }
            Some(at) if at <= now => {
                let gap = self.gap();
                self.next = Some(at + gap.max(SimDuration::from_micros(1)));
                true
            }
            Some(_) => false,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing until combinators arm it.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rng: SplitMix64::new(seed),
            write_fail_prob: 0.0,
            short_write_prob: 0.0,
            corrupt_write_prob: 0.0,
            fail_next_writes: 0,
            short_next_writes: 0,
            corrupt_next_writes: 0,
            path_filter: None,
            corrupt_prefix: None,
            nfs_outages: Vec::new(),
            node_crashes: Vec::new(),
            proxy_deaths: Vec::new(),
            pipe_breaks: Vec::new(),
            proxy_death_rate: None,
            node_crash_rate: None,
            degradations: Vec::new(),
            heartbeat_losses: Vec::new(),
            partitions: Vec::new(),
            domains: Vec::new(),
            domain_crashes: Vec::new(),
            crash_at_event: None,
            crash_tripped: false,
            log: Vec::new(),
        }
    }

    /// Seed the plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Each eligible write fails with probability `p`.
    pub fn with_write_fail_prob(mut self, p: f64) -> Self {
        self.write_fail_prob = p;
        self
    }

    /// Each eligible write is stored short with probability `p`.
    pub fn with_short_write_prob(mut self, p: f64) -> Self {
        self.short_write_prob = p;
        self
    }

    /// Each eligible write is stored corrupted with probability `p`.
    pub fn with_corrupt_write_prob(mut self, p: f64) -> Self {
        self.corrupt_write_prob = p;
        self
    }

    /// The next `n` eligible writes fail outright.
    pub fn fail_next_writes(mut self, n: u32) -> Self {
        self.fail_next_writes = n;
        self
    }

    /// The next `n` eligible writes are stored short.
    pub fn short_next_writes(mut self, n: u32) -> Self {
        self.short_next_writes = n;
        self
    }

    /// The next `n` eligible writes are stored corrupted.
    pub fn corrupt_next_writes(mut self, n: u32) -> Self {
        self.corrupt_next_writes = n;
        self
    }

    /// Restrict write faults to paths containing `substr`.
    pub fn only_paths_containing(mut self, substr: &str) -> Self {
        self.path_filter = Some(substr.to_string());
        self
    }

    /// Land corruption bit flips within the first `n` bytes of each
    /// write — the header / frame region of a checkpoint file, whose
    /// damage the frame checksum is guaranteed to notice. Without this
    /// the flips are uniform over the write (and may hit bytes only a
    /// byte-exact read-back verification can vouch for).
    pub fn corrupt_in_prefix(mut self, n: usize) -> Self {
        self.corrupt_prefix = Some(n);
        self
    }

    /// NFS is unavailable during `[from, until)`.
    pub fn schedule_nfs_outage(mut self, from: SimTime, until: SimTime) -> Self {
        self.nfs_outages.push((from, until));
        self
    }

    /// Crash `node` at virtual time `at` (delivered by
    /// [`Cluster::poll_faults`](crate::Cluster::poll_faults)).
    pub fn schedule_node_crash(mut self, at: SimTime, node: NodeId) -> Self {
        self.node_crashes.push((at, node));
        self
    }

    /// Kill the API proxy at virtual time `at` (polled by the session
    /// layer via [`FaultPlan::proxy_death_due`]).
    pub fn schedule_proxy_death(mut self, at: SimTime) -> Self {
        self.proxy_deaths.push(at);
        self
    }

    /// Break the app↔proxy pipe at virtual time `at`.
    pub fn schedule_pipe_break(mut self, at: SimTime) -> Self {
        self.pipe_breaks.push(at);
        self
    }

    /// Kill the API proxy *recurringly*, with mean inter-arrival time
    /// `mean` — an open-ended fault stream rather than a one-shot
    /// schedule, for testing supervision loops. Arrivals are drawn from
    /// a dedicated seeded stream; the first arrival is armed relative
    /// to the first [`FaultPlan::proxy_death_due`] poll, so installing
    /// the plan mid-run does not deliver a burst of back-dated deaths.
    pub fn with_proxy_death_rate(mut self, mean: SimDuration) -> Self {
        self.proxy_death_rate = Some(RecurringFaults::new(
            self.seed,
            0x70726f_78795f64, // "proxy_d"
            mean,
            (),
        ));
        self
    }

    /// Crash one of `nodes` (chosen uniformly per arrival) recurringly,
    /// with mean inter-arrival time `mean`. Delivered through
    /// [`Cluster::poll_faults`](crate::Cluster::poll_faults) exactly
    /// like the one-shot schedule.
    pub fn with_node_crash_rate(mut self, mean: SimDuration, nodes: &[NodeId]) -> Self {
        assert!(!nodes.is_empty(), "node crash rate needs >= 1 victim");
        self.node_crash_rate = Some(RecurringFaults::new(
            self.seed,
            0x6e6f64_655f6372, // "node_cr"
            mean,
            nodes.to_vec(),
        ));
        self
    }

    /// Mounts of kind `fs` (all kinds when `None`) run at `percent`%
    /// of their normal bandwidth during `[from, until)` — a brownout.
    /// I/O succeeds but each operation's cost inflates by
    /// `100/percent`. `percent` must be in `1..=99`.
    pub fn schedule_degradation(
        mut self,
        from: SimTime,
        until: SimTime,
        percent: u32,
        fs: Option<FsKind>,
    ) -> Self {
        assert!(
            (1..100).contains(&percent),
            "degradation percent must be in 1..=99, got {percent}"
        );
        self.degradations.push(GrayWindow {
            from,
            until,
            percent,
            fs,
            nodes: Vec::new(),
            recorded: false,
        });
        self
    }

    /// Heartbeats are silently dropped during `[from, until)` while
    /// every sender stays alive — the classic gray failure that turns
    /// a timeout detector into a false-positive machine.
    pub fn schedule_heartbeat_loss(mut self, from: SimTime, until: SimTime) -> Self {
        self.heartbeat_losses.push(GrayWindow {
            from,
            until,
            percent: 0,
            fs: None,
            nodes: Vec::new(),
            recorded: false,
        });
        self
    }

    /// The supervisor cannot reach `nodes` during `[from, until)`; the
    /// nodes and their processes keep running and the partition heals
    /// when the window closes.
    pub fn schedule_partition(mut self, from: SimTime, until: SimTime, nodes: &[NodeId]) -> Self {
        assert!(!nodes.is_empty(), "a partition needs >= 1 node");
        self.partitions.push(GrayWindow {
            from,
            until,
            percent: 0,
            fs: None,
            nodes: nodes.to_vec(),
            recorded: false,
        });
        self
    }

    /// Name a failure domain (rack/zone) containing `nodes`. Used both
    /// for correlated crashes ([`FaultPlan::schedule_domain_crash`])
    /// and for domain-aware failover-target selection
    /// ([`FaultPlan::domain_of`]).
    pub fn define_domain(mut self, name: &str, nodes: &[NodeId]) -> Self {
        assert!(!nodes.is_empty(), "a failure domain needs >= 1 node");
        self.domains.push((name.to_string(), nodes.to_vec()));
        self
    }

    /// Crash every member of the named domain together at `at`
    /// (delivered through `Cluster::poll_faults` like single-node
    /// crashes).
    pub fn schedule_domain_crash(mut self, at: SimTime, domain: &str) -> Self {
        assert!(
            self.domains.iter().any(|(n, _)| n == domain),
            "unknown failure domain {domain:?}"
        );
        self.domain_crashes.push((at, domain.to_string()));
        self
    }

    /// Torture-harness hook: once the obs ledger holds `n` events,
    /// every subsequent filesystem mutation (write, append, rename,
    /// delete) fails — the process died at exactly that obs-event
    /// boundary. Requires obs recording to be on; disarm by taking the
    /// plan off the cluster.
    pub fn crash_after_events(mut self, n: u64) -> Self {
        self.crash_at_event = Some(n);
        self
    }

    /// The failure domain `node` belongs to, if any.
    pub fn domain_of(&self, node: NodeId) -> Option<&str> {
        self.domains
            .iter()
            .find(|(_, members)| members.contains(&node))
            .map(|(name, _)| name.as_str())
    }

    /// Extra virtual time a filesystem operation of base cost `cost`
    /// pays right now on a mount of kind `fs` due to an active
    /// degradation window (zero when healthy). The first hit of each
    /// window records one `ChannelDegraded` fault.
    pub fn degradation_extra(
        &mut self,
        fs: FsKind,
        now: SimTime,
        cost: SimDuration,
    ) -> SimDuration {
        let hit = self
            .degradations
            .iter()
            .position(|w| w.active(now) && w.fs.is_none_or(|k| k == fs));
        let Some(i) = hit else {
            return SimDuration::ZERO;
        };
        let w = &mut self.degradations[i];
        let percent = w.percent as u64;
        let (from, until, first) = (w.from, w.until, !w.recorded);
        self.degradations[i].recorded = true;
        if first {
            self.record(
                FaultKind::ChannelDegraded,
                now,
                format!("{fs:?} at {percent}% bandwidth for {:?}..{:?}", from, until),
            );
        }
        SimDuration::from_nanos(cost.as_nanos() * (100 - percent) / percent)
    }

    /// `true` while heartbeats are being dropped (the supervise loop
    /// polls this and suppresses its beats). The first poll inside
    /// each window records one `HeartbeatLoss` fault.
    pub fn heartbeats_lost(&mut self, now: SimTime) -> bool {
        let hit = self.heartbeat_losses.iter().position(|w| w.active(now));
        let Some(i) = hit else { return false };
        let (from, until, first) = (
            self.heartbeat_losses[i].from,
            self.heartbeat_losses[i].until,
            !self.heartbeat_losses[i].recorded,
        );
        self.heartbeat_losses[i].recorded = true;
        if first {
            self.record(
                FaultKind::HeartbeatLoss,
                now,
                format!("heartbeats dropped {:?}..{:?}", from, until),
            );
        }
        true
    }

    /// `true` while the supervisor cannot reach `node`. The first poll
    /// inside each window records one `Partition` fault.
    pub fn partitioned(&mut self, node: NodeId, now: SimTime) -> bool {
        let hit = self
            .partitions
            .iter()
            .position(|w| w.active(now) && w.nodes.contains(&node));
        let Some(i) = hit else { return false };
        let (from, until, first) = (
            self.partitions[i].from,
            self.partitions[i].until,
            !self.partitions[i].recorded,
        );
        self.partitions[i].recorded = true;
        if first {
            let nodes = self.partitions[i].nodes.clone();
            self.record(
                FaultKind::Partition,
                now,
                format!("nodes {nodes:?} unreachable {:?}..{:?}", from, until),
            );
        }
        true
    }

    /// Torture-harness gate, called by every `Cluster` filesystem
    /// mutation: `true` once the armed obs-event boundary has been
    /// reached — the process is dead, every further effect must fail.
    pub fn crash_due(&mut self, now: SimTime) -> bool {
        if self.crash_tripped {
            return true;
        }
        let Some(n) = self.crash_at_event else {
            return false;
        };
        if obs::event_count() as u64 >= n {
            self.crash_tripped = true;
            self.record(
                FaultKind::NodeCrash,
                now,
                format!("torture crash at obs event boundary {n}"),
            );
            return true;
        }
        false
    }

    /// Everything injected so far, in injection order.
    pub fn log(&self) -> &[InjectedFault] {
        &self.log
    }

    /// How many faults of `kind` have fired.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.log.iter().filter(|f| f.kind == kind).count()
    }

    /// `true` while scheduled (non-probabilistic) faults remain armed.
    pub fn has_pending(&self) -> bool {
        self.fail_next_writes > 0
            || self.short_next_writes > 0
            || self.corrupt_next_writes > 0
            || !self.node_crashes.is_empty()
            || !self.domain_crashes.is_empty()
            || !self.proxy_deaths.is_empty()
            || !self.pipe_breaks.is_empty()
    }

    fn record(&mut self, kind: FaultKind, at: SimTime, detail: String) {
        if telemetry::enabled() {
            telemetry::instant(
                telemetry::FAULT_CATEGORY,
                &format!("fault.{}", kind.name()),
                at,
                vec![("detail", detail.as_str().into())],
            );
            telemetry::counter_add("faults.injected", 1);
        }
        // Every injection site funnels through here, so the ledger sees
        // one FaultInjected record per fault — the invariant that lets
        // `checl_inspect` reconcile injected faults against observed
        // incidents 1:1.
        obs::emit(
            "fault",
            at,
            obs::EventKind::FaultInjected {
                fault: kind.name().to_string(),
                detail: detail.clone(),
            },
        );
        self.log.push(InjectedFault { kind, at, detail });
    }

    fn path_matches(&self, path: &str) -> bool {
        match &self.path_filter {
            Some(s) => path.contains(s.as_str()),
            None => true,
        }
    }

    fn in_nfs_outage(&self, now: SimTime) -> bool {
        self.nfs_outages
            .iter()
            .any(|(from, until)| now >= *from && now < *until)
    }

    /// Decide the fate of a write of `len` bytes to `path` on a mount
    /// of kind `fs`. Called by `Cluster::write_file`.
    pub fn on_write(&mut self, fs: FsKind, path: &str, now: SimTime, len: usize) -> WriteFault {
        if fs == FsKind::Nfs && self.in_nfs_outage(now) {
            self.record(FaultKind::NfsOutage, now, format!("write {path}"));
            return WriteFault::Fail;
        }
        if !self.path_matches(path) {
            return WriteFault::None;
        }
        if self.fail_next_writes > 0 {
            self.fail_next_writes -= 1;
            self.record(FaultKind::DiskWriteFail, now, path.to_string());
            return WriteFault::Fail;
        }
        if self.short_next_writes > 0 && len > 0 {
            self.short_next_writes -= 1;
            let kept = self.rng.next_below(len as u64) as usize;
            self.record(
                FaultKind::ShortWrite,
                now,
                format!("{path}: {kept}/{len} bytes"),
            );
            return WriteFault::Short(kept);
        }
        if self.corrupt_next_writes > 0 && len > 0 {
            self.corrupt_next_writes -= 1;
            return self.corrupt(path, now, len);
        }
        if self.write_fail_prob > 0.0 && self.rng.next_f64() < self.write_fail_prob {
            self.record(FaultKind::DiskWriteFail, now, path.to_string());
            return WriteFault::Fail;
        }
        if self.short_write_prob > 0.0 && len > 0 && self.rng.next_f64() < self.short_write_prob {
            let kept = self.rng.next_below(len as u64) as usize;
            self.record(
                FaultKind::ShortWrite,
                now,
                format!("{path}: {kept}/{len} bytes"),
            );
            return WriteFault::Short(kept);
        }
        if self.corrupt_write_prob > 0.0 && len > 0 && self.rng.next_f64() < self.corrupt_write_prob
        {
            return self.corrupt(path, now, len);
        }
        WriteFault::None
    }

    fn corrupt(&mut self, path: &str, now: SimTime, len: usize) -> WriteFault {
        let span = self
            .corrupt_prefix
            .map(|p| p.min(len))
            .unwrap_or(len)
            .max(1);
        let n = 1 + self.rng.next_below(3) as usize;
        let flips: Vec<(usize, u8)> = (0..n)
            .map(|_| {
                let pos = self.rng.next_below(span as u64) as usize;
                let mask = 1u8 << self.rng.next_below(8);
                (pos, mask)
            })
            .collect();
        self.record(
            FaultKind::CorruptWrite,
            now,
            format!("{path}: {} bit flip(s)", flips.len()),
        );
        WriteFault::Corrupt(flips)
    }

    /// `true` if a read from a mount of kind `fs` must fail right now
    /// (NFS outage window). Called by `Cluster::read_file`.
    pub fn on_read(&mut self, fs: FsKind, path: &str, now: SimTime) -> bool {
        if fs == FsKind::Nfs && self.in_nfs_outage(now) {
            self.record(FaultKind::NfsOutage, now, format!("read {path}"));
            return true;
        }
        false
    }

    /// Drain node crashes scheduled at or before `now` — one-shot
    /// schedule entries plus at most one recurring-rate arrival per
    /// poll.
    pub fn due_node_crashes(&mut self, now: SimTime) -> Vec<NodeId> {
        let mut due = Vec::new();
        let mut remaining = Vec::new();
        for (at, node) in std::mem::take(&mut self.node_crashes) {
            if at <= now {
                due.push((at, node));
            } else {
                remaining.push((at, node));
            }
        }
        self.node_crashes = remaining;
        due.iter().for_each(|(at, node)| {
            self.record(FaultKind::NodeCrash, *at, format!("node {node:?}"))
        });
        let mut out: Vec<NodeId> = due.into_iter().map(|(_, node)| node).collect();
        // Correlated domain crashes: every member of the named domain
        // goes down together (one recorded fault per member, so the
        // blast radius is visible in the ledger).
        let mut due_domains = Vec::new();
        let mut later = Vec::new();
        for (at, name) in std::mem::take(&mut self.domain_crashes) {
            if at <= now {
                due_domains.push((at, name));
            } else {
                later.push((at, name));
            }
        }
        self.domain_crashes = later;
        for (at, name) in due_domains {
            let members = self
                .domains
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, m)| m.clone())
                .unwrap_or_default();
            for node in members {
                self.record(
                    FaultKind::NodeCrash,
                    at,
                    format!("node {node:?} (domain {name})"),
                );
                out.push(node);
            }
        }
        if let Some(rate) = self.node_crash_rate.as_mut() {
            if rate.due(now) {
                let victim = rate.targets[rate.rng.next_below(rate.targets.len() as u64) as usize];
                self.record(FaultKind::NodeCrash, now, format!("node {victim:?} (rate)"));
                out.push(victim);
            }
        }
        out
    }

    /// `true` if a proxy death scheduled at or before `now` is due
    /// (consumes it). A recurring rate armed with
    /// [`FaultPlan::with_proxy_death_rate`] delivers through the same
    /// poll.
    pub fn proxy_death_due(&mut self, now: SimTime) -> bool {
        if self.take_due(now, FaultKind::ProxyDeath) {
            return true;
        }
        if let Some(rate) = self.proxy_death_rate.as_mut() {
            if rate.due(now) {
                self.record(FaultKind::ProxyDeath, now, "(rate)".to_string());
                return true;
            }
        }
        false
    }

    /// `true` if a pipe break scheduled at or before `now` is due
    /// (consumes it).
    pub fn pipe_break_due(&mut self, now: SimTime) -> bool {
        self.take_due(now, FaultKind::PipeBreak)
    }

    fn take_due(&mut self, now: SimTime, kind: FaultKind) -> bool {
        let list = match kind {
            FaultKind::ProxyDeath => &mut self.proxy_deaths,
            FaultKind::PipeBreak => &mut self.pipe_breaks,
            _ => unreachable!("take_due only handles process faults"),
        };
        if let Some(i) = list.iter().position(|at| *at <= now) {
            let at = list.remove(i);
            self.record(kind, at, String::new());
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + simcore::SimDuration::from_millis(ms)
    }

    #[test]
    fn scripted_counters_fire_in_order() {
        let mut plan = FaultPlan::new(1).fail_next_writes(1).short_next_writes(1);
        assert_eq!(
            plan.on_write(FsKind::LocalDisk, "/local/a", t(0), 100),
            WriteFault::Fail
        );
        match plan.on_write(FsKind::LocalDisk, "/local/a", t(1), 100) {
            WriteFault::Short(n) => assert!(n < 100),
            other => panic!("expected short write, got {other:?}"),
        }
        assert_eq!(
            plan.on_write(FsKind::LocalDisk, "/local/a", t(2), 100),
            WriteFault::None
        );
        assert_eq!(plan.count(FaultKind::DiskWriteFail), 1);
        assert_eq!(plan.count(FaultKind::ShortWrite), 1);
        assert!(!plan.has_pending());
    }

    #[test]
    fn path_filter_scopes_faults() {
        let mut plan = FaultPlan::new(2)
            .fail_next_writes(1)
            .only_paths_containing(".ckpt");
        assert_eq!(
            plan.on_write(FsKind::LocalDisk, "/local/data.bin", t(0), 10),
            WriteFault::None
        );
        assert_eq!(
            plan.on_write(FsKind::LocalDisk, "/local/app.ckpt", t(0), 10),
            WriteFault::Fail
        );
    }

    #[test]
    fn nfs_outage_window_blocks_reads_and_writes() {
        let mut plan = FaultPlan::new(3).schedule_nfs_outage(t(10), t(20));
        assert_eq!(
            plan.on_write(FsKind::Nfs, "/nfs/a", t(5), 10),
            WriteFault::None
        );
        assert_eq!(
            plan.on_write(FsKind::Nfs, "/nfs/a", t(15), 10),
            WriteFault::Fail
        );
        assert!(plan.on_read(FsKind::Nfs, "/nfs/a", t(19)));
        assert!(!plan.on_read(FsKind::Nfs, "/nfs/a", t(20)));
        // Local disks ride out the outage.
        assert_eq!(
            plan.on_write(FsKind::LocalDisk, "/local/a", t(15), 10),
            WriteFault::None
        );
        assert_eq!(plan.count(FaultKind::NfsOutage), 2);
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed| {
            let mut plan = FaultPlan::new(seed).with_write_fail_prob(0.3);
            (0..64)
                .map(|i| plan.on_write(FsKind::LocalDisk, "/local/x", t(i), 8) == WriteFault::Fail)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn scheduled_process_faults_are_consumed_once() {
        let mut plan = FaultPlan::new(4)
            .schedule_proxy_death(t(10))
            .schedule_pipe_break(t(30));
        assert!(!plan.proxy_death_due(t(5)));
        assert!(plan.proxy_death_due(t(10)));
        assert!(!plan.proxy_death_due(t(11)));
        assert!(!plan.pipe_break_due(t(29)));
        assert!(plan.pipe_break_due(t(31)));
        assert!(!plan.pipe_break_due(t(32)));
        assert_eq!(plan.log().len(), 2);
    }

    #[test]
    fn proxy_death_rate_is_recurring_and_replayable() {
        let run = |seed| {
            let mut plan = FaultPlan::new(seed).with_proxy_death_rate(SimDuration::from_millis(10));
            (0..400)
                .map(|i| plan.proxy_death_due(t(i)))
                .collect::<Vec<bool>>()
        };
        let a = run(11);
        let fired = a.iter().filter(|b| **b).count();
        // 400 ms of polling at a 10 ms mean: many arrivals, not one.
        assert!(fired > 10, "only {fired} recurring deaths fired");
        assert_eq!(a, run(11), "same seed must replay the same stream");
        assert_ne!(a, run(12));
    }

    #[test]
    fn node_crash_rate_hits_only_candidates() {
        let victims = [NodeId(1), NodeId(2)];
        let mut plan =
            FaultPlan::new(13).with_node_crash_rate(SimDuration::from_millis(5), &victims);
        let mut crashed = Vec::new();
        for i in 0..200 {
            crashed.extend(plan.due_node_crashes(t(i)));
        }
        assert!(crashed.len() > 5, "only {} crashes fired", crashed.len());
        assert!(crashed.iter().all(|n| victims.contains(n)));
        assert_eq!(plan.count(FaultKind::NodeCrash), crashed.len());
    }

    #[test]
    fn rate_arms_relative_to_first_poll() {
        let mut plan = FaultPlan::new(14).with_proxy_death_rate(SimDuration::from_millis(10));
        // First poll far into virtual time: arming, never a back-dated
        // burst.
        assert!(!plan.proxy_death_due(t(10_000)));
        let mut fired = 0;
        for i in 0..40 {
            if plan.proxy_death_due(t(10_000 + i)) {
                fired += 1;
            }
        }
        assert!(fired >= 1, "the stream must keep delivering after arming");
        assert!(fired <= 20, "a 10 ms mean cannot fire {fired}x in 40 ms");
    }

    #[test]
    fn degradation_window_inflates_cost_and_records_once() {
        let mut plan =
            FaultPlan::new(6).schedule_degradation(t(10), t(20), 25, Some(FsKind::LocalDisk));
        let cost = SimDuration::from_nanos(1000);
        // Healthy before the window and on other mounts.
        assert_eq!(
            plan.degradation_extra(FsKind::LocalDisk, t(5), cost),
            SimDuration::ZERO
        );
        assert_eq!(
            plan.degradation_extra(FsKind::Nfs, t(15), cost),
            SimDuration::ZERO
        );
        // 25% bandwidth → 4x cost → 3x extra.
        assert_eq!(
            plan.degradation_extra(FsKind::LocalDisk, t(15), cost),
            SimDuration::from_nanos(3000)
        );
        // Repeated hits keep inflating but record one fault total.
        assert_eq!(
            plan.degradation_extra(FsKind::LocalDisk, t(16), cost),
            SimDuration::from_nanos(3000)
        );
        assert_eq!(plan.count(FaultKind::ChannelDegraded), 1);
        // Healthy again after the window.
        assert_eq!(
            plan.degradation_extra(FsKind::LocalDisk, t(20), cost),
            SimDuration::ZERO
        );
    }

    #[test]
    fn heartbeat_loss_and_partition_windows_are_half_open() {
        let mut plan = FaultPlan::new(7)
            .schedule_heartbeat_loss(t(10), t(20))
            .schedule_partition(t(30), t(40), &[NodeId(1)]);
        assert!(!plan.heartbeats_lost(t(9)));
        assert!(plan.heartbeats_lost(t(10)));
        assert!(plan.heartbeats_lost(t(19)));
        assert!(!plan.heartbeats_lost(t(20)));
        assert!(!plan.partitioned(NodeId(1), t(29)));
        assert!(plan.partitioned(NodeId(1), t(35)));
        assert!(!plan.partitioned(NodeId(2), t(35)), "only listed nodes");
        assert!(!plan.partitioned(NodeId(1), t(40)), "the partition heals");
        assert_eq!(plan.count(FaultKind::HeartbeatLoss), 1);
        assert_eq!(plan.count(FaultKind::Partition), 1);
    }

    #[test]
    fn domain_crash_takes_every_member_together() {
        let rack = [NodeId(1), NodeId(2), NodeId(3)];
        let mut plan = FaultPlan::new(8)
            .define_domain("rack0", &rack)
            .define_domain("rack1", &[NodeId(4)])
            .schedule_domain_crash(t(50), "rack0");
        assert_eq!(plan.domain_of(NodeId(2)), Some("rack0"));
        assert_eq!(plan.domain_of(NodeId(4)), Some("rack1"));
        assert_eq!(plan.domain_of(NodeId(9)), None);
        assert!(plan.due_node_crashes(t(49)).is_empty());
        let crashed = plan.due_node_crashes(t(50));
        assert_eq!(crashed, rack.to_vec());
        assert_eq!(plan.count(FaultKind::NodeCrash), 3);
        assert!(plan.due_node_crashes(t(51)).is_empty(), "one-shot");
    }

    #[test]
    fn corrupt_flips_are_in_bounds() {
        let mut plan = FaultPlan::new(5).corrupt_next_writes(1);
        match plan.on_write(FsKind::RamDisk, "/ram/a", t(0), 16) {
            WriteFault::Corrupt(flips) => {
                assert!(!flips.is_empty() && flips.len() <= 3);
                for (pos, mask) in flips {
                    assert!(pos < 16);
                    assert_eq!(mask.count_ones(), 1);
                }
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }
}
