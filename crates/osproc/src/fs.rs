//! Simulated filesystems.
//!
//! Three kinds, with the sequential-I/O bandwidths measured with
//! Bonnie++ in Table I of the paper: the local hard disk, the Linux RAM
//! disk, and NFS. A write or read charges `latency + size/bandwidth` to
//! the calling process's clock; contents are held in memory so
//! checkpoint files can actually be read back and restored from.

use simcore::calib;
use simcore::{Bandwidth, ByteSize, LinkModel, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// The kind of storage backing a filesystem.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FsKind {
    /// Local hard disk (Table I: 110 / 106 MB/s write/read).
    LocalDisk,
    /// Linux RAM disk (Table I: 2881 / 4800 MB/s write/read).
    RamDisk,
    /// NFS over gigabit Ethernet (Table I: 72.5 / 21.2 MB/s write/read).
    Nfs,
}

impl FsKind {
    /// The calibrated write path for this storage kind.
    pub fn write_link(self) -> LinkModel {
        match self {
            FsKind::LocalDisk => {
                LinkModel::new(SimDuration::from_millis(8), calib::disk_local_write())
            }
            FsKind::RamDisk => LinkModel::new(SimDuration::from_micros(5), calib::ramdisk_write()),
            FsKind::Nfs => LinkModel::new(SimDuration::from_millis(1), calib::nfs_write()),
        }
    }

    /// The calibrated read path for this storage kind.
    pub fn read_link(self) -> LinkModel {
        match self {
            FsKind::LocalDisk => {
                LinkModel::new(SimDuration::from_millis(8), calib::disk_local_read())
            }
            FsKind::RamDisk => LinkModel::new(SimDuration::from_micros(5), calib::ramdisk_read()),
            FsKind::Nfs => LinkModel::new(SimDuration::from_millis(1), calib::nfs_read()),
        }
    }
}

/// Filesystem operation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound(String),
    /// A write failed (injected disk fault); nothing was stored.
    WriteFailed(String),
    /// The mount is temporarily unreachable (injected NFS outage).
    Unavailable(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
            FsError::WriteFailed(p) => write!(f, "write failed: {p}"),
            FsError::Unavailable(p) => write!(f, "filesystem unavailable: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

/// Cumulative I/O statistics of one filesystem.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Number of read operations.
    pub reads: u64,
}

/// One simulated filesystem instance.
#[derive(Clone, Debug)]
pub struct Fs {
    kind: FsKind,
    label: String,
    files: BTreeMap<String, Vec<u8>>,
    stats: FsStats,
}

impl Fs {
    /// Create an empty filesystem.
    pub fn new(kind: FsKind, label: impl Into<String>) -> Self {
        Fs {
            kind,
            label: label.into(),
            files: BTreeMap::new(),
            stats: FsStats::default(),
        }
    }

    /// Storage kind.
    pub fn kind(&self) -> FsKind {
        self.kind
    }

    /// Human-readable label (e.g. `"nfs-shared"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> FsStats {
        self.stats
    }

    /// Write (create or replace) a file, charging the caller's clock.
    pub fn write(&mut self, now: &mut SimTime, path: &str, data: Vec<u8>) -> SimDuration {
        let cost = self
            .kind
            .write_link()
            .cost(ByteSize::bytes(data.len() as u64));
        *now += cost;
        self.stats.bytes_written += data.len() as u64;
        self.stats.writes += 1;
        self.files.insert(path.to_string(), data);
        cost
    }

    /// Append to a file, creating it if absent, charging the caller's
    /// clock. The per-operation seek/issue latency is paid once, when
    /// the file is created; subsequent appends stream at the medium's
    /// sequential bandwidth, so a chunked writer pays (asymptotically)
    /// the same total cost as one large [`Fs::write`].
    pub fn append(&mut self, now: &mut SimTime, path: &str, data: &[u8]) -> SimDuration {
        let size = ByteSize::bytes(data.len() as u64);
        let link = self.kind.write_link();
        let cost = if self.files.contains_key(path) {
            link.bandwidth.transfer_time(size)
        } else {
            link.cost(size)
        };
        *now += cost;
        self.stats.bytes_written += data.len() as u64;
        self.stats.writes += 1;
        self.files
            .entry(path.to_string())
            .or_default()
            .extend_from_slice(data);
        cost
    }

    /// Read a file, charging the caller's clock.
    pub fn read(&mut self, now: &mut SimTime, path: &str) -> Result<Vec<u8>, FsError> {
        let data = self
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        *now += self
            .kind
            .read_link()
            .cost(ByteSize::bytes(data.len() as u64));
        self.stats.bytes_read += data.len() as u64;
        self.stats.reads += 1;
        Ok(data)
    }

    /// Delete a file (cheap; metadata only).
    pub fn delete(&mut self, now: &mut SimTime, path: &str) -> Result<(), FsError> {
        if self.files.remove(path).is_none() {
            return Err(FsError::NotFound(path.to_string()));
        }
        *now += SimDuration::from_micros(50);
        Ok(())
    }

    /// Rename a file within this filesystem (cheap; metadata only —
    /// the atomic-commit primitive for write-to-temp checkpointing).
    pub fn rename(&mut self, now: &mut SimTime, from: &str, to: &str) -> Result<(), FsError> {
        let data = self
            .files
            .remove(from)
            .ok_or_else(|| FsError::NotFound(from.to_string()))?;
        *now += SimDuration::from_micros(50);
        self.files.insert(to.to_string(), data);
        Ok(())
    }

    /// `true` if the path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Stored bytes of a file without charging any clock or touching
    /// the stats — inspection only (lineage verification, tests).
    pub fn peek(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(Vec::as_slice)
    }

    /// Size of a file, if it exists.
    pub fn file_size(&self, path: &str) -> Option<ByteSize> {
        self.files
            .get(path)
            .map(|d| ByteSize::bytes(d.len() as u64))
    }

    /// All paths currently stored, in sorted order.
    pub fn list(&self) -> Vec<&str> {
        self.files.keys().map(String::as_str).collect()
    }

    /// The effective sequential write bandwidth (for cost prediction,
    /// e.g. the α of the migration model in §IV-C).
    pub fn write_bandwidth(&self) -> Bandwidth {
        self.kind.write_link().bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips_data() {
        let mut fs = Fs::new(FsKind::RamDisk, "ram");
        let mut now = SimTime::ZERO;
        fs.write(&mut now, "/ckpt/a", vec![1, 2, 3]);
        assert_eq!(fs.read(&mut now, "/ckpt/a").unwrap(), vec![1, 2, 3]);
        assert!(fs.exists("/ckpt/a"));
        assert_eq!(fs.file_size("/ckpt/a"), Some(ByteSize::bytes(3)));
    }

    #[test]
    fn chunked_appends_cost_like_one_write() {
        let total = 32 * 1024 * 1024usize;
        let chunk = 4 * 1024 * 1024usize;
        let mut whole = Fs::new(FsKind::LocalDisk, "hd");
        let mut chunked = Fs::new(FsKind::LocalDisk, "hd");
        let mut t_whole = SimTime::ZERO;
        let mut t_chunked = SimTime::ZERO;
        whole.write(&mut t_whole, "/f", vec![0u8; total]);
        for _ in 0..(total / chunk) {
            chunked.append(&mut t_chunked, "/f", &vec![0u8; chunk]);
        }
        // Per-chunk bandwidth costs round down independently, so allow
        // one nanosecond of drift per chunk.
        let drift = t_whole
            .since(SimTime::ZERO)
            .as_nanos()
            .abs_diff(t_chunked.since(SimTime::ZERO).as_nanos());
        assert!(
            drift <= (total / chunk) as u64,
            "appends must amortize to one write (drift {drift}ns)"
        );
        assert_eq!(
            whole.file_size("/f"),
            chunked.file_size("/f"),
            "same bytes on disk"
        );
    }

    #[test]
    fn append_extends_existing_contents() {
        let mut fs = Fs::new(FsKind::RamDisk, "ram");
        let mut now = SimTime::ZERO;
        fs.append(&mut now, "/a", &[1, 2]);
        fs.append(&mut now, "/a", &[3]);
        assert_eq!(fs.read(&mut now, "/a").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn missing_file_errors() {
        let mut fs = Fs::new(FsKind::LocalDisk, "hd");
        let mut now = SimTime::ZERO;
        assert!(matches!(
            fs.read(&mut now, "/nope"),
            Err(FsError::NotFound(_))
        ));
        assert!(fs.delete(&mut now, "/nope").is_err());
    }

    #[test]
    fn write_cost_scales_with_size_and_medium() {
        let mb32 = vec![0u8; 32 * 1024 * 1024];
        let mut disk = Fs::new(FsKind::LocalDisk, "hd");
        let mut ram = Fs::new(FsKind::RamDisk, "ram");
        let mut t_disk = SimTime::ZERO;
        let mut t_ram = SimTime::ZERO;
        disk.write(&mut t_disk, "/f", mb32.clone());
        ram.write(&mut t_ram, "/f", mb32);
        // 32 MiB at 110 MB/s ≈ 0.305 s; at 2881 MB/s ≈ 11.6 ms.
        let d = t_disk.since(SimTime::ZERO).as_secs_f64();
        let r = t_ram.since(SimTime::ZERO).as_secs_f64();
        assert!((0.25..0.40).contains(&d), "disk write took {d}");
        assert!((0.005..0.020).contains(&r), "ram write took {r}");
    }

    #[test]
    fn nfs_read_slower_than_write() {
        // Table I: NFS write 72.5 MB/s, read only 21.2 MB/s.
        let data = vec![0u8; 16 * 1024 * 1024];
        let mut fs = Fs::new(FsKind::Nfs, "nfs");
        let mut t0 = SimTime::ZERO;
        let w = fs.write(&mut t0, "/f", data);
        let before = t0;
        fs.read(&mut t0, "/f").unwrap();
        let r = t0.since(before);
        assert!(r > w, "read {r} should exceed write {w}");
    }

    #[test]
    fn stats_accumulate() {
        let mut fs = Fs::new(FsKind::RamDisk, "ram");
        let mut now = SimTime::ZERO;
        fs.write(&mut now, "/a", vec![0; 10]);
        fs.write(&mut now, "/b", vec![0; 20]);
        fs.read(&mut now, "/a").unwrap();
        let s = fs.stats();
        assert_eq!(s.bytes_written, 30);
        assert_eq!(s.writes, 2);
        assert_eq!(s.bytes_read, 10);
        assert_eq!(s.reads, 1);
    }

    #[test]
    fn overwrite_replaces_contents() {
        let mut fs = Fs::new(FsKind::RamDisk, "ram");
        let mut now = SimTime::ZERO;
        fs.write(&mut now, "/a", vec![1]);
        fs.write(&mut now, "/a", vec![2, 3]);
        assert_eq!(fs.read(&mut now, "/a").unwrap(), vec![2, 3]);
        assert_eq!(fs.list(), vec!["/a"]);
    }

    #[test]
    fn delete_removes_file() {
        let mut fs = Fs::new(FsKind::RamDisk, "ram");
        let mut now = SimTime::ZERO;
        fs.write(&mut now, "/a", vec![1]);
        fs.delete(&mut now, "/a").unwrap();
        assert!(!fs.exists("/a"));
    }

    #[test]
    fn rename_moves_contents() {
        let mut fs = Fs::new(FsKind::RamDisk, "ram");
        let mut now = SimTime::ZERO;
        fs.write(&mut now, "/a.tmp", vec![7, 8]);
        fs.rename(&mut now, "/a.tmp", "/a").unwrap();
        assert!(!fs.exists("/a.tmp"));
        assert_eq!(fs.read(&mut now, "/a").unwrap(), vec![7, 8]);
        assert!(matches!(
            fs.rename(&mut now, "/missing", "/b"),
            Err(FsError::NotFound(_))
        ));
    }
}
