//! Heartbeat-based failure detection primitives.
//!
//! A supervisor cannot ask a dead process whether it is dead; it can
//! only notice that the process stopped talking. This module models
//! that mechanism in virtual time: watched entities (the API proxy,
//! cluster nodes) emit periodic beats while alive, and a
//! [`HeartbeatMonitor`] turns the *absence* of beats into suspicion —
//! either after a fixed timeout, or when a phi-accrual score crosses a
//! threshold. Detection is therefore never instantaneous: a crash at
//! `t` is only suspected at `t + detection delay`, and that delay is
//! real downtime the supervision layer must account for.
//!
//! The phi-accrual detector follows Hayashibara et al.'s idea
//! (adapted to the deterministic simulation): with mean inter-beat
//! gap `m`, the suspicion level after `e` silent time is
//! `phi = e / (m · ln 10)` — the negative decimal log of the
//! probability that a beat is merely late under an exponential
//! inter-arrival model. No transcendental functions are evaluated at
//! runtime (`ln 10` is a constant), so detection times are
//! bit-reproducible.

use crate::ids::{NodeId, Pid};
use simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// ln(10), so phi evaluation stays transcendental-free.
const LN_10: f64 = std::f64::consts::LN_10;

/// How many recent inter-beat gaps the phi detector remembers.
const PHI_WINDOW: usize = 16;

/// An entity the monitor watches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum BeatSource {
    /// The API proxy process of a CheCL session.
    Proxy(Pid),
    /// A cluster node (all heartbeats from that machine).
    Node(NodeId),
}

impl std::fmt::Display for BeatSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BeatSource::Proxy(pid) => write!(f, "proxy {pid}"),
            BeatSource::Node(node) => write!(f, "node {}", node.0),
        }
    }
}

/// How silence is turned into suspicion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DetectorPolicy {
    /// Suspect after a fixed silent window.
    Timeout(SimDuration),
    /// Suspect when the phi-accrual score crosses `threshold`
    /// (typically 1–16; 8 ≈ "one false positive per 10^8 beats").
    /// Falls back to `floor` as the silent window until enough gaps
    /// have been observed to estimate the mean.
    PhiAccrual {
        /// Suspicion threshold.
        threshold: f64,
        /// Timeout used before the window has `>= 2` samples.
        floor: SimDuration,
    },
}

/// Per-source beat history.
#[derive(Clone, Debug)]
struct BeatStream {
    last: SimTime,
    gaps: VecDeque<SimDuration>,
}

impl BeatStream {
    fn mean_gap(&self) -> Option<SimDuration> {
        if self.gaps.len() < 2 {
            return None;
        }
        let total: u64 = self.gaps.iter().map(|g| g.as_nanos()).sum();
        Some(SimDuration::from_nanos(total / self.gaps.len() as u64))
    }
}

/// A virtual-time failure detector over heartbeat streams.
#[derive(Clone, Debug)]
pub struct HeartbeatMonitor {
    policy: DetectorPolicy,
    streams: BTreeMap<BeatSource, BeatStream>,
}

impl HeartbeatMonitor {
    /// A monitor with no watched sources yet.
    pub fn new(policy: DetectorPolicy) -> HeartbeatMonitor {
        HeartbeatMonitor {
            policy,
            streams: BTreeMap::new(),
        }
    }

    /// The detection policy in force.
    pub fn policy(&self) -> DetectorPolicy {
        self.policy
    }

    /// Start watching `src`; `now` counts as its first beat.
    pub fn watch(&mut self, src: BeatSource, now: SimTime) {
        self.streams.insert(
            src,
            BeatStream {
                last: now,
                gaps: VecDeque::new(),
            },
        );
    }

    /// Stop watching `src` (e.g. the entity was deliberately retired).
    pub fn unwatch(&mut self, src: BeatSource) {
        self.streams.remove(&src);
    }

    /// `true` if `src` is currently watched.
    pub fn watches(&self, src: BeatSource) -> bool {
        self.streams.contains_key(&src)
    }

    /// Record a beat from `src` at `now`. Unwatched sources are
    /// ignored; beats never move time backwards.
    pub fn beat(&mut self, src: BeatSource, now: SimTime) {
        let Some(s) = self.streams.get_mut(&src) else {
            return;
        };
        if now <= s.last {
            return;
        }
        s.gaps.push_back(now.since(s.last));
        if s.gaps.len() > PHI_WINDOW {
            s.gaps.pop_front();
        }
        s.last = now;
    }

    /// The effective silent window after which `src` is suspected.
    fn window(&self, s: &BeatStream) -> SimDuration {
        match self.policy {
            DetectorPolicy::Timeout(t) => t,
            DetectorPolicy::PhiAccrual { threshold, floor } => match s.mean_gap() {
                // phi = e / (m·ln10) >= threshold  ⇔  e >= threshold·m·ln10
                Some(mean) => mean * (threshold * LN_10),
                None => floor,
            },
        }
    }

    /// Current phi-accrual suspicion score for `src` (0 when unwatched;
    /// under a plain timeout policy this reports elapsed/timeout so the
    /// score still crosses 1.0 exactly at suspicion time).
    pub fn phi(&self, src: BeatSource, now: SimTime) -> f64 {
        let Some(s) = self.streams.get(&src) else {
            return 0.0;
        };
        let elapsed = now.since(s.last).as_secs_f64();
        match self.policy {
            DetectorPolicy::Timeout(t) => elapsed / t.as_secs_f64().max(f64::MIN_POSITIVE),
            DetectorPolicy::PhiAccrual { floor, .. } => {
                let mean = s
                    .mean_gap()
                    .unwrap_or(floor)
                    .as_secs_f64()
                    .max(f64::MIN_POSITIVE);
                elapsed / (mean * LN_10)
            }
        }
    }

    /// `true` if `src` has been silent past the detection window.
    pub fn suspected(&self, src: BeatSource, now: SimTime) -> bool {
        match self.streams.get(&src) {
            Some(s) => now.since(s.last) >= self.window(s),
            None => false,
        }
    }

    /// Every watched source currently suspected, in source order.
    pub fn suspects(&self, now: SimTime) -> Vec<BeatSource> {
        self.streams
            .iter()
            .filter(|(_, s)| now.since(s.last) >= self.window(s))
            .map(|(src, _)| *src)
            .collect()
    }

    /// The virtual instant at which a silent `src` *will* cross the
    /// detection window (its last beat plus the window). This is what a
    /// supervision loop charges as detection latency: a crash is not
    /// known until this instant. `None` for unwatched sources.
    pub fn detection_time(&self, src: BeatSource) -> Option<SimTime> {
        self.streams.get(&src).map(|s| s.last + self.window(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn timeout_detector_suspects_after_silence() {
        let mut m = HeartbeatMonitor::new(DetectorPolicy::Timeout(SimDuration::from_millis(30)));
        let src = BeatSource::Proxy(Pid(7));
        m.watch(src, t(0));
        m.beat(src, t(10));
        assert!(!m.suspected(src, t(39)));
        assert!(m.suspected(src, t(40)));
        assert_eq!(m.detection_time(src), Some(t(40)));
        assert_eq!(m.suspects(t(45)), vec![src]);
        // A beat clears the suspicion.
        m.beat(src, t(45));
        assert!(!m.suspected(src, t(50)));
    }

    #[test]
    fn phi_detector_adapts_to_beat_cadence() {
        let policy = DetectorPolicy::PhiAccrual {
            threshold: 2.0,
            floor: SimDuration::from_millis(100),
        };
        let mut m = HeartbeatMonitor::new(policy);
        let src = BeatSource::Node(NodeId(1));
        m.watch(src, t(0));
        // Steady 5 ms cadence → window ≈ 2·5ms·ln10 ≈ 23 ms.
        for i in 1..=8 {
            m.beat(src, t(5 * i));
        }
        assert!(!m.suspected(src, t(60)));
        assert!(m.suspected(src, t(64)));
        assert!(m.phi(src, t(64)) >= 2.0);
        // A slower cadence widens the window.
        let mut slow = HeartbeatMonitor::new(policy);
        slow.watch(src, t(0));
        for i in 1..=8 {
            slow.beat(src, t(20 * i));
        }
        assert!(!slow.suspected(src, t(220)));
        assert!(slow.suspected(src, t(253)));
    }

    #[test]
    fn phi_floor_covers_the_cold_start() {
        let policy = DetectorPolicy::PhiAccrual {
            threshold: 2.0,
            floor: SimDuration::from_millis(40),
        };
        let mut m = HeartbeatMonitor::new(policy);
        let src = BeatSource::Proxy(Pid(3));
        m.watch(src, t(0));
        // One beat (one gap) is not enough for a mean: the floor rules.
        m.beat(src, t(5));
        assert!(!m.suspected(src, t(44)));
        assert!(m.suspected(src, t(45)));
    }

    #[test]
    fn unwatched_sources_are_never_suspected() {
        let mut m = HeartbeatMonitor::new(DetectorPolicy::Timeout(SimDuration::from_millis(10)));
        let src = BeatSource::Proxy(Pid(9));
        assert!(!m.suspected(src, t(1_000)));
        assert_eq!(m.phi(src, t(1_000)), 0.0);
        m.watch(src, t(0));
        m.unwatch(src);
        assert!(!m.suspected(src, t(1_000)));
        assert!(m.suspects(t(1_000)).is_empty());
    }
}
