//! Identifier newtypes for OS objects.

use simcore::codec::{Codec, CodecError, Reader};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl Codec for $name {
            fn encode(&self, out: &mut Vec<u8>) {
                self.0.encode(out);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok($name(u32::decode(r)?))
            }
        }
    };
}

define_id!(
    /// A process identifier, unique within the whole cluster (the
    /// simulation never recycles pids).
    Pid,
    "pid"
);
define_id!(
    /// A node (machine) identifier.
    NodeId,
    "node"
);
define_id!(
    /// A filesystem identifier. Filesystems are cluster-level objects so
    /// that one NFS instance can be mounted by many nodes.
    FsId,
    "fs"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{:?}", Pid(3)), "pid3");
        assert_eq!(format!("{}", NodeId(0)), "node0");
        assert_eq!(format!("{}", FsId(2)), "fs2");
    }

    #[test]
    fn ids_roundtrip_codec() {
        assert_eq!(Pid::from_bytes(&Pid(9).to_bytes()).unwrap(), Pid(9));
    }
}
