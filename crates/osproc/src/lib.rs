//! `osproc` — a simulated OS and cluster substrate.
//!
//! The paper's environment is a handful of CentOS PCs: processes that
//! `fork()`, Unix signals, pipes, local disks, a RAM disk, and a shared
//! NFS mount. This crate models exactly that much of an operating
//! system, because CheCL's correctness argument is an *OS-level* one:
//!
//! * a process whose address space contains **device-mapped regions**
//!   cannot be checkpointed by a conventional CPR system (§II) — we
//!   track [`process::DeviceMapping`]s per process so `blcr` can refuse;
//! * the application process's "host memory" is a serializable
//!   [`memimage::MemImage`] — the thing BLCR dumps;
//! * checkpoint files land on simulated [`fs::Fs`] mounts whose
//!   bandwidths come straight from Table I, which is what makes the
//!   write phase dominate checkpoint time (Fig. 5);
//! * pipes ([`pipe::Pipe`]) charge latency plus a host-memory copy per
//!   message — the API-proxy forwarding overhead of Fig. 4.

pub mod cluster;
pub mod fault;
pub mod fs;
pub mod heartbeat;
pub mod ids;
pub mod memimage;
pub mod pipe;
pub mod process;

pub use cluster::{Cluster, Node};
pub use fault::{FaultKind, FaultPlan, InjectedFault, WriteFault};
pub use fs::{Fs, FsError, FsKind, FsStats};
pub use heartbeat::{BeatSource, DetectorPolicy, HeartbeatMonitor};
pub use ids::{FsId, NodeId, Pid};
pub use memimage::MemImage;
pub use pipe::Pipe;
pub use process::{DeviceMapping, ProcState, Process, Signal};
