//! The serializable host-memory image of a process.
//!
//! A real CPR system dumps the raw address space. We model the address
//! space as *named segments* — "script", "heap", "checl-state", … —
//! each an opaque byte blob owned by whatever runtime put it there.
//! BLCR serialises segments wholesale without understanding them, which
//! is exactly the transparency contract of the paper: CheCL's object
//! database rides along inside the dumped host memory.

use simcore::codec::{decode_bytes, encode_bytes, Codec, CodecError, Reader};
use simcore::ByteSize;
use std::collections::BTreeMap;

/// A process's host memory: named, opaque segments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemImage {
    segments: BTreeMap<String, Vec<u8>>,
}

impl MemImage {
    /// An empty image.
    pub fn new() -> Self {
        MemImage::default()
    }

    /// Install or replace a segment.
    pub fn put(&mut self, name: &str, data: Vec<u8>) {
        self.segments.insert(name.to_string(), data);
    }

    /// Read a segment.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.segments.get(name).map(Vec::as_slice)
    }

    /// Remove a segment, returning its contents.
    pub fn take(&mut self, name: &str) -> Option<Vec<u8>> {
        self.segments.remove(name)
    }

    /// `true` if the segment exists.
    pub fn contains(&self, name: &str) -> bool {
        self.segments.contains_key(name)
    }

    /// Names of all segments, sorted.
    pub fn segment_names(&self) -> Vec<&str> {
        self.segments.keys().map(String::as_str).collect()
    }

    /// Total bytes across all segments — what the CPR system will have
    /// to write. Checkpoint file size is this plus the fixed process
    /// baseline (text, stacks, libc; see `simcore::calib`).
    pub fn total_size(&self) -> ByteSize {
        ByteSize::bytes(self.segments.values().map(|v| v.len() as u64).sum())
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// `true` if there are no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

impl Codec for MemImage {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.segments.len() as u64).encode(out);
        for (name, data) in &self.segments {
            name.encode(out);
            encode_bytes(out, data);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = u64::decode(r)? as usize;
        if n > r.remaining() {
            return Err(CodecError::Invalid("segment count exceeds stream"));
        }
        let mut segments = BTreeMap::new();
        for _ in 0..n {
            let name = String::decode(r)?;
            let data = decode_bytes(r)?;
            segments.insert(name, data);
        }
        Ok(MemImage { segments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_take() {
        let mut img = MemImage::new();
        img.put("heap", vec![1, 2, 3]);
        img.put("script", vec![9]);
        assert_eq!(img.get("heap"), Some(&[1u8, 2, 3][..]));
        assert_eq!(img.segment_names(), vec!["heap", "script"]);
        assert_eq!(img.total_size(), ByteSize::bytes(4));
        assert_eq!(img.take("heap"), Some(vec![1, 2, 3]));
        assert!(!img.contains("heap"));
        assert_eq!(img.len(), 1);
    }

    #[test]
    fn codec_roundtrip() {
        let mut img = MemImage::new();
        img.put("a", vec![0u8; 100]);
        img.put("b", b"hello".to_vec());
        let back = MemImage::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn empty_image_roundtrips() {
        let img = MemImage::new();
        assert!(img.is_empty());
        assert_eq!(MemImage::from_bytes(&img.to_bytes()).unwrap(), img);
    }
}
