//! IPC pipes between processes.
//!
//! The application↔proxy channel of CheCL. Each message charges the
//! caller a fixed latency (two small control messages over a Unix
//! domain socket) plus one extra host-memory copy of the payload —
//! §IV-A: "to send some data in the memory space of an application
//! process to the device memory, the data must be first copied to the
//! memory space of the API proxy".

use crate::ids::Pid;
use simcore::{calib, telemetry, ByteSize, LinkModel, SimDuration, SimTime};

/// Cumulative pipe statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipeStats {
    /// Messages sent in either direction.
    pub messages: u64,
    /// Payload bytes moved in either direction.
    pub bytes: u64,
}

/// A bidirectional IPC channel between two processes on the same node.
#[derive(Clone, Debug)]
pub struct Pipe {
    /// One endpoint (conventionally the application).
    pub a: Pid,
    /// The other endpoint (conventionally the API proxy).
    pub b: Pid,
    link: LinkModel,
    stats: PipeStats,
}

impl Pipe {
    /// Create a pipe with the calibrated app↔proxy link model.
    pub fn new(a: Pid, b: Pid) -> Self {
        Pipe {
            a,
            b,
            link: calib::ipc_link(),
            stats: PipeStats::default(),
        }
    }

    /// Create a pipe with a custom link model (tests, remote proxies).
    pub fn with_link(a: Pid, b: Pid, link: LinkModel) -> Self {
        Pipe {
            a,
            b,
            link,
            stats: PipeStats::default(),
        }
    }

    /// Charge one message of `payload` bytes to the sender's clock and
    /// return the cost.
    pub fn transfer(&mut self, now: &mut SimTime, payload: u64) -> SimDuration {
        let cost = self.link.cost(ByteSize::bytes(payload));
        let sent_at = *now;
        *now += cost;
        self.stats.messages += 1;
        self.stats.bytes += payload;
        if telemetry::enabled() {
            telemetry::instant(
                "ipc",
                "ipc.msg",
                sent_at,
                vec![("bytes", payload.into()), ("cost_ns", cost.into())],
            );
            telemetry::counter_add("ipc.messages", 1);
            telemetry::counter_add("ipc.bytes", payload);
        }
        cost
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> PipeStats {
        self.stats
    }

    /// The link model in force.
    pub fn link(&self) -> LinkModel {
        self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Bandwidth;

    #[test]
    fn small_message_costs_latency() {
        let mut p = Pipe::new(Pid(1), Pid(2));
        let mut now = SimTime::ZERO;
        let cost = p.transfer(&mut now, 64);
        // Dominated by the 8us call latency.
        assert!(cost >= SimDuration::from_micros(8));
        assert!(cost < SimDuration::from_micros(10));
    }

    #[test]
    fn bulk_message_costs_copy() {
        let mut p = Pipe::new(Pid(1), Pid(2));
        let mut now = SimTime::ZERO;
        // 32 MB at 8 GB/s host memcpy ≈ 4 ms.
        let cost = p.transfer(&mut now, 32_000_000);
        let secs = cost.as_secs_f64();
        assert!((0.003..0.006).contains(&secs), "cost {secs}");
    }

    #[test]
    fn stats_accumulate() {
        let mut p = Pipe::new(Pid(1), Pid(2));
        let mut now = SimTime::ZERO;
        p.transfer(&mut now, 100);
        p.transfer(&mut now, 200);
        assert_eq!(
            p.stats(),
            PipeStats {
                messages: 2,
                bytes: 300
            }
        );
    }

    #[test]
    fn custom_link_respected() {
        let slow = LinkModel::new(SimDuration::from_millis(1), Bandwidth::mb_per_sec(1.0));
        let mut p = Pipe::with_link(Pid(1), Pid(2), slow);
        let mut now = SimTime::ZERO;
        let cost = p.transfer(&mut now, 1_000_000);
        // 1ms latency + 1s transfer.
        assert!(cost > SimDuration::from_secs(1));
    }
}
