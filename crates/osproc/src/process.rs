//! Simulated processes.

use crate::ids::{NodeId, Pid};
use crate::memimage::MemImage;
use simcore::{ByteSize, SimTime};
use std::collections::VecDeque;

/// Unix-style signals the simulation delivers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Signal {
    /// SIGUSR1 — the checkpoint request signal (§III-C).
    Usr1,
    /// SIGTERM — polite kill.
    Term,
}

/// Lifecycle state of a process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcState {
    /// Scheduled and runnable.
    Running,
    /// Exited voluntarily with a status code.
    Exited(i32),
    /// Killed by the OS or another process.
    Killed,
}

/// A device region mapped into a process's address space by a GPU
/// driver.
///
/// This is the poison that makes conventional CPR fail (§II): "several
/// special devices are mapped to the memory space of an OpenCL process
/// by the GPU device driver … the existing CPR system does not know how
/// to handle those memory-mapped devices".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceMapping {
    /// Which device file the mapping came from (e.g. `/dev/nimbus0`).
    pub device: String,
    /// Size of the mapped region.
    pub size: ByteSize,
}

/// One simulated process.
#[derive(Clone, Debug)]
pub struct Process {
    /// Cluster-unique process id.
    pub pid: Pid,
    /// Node the process runs on.
    pub node: NodeId,
    /// Parent, if forked.
    pub parent: Option<Pid>,
    /// Children forked by this process.
    pub children: Vec<Pid>,
    /// The process's virtual clock.
    pub clock: SimTime,
    /// Serializable host memory.
    pub image: MemImage,
    /// Device regions mapped by drivers loaded in this process.
    pub device_mappings: Vec<DeviceMapping>,
    /// Lifecycle state.
    pub state: ProcState,
    /// Signals delivered but not yet consumed by the program.
    pub pending_signals: VecDeque<Signal>,
    /// Name of the `libOpenCL.so` variant the loader bound, if any
    /// (`"native"` or `"checl"`).
    pub bound_opencl: Option<String>,
}

impl Process {
    pub(crate) fn new(pid: Pid, node: NodeId, parent: Option<Pid>) -> Self {
        Process {
            pid,
            node,
            parent,
            children: Vec::new(),
            clock: SimTime::ZERO,
            image: MemImage::new(),
            device_mappings: Vec::new(),
            state: ProcState::Running,
            pending_signals: VecDeque::new(),
            bound_opencl: None,
        }
    }

    /// `true` while the process can execute.
    pub fn is_alive(&self) -> bool {
        self.state == ProcState::Running
    }

    /// `true` if any driver mapped device regions here — i.e. a
    /// conventional CPR system would refuse (or corrupt) a dump.
    pub fn has_device_mappings(&self) -> bool {
        !self.device_mappings.is_empty()
    }

    /// Record a device mapping (called by drivers at initialisation).
    pub fn map_device(&mut self, device: impl Into<String>, size: ByteSize) {
        self.device_mappings.push(DeviceMapping {
            device: device.into(),
            size,
        });
    }

    /// Remove all mappings contributed by `device` (driver unloaded).
    pub fn unmap_device(&mut self, device: &str) {
        self.device_mappings.retain(|m| m.device != device);
    }

    /// Take the oldest pending signal, if any.
    pub fn poll_signal(&mut self) -> Option<Signal> {
        self.pending_signals.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_process_is_clean() {
        let p = Process::new(Pid(1), NodeId(0), None);
        assert!(p.is_alive());
        assert!(!p.has_device_mappings());
        assert!(p.image.is_empty());
        assert_eq!(p.clock, SimTime::ZERO);
    }

    #[test]
    fn device_mappings_toggle() {
        let mut p = Process::new(Pid(1), NodeId(0), None);
        p.map_device("/dev/nimbus0", ByteSize::mib(256));
        p.map_device("/dev/nimbus0", ByteSize::mib(16));
        assert!(p.has_device_mappings());
        p.unmap_device("/dev/nimbus0");
        assert!(!p.has_device_mappings());
    }

    #[test]
    fn signals_queue_fifo() {
        let mut p = Process::new(Pid(1), NodeId(0), None);
        p.pending_signals.push_back(Signal::Usr1);
        p.pending_signals.push_back(Signal::Term);
        assert_eq!(p.poll_signal(), Some(Signal::Usr1));
        assert_eq!(p.poll_signal(), Some(Signal::Term));
        assert_eq!(p.poll_signal(), None);
    }
}
