//! Latency + bandwidth link models.
//!
//! Every data path in the simulation — PCIe, IPC pipes, disks, NFS, the
//! cluster interconnect — is modelled as a [`LinkModel`]: a fixed
//! per-operation latency plus a byte-rate term. This is the classic
//! LogP-style α+βn model and is sufficient to reproduce all shapes in
//! the paper's evaluation (e.g. checkpoint time ∝ file size).

use crate::bytesize::ByteSize;
use crate::time::SimDuration;
use std::fmt;

/// A transfer rate in bytes per second.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Construct from bytes per second.
    pub fn bytes_per_sec(bps: f64) -> Self {
        assert!(bps.is_finite() && bps > 0.0, "bandwidth must be positive");
        Bandwidth(bps)
    }

    /// Construct from decimal megabytes per second (the unit Table I of
    /// the paper uses for disk and NFS bandwidths).
    pub fn mb_per_sec(mb: f64) -> Self {
        Bandwidth::bytes_per_sec(mb * 1e6)
    }

    /// Construct from decimal gigabytes per second (the unit Table I
    /// uses for PCIe bandwidths).
    pub fn gb_per_sec(gb: f64) -> Self {
        Bandwidth::bytes_per_sec(gb * 1e9)
    }

    /// The rate in bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Time to move `size` bytes at this rate (no latency term).
    pub fn transfer_time(self, size: ByteSize) -> SimDuration {
        SimDuration::from_secs_f64(size.as_u64() as f64 / self.0)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2}GB/s", self.0 / 1e9)
        } else {
            write!(f, "{:.1}MB/s", self.0 / 1e6)
        }
    }
}

/// A data path: per-operation latency plus bandwidth.
///
/// `cost(n) = latency + n / bandwidth`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// Fixed per-operation latency (seek time, syscall, RPC round trip…).
    pub latency: SimDuration,
    /// Sustained byte rate.
    pub bandwidth: Bandwidth,
}

impl LinkModel {
    /// Build a link model.
    pub fn new(latency: SimDuration, bandwidth: Bandwidth) -> Self {
        LinkModel { latency, bandwidth }
    }

    /// A link with no fixed latency.
    pub fn pure_bandwidth(bandwidth: Bandwidth) -> Self {
        LinkModel {
            latency: SimDuration::ZERO,
            bandwidth,
        }
    }

    /// Cost of one operation moving `size` bytes.
    pub fn cost(&self, size: ByteSize) -> SimDuration {
        self.latency + self.bandwidth.transfer_time(size)
    }

    /// Cost of an operation that moves no payload (latency only).
    pub fn cost_empty(&self) -> SimDuration {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_linear() {
        let bw = Bandwidth::mb_per_sec(100.0); // 100 MB/s = 1e8 B/s
        let t = bw.transfer_time(ByteSize::bytes(100_000_000));
        assert_eq!(t, SimDuration::from_secs(1));
        let t2 = bw.transfer_time(ByteSize::bytes(200_000_000));
        assert_eq!(t2, SimDuration::from_secs(2));
    }

    #[test]
    fn link_cost_adds_latency() {
        let link = LinkModel::new(SimDuration::from_micros(10), Bandwidth::bytes_per_sec(1e9));
        let c = link.cost(ByteSize::bytes(1_000_000));
        // 10us latency + 1ms transfer
        assert_eq!(c, SimDuration::from_micros(1010));
        assert_eq!(link.cost_empty(), SimDuration::from_micros(10));
    }

    #[test]
    fn zero_size_costs_latency_only() {
        let link = LinkModel::new(SimDuration::from_micros(3), Bandwidth::gb_per_sec(5.0));
        assert_eq!(link.cost(ByteSize::ZERO), SimDuration::from_micros(3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::bytes_per_sec(0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bandwidth::gb_per_sec(5.35).to_string(), "5.35GB/s");
        assert_eq!(Bandwidth::mb_per_sec(72.5).to_string(), "72.5MB/s");
    }
}
