//! Byte quantities with human-readable construction and display.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A number of bytes.
///
/// Used for buffer sizes, checkpoint file sizes and memory capacities.
/// Construction helpers use binary units (`KiB` = 1024 bytes) because
/// device memories and buffers are naturally power-of-two sized, while
/// the paper's bandwidth figures (MB/sec) are decimal — the conversion
/// happens inside [`crate::bandwidth::Bandwidth`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from a raw byte count.
    pub const fn bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// `n` KiB.
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * 1024)
    }

    /// `n` MiB.
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }

    /// `n` GiB.
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024 * 1024)
    }

    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The size in fractional MiB (for reporting file sizes as in Fig. 5
    /// and Fig. 8 of the paper).
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// `true` if zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_add(rhs.0).expect("ByteSize overflow"))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_sub(rhs.0).expect("ByteSize underflow"))
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0.checked_mul(rhs).expect("ByteSize overflow"))
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * 1024;
        const GIB: u64 = 1024 * 1024 * 1024;
        let n = self.0;
        if n >= GIB {
            write!(f, "{:.2}GiB", n as f64 / GIB as f64)
        } else if n >= MIB {
            write!(f, "{:.2}MiB", n as f64 / MIB as f64)
        } else if n >= KIB {
            write!(f, "{:.2}KiB", n as f64 / KIB as f64)
        } else {
            write!(f, "{n}B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units() {
        assert_eq!(ByteSize::kib(1).as_u64(), 1024);
        assert_eq!(ByteSize::mib(1).as_u64(), 1024 * 1024);
        assert_eq!(ByteSize::gib(1).as_u64(), 1 << 30);
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::mib(3);
        let b = ByteSize::mib(1);
        assert_eq!(a + b, ByteSize::mib(4));
        assert_eq!(a - b, ByteSize::mib(2));
        assert_eq!(b * 5, ByteSize::mib(5));
        let total: ByteSize = [a, b].into_iter().sum();
        assert_eq!(total, ByteSize::mib(4));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteSize::bytes(12).to_string(), "12B");
        assert_eq!(ByteSize::kib(2).to_string(), "2.00KiB");
        assert_eq!(ByteSize::mib(32).to_string(), "32.00MiB");
        assert_eq!(ByteSize::gib(4).to_string(), "4.00GiB");
    }

    #[test]
    fn as_mib_reports_fraction() {
        assert!((ByteSize::kib(512).as_mib_f64() - 0.5).abs() < 1e-12);
    }
}
