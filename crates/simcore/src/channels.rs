//! Resource-channel scheduler for overlapped execution.
//!
//! The sequential checkpoint path charges every cost to one process
//! clock, so PCIe transfers and disk writes *sum* even though they use
//! independent hardware. This module models each independent resource —
//! a PCIe link per device, the local disk, the NFS mount, the IPC pipe —
//! as a named **channel** with its own availability timeline. Work
//! placed on distinct channels overlaps (the makespan is the `max` of
//! their busy ends), while work on the same channel serializes by
//! construction: a placement never starts before the channel's previous
//! placement ended.
//!
//! The scheduler is purely virtual-time bookkeeping: callers compute
//! each operation's cost with the usual link models, then `place` it.
//! With telemetry attached, every placement is emitted as a span on a
//! dedicated per-channel track so Perfetto traces show the overlap.
//!
//! Names are interned: the set holds one shared allocation per unique
//! channel name, and lookups by `&str` never allocate. Background
//! placements fill idle gaps via a per-channel gap list maintained
//! incrementally, so no placement ever scans history. The per-placement
//! log exists for tests and trace tooling and can be switched off
//! ([`ChannelSet::without_log`]) for fleet-scale runs where holding
//! O(total-placements) memory is unacceptable.

use crate::telemetry::{self, Track};
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Identifier of one registered channel within a [`ChannelSet`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChannelId(usize);

/// One scheduled occupancy interval, as returned by
/// [`ChannelSet::place`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Placement {
    /// The channel the work ran on.
    pub channel: ChannelId,
    /// When the work actually started (≥ the requested ready time).
    pub start: SimTime,
    /// When the channel becomes free again.
    pub end: SimTime,
}

struct Channel {
    /// Interned name, shared with the `by_name` key (one allocation per
    /// unique name for the lifetime of the set).
    name: Rc<str>,
    free_at: SimTime,
    busy: SimDuration,
    ops: u64,
    /// Idle intervals `[start, end)` strictly before `free_at`, sorted
    /// by start, maintained incrementally: a foreground placement that
    /// starts past the old frontier records the skipped span, and a
    /// background placement carves the earliest fitting gap.
    gaps: Vec<(SimTime, SimTime)>,
    /// Degradation (brownout) windows `[from, until) → percent`: while
    /// a placement *starts* inside a window the channel runs at
    /// `percent`% of its normal bandwidth, so the placed cost inflates
    /// by `100/percent`. Empty for healthy channels — the common case
    /// pays one `is_empty` check.
    degradations: Vec<(SimTime, SimTime, u32)>,
}

impl Channel {
    /// Cost of `cost` units of work starting at `at`, inflated by any
    /// active degradation window. Integer nanosecond math so degraded
    /// schedules replay bit-exactly.
    fn scaled(&self, at: SimTime, cost: SimDuration) -> SimDuration {
        if self.degradations.is_empty() {
            return cost;
        }
        for &(from, until, percent) in &self.degradations {
            if at >= from && at < until {
                return SimDuration::from_nanos(cost.as_nanos() * 100 / percent as u64);
            }
        }
        cost
    }
}

/// Per-channel accounting snapshot (the "per-channel busy time" half of
/// the Fig. 5 breakdown).
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelStats {
    /// Channel name as registered.
    pub name: String,
    /// Sum of all placed costs.
    pub busy: SimDuration,
    /// Number of placements.
    pub ops: u64,
    /// End of the channel's last placement.
    pub free_at: SimTime,
}

/// A set of named resource channels sharing one scheduling origin.
pub struct ChannelSet {
    origin: SimTime,
    channels: Vec<Channel>,
    by_name: BTreeMap<Rc<str>, usize>,
    /// Base telemetry track; channel `i` emits on `tid = base.tid + i`.
    track: Option<Track>,
    /// Placement history; `None` when logging is switched off.
    log: Option<Vec<Placement>>,
}

impl ChannelSet {
    /// New empty set; `origin` is the virtual time scheduling starts
    /// from (all channels begin free at `origin`). The placement log is
    /// on by default; long-lived sets should opt out with
    /// [`without_log`](Self::without_log).
    pub fn new(origin: SimTime) -> Self {
        ChannelSet {
            origin,
            channels: Vec::new(),
            by_name: BTreeMap::new(),
            track: None,
            log: Some(Vec::new()),
        }
    }

    /// Switch off the per-placement history log. Accounting
    /// (`busy`/`ops`/`free_at`/gap-filling) is unaffected;
    /// [`placements`](Self::placements) returns an empty slice. Use
    /// this for long-lived sets (fleet node timelines, repeated
    /// checkpoint generations) where an unbounded `Vec<Placement>`
    /// would hold O(total-placements) memory for no reader.
    pub fn without_log(mut self) -> Self {
        self.log = None;
        self
    }

    /// Whether the per-placement history log is being kept.
    pub fn log_enabled(&self) -> bool {
        self.log.is_some()
    }

    /// Attach telemetry: placements on channel `i` are emitted as spans
    /// on `Track { pid, tid: base_tid + i }`, and each channel names its
    /// thread so the trace viewer shows one swimlane per channel.
    pub fn with_telemetry(mut self, pid: u64, base_tid: u64) -> Self {
        self.track = Some(Track { pid, tid: base_tid });
        self
    }

    /// Get or create the channel named `name`. A hit never allocates;
    /// a miss interns the name once (shared between the lookup map and
    /// the channel record).
    pub fn channel(&mut self, name: &str) -> ChannelId {
        if let Some(&idx) = self.by_name.get(name) {
            return ChannelId(idx);
        }
        let idx = self.channels.len();
        let interned: Rc<str> = Rc::from(name);
        self.channels.push(Channel {
            name: Rc::clone(&interned),
            free_at: self.origin,
            busy: SimDuration::ZERO,
            ops: 0,
            gaps: Vec::new(),
            degradations: Vec::new(),
        });
        self.by_name.insert(interned, idx);
        if let Some(base) = self.track {
            if telemetry::enabled() {
                telemetry::name_thread(base.pid, base.tid + idx as u64, &format!("chan:{name}"));
            }
        }
        ChannelId(idx)
    }

    /// Look up a channel by name without creating it (never allocates).
    pub fn lookup(&self, name: &str) -> Option<ChannelId> {
        self.by_name.get(name).copied().map(ChannelId)
    }

    /// Degrade `ch` to `percent`% of its normal bandwidth while a
    /// placement starts inside `[from, until)` — a brownout, the gray
    /// sibling of an outage: the channel keeps serving, just slower.
    /// `percent` must be in `1..=100`; 100 is a no-op window.
    pub fn degrade(&mut self, ch: ChannelId, from: SimTime, until: SimTime, percent: u32) {
        assert!(
            (1..=100).contains(&percent),
            "degradation percent must be in 1..=100, got {percent}"
        );
        self.channels[ch.0]
            .degradations
            .push((from, until, percent));
    }

    /// Schedule `cost` units of work on `ch`, not starting before
    /// `ready`. Same-channel work serializes (start = max(ready,
    /// channel free time)); distinct channels are independent.
    pub fn place(
        &mut self,
        ch: ChannelId,
        ready: SimTime,
        cost: SimDuration,
        label: &str,
    ) -> Placement {
        let chan = &mut self.channels[ch.0];
        let start = ready.max(chan.free_at);
        if start > chan.free_at {
            // The skipped span stays claimable by background work.
            chan.gaps.push((chan.free_at, start));
        }
        let cost = chan.scaled(start, cost);
        let end = start + cost;
        chan.free_at = end;
        chan.busy += cost;
        chan.ops += 1;
        let placement = Placement {
            channel: ch,
            start,
            end,
        };
        self.record(placement, cost, label);
        placement
    }

    /// Schedule `cost` units of *background* work on `ch`: instead of
    /// queueing behind everything already placed, the work slides into
    /// the earliest idle gap (at or after `ready`) wide enough to hold
    /// it, and only falls back to the tail when no gap fits. Foreground
    /// placements keep their reserved intervals — a background drain
    /// competes for the channel's idle time rather than monopolizing
    /// the resource.
    pub fn place_background(
        &mut self,
        ch: ChannelId,
        ready: SimTime,
        cost: SimDuration,
        label: &str,
    ) -> Placement {
        let ready = ready.max(self.origin);
        let chan = &mut self.channels[ch.0];
        // Each gap candidate is tried at its own (possibly degraded)
        // cost: a brownout can make a gap too small that was wide
        // enough at full bandwidth.
        let mut chosen: Option<(usize, SimTime, SimDuration)> = None;
        for (i, &(gs, ge)) in chan.gaps.iter().enumerate() {
            let s = gs.max(ready);
            let c = chan.scaled(s, cost);
            if s + c <= ge {
                chosen = Some((i, s, c));
                break;
            }
        }
        let (start, end, cost) = match chosen {
            Some((i, s, c)) => {
                let (gs, ge) = chan.gaps[i];
                let e = s + c;
                // Carve: replace the gap with its (possibly empty)
                // remainders on either side of the placement.
                let mut rest = Vec::with_capacity(2);
                if s > gs {
                    rest.push((gs, s));
                }
                if e < ge {
                    rest.push((e, ge));
                }
                chan.gaps.splice(i..=i, rest);
                (s, e, c)
            }
            None => {
                let s = ready.max(chan.free_at);
                if s > chan.free_at {
                    chan.gaps.push((chan.free_at, s));
                }
                let c = chan.scaled(s, cost);
                let e = s + c;
                chan.free_at = chan.free_at.max(e);
                (s, e, c)
            }
        };
        chan.busy += cost;
        chan.ops += 1;
        let placement = Placement {
            channel: ch,
            start,
            end,
        };
        self.record(placement, cost, label);
        placement
    }

    fn record(&mut self, placement: Placement, cost: SimDuration, label: &str) {
        if let Some(log) = self.log.as_mut() {
            log.push(placement);
        }
        if let Some(base) = self.track {
            if telemetry::enabled() {
                let t = Track {
                    pid: base.pid,
                    tid: base.tid + placement.channel.0 as u64,
                };
                let _scope = telemetry::track_scope(t);
                telemetry::span_begin("channel", label, placement.start, Vec::new());
                telemetry::span_end(
                    "channel",
                    label,
                    placement.end,
                    vec![("cost_ns", cost.into())],
                );
            }
        }
    }

    /// When `ch` next becomes free.
    pub fn free_at(&self, ch: ChannelId) -> SimTime {
        self.channels[ch.0].free_at
    }

    /// Total busy time accumulated on `ch`.
    pub fn busy(&self, ch: ChannelId) -> SimDuration {
        self.channels[ch.0].busy
    }

    /// End of the latest placement across all channels (= the origin if
    /// nothing was placed). This is the overlapped wall-clock frontier.
    /// Channels that were registered but never placed on do not count:
    /// their `free_at` is a default, not an observation.
    pub fn makespan(&self) -> SimTime {
        self.channels
            .iter()
            .filter(|c| c.ops > 0)
            .map(|c| c.free_at)
            .max()
            .unwrap_or(self.origin)
    }

    /// Sum of every placed cost — what a strictly sequential execution
    /// of the same operations would pay. Saturating: a degenerate set
    /// of near-`u64::MAX` placements clamps instead of wrapping.
    pub fn total_busy(&self) -> SimDuration {
        self.channels
            .iter()
            .filter(|c| c.ops > 0)
            .map(|c| c.busy)
            .fold(SimDuration::ZERO, |a, b| a.saturating_add(b))
    }

    /// How much wall-clock the overlap saved versus running every
    /// placement back-to-back: `total_busy − (makespan − origin)`.
    /// Zero when nothing overlapped (e.g. a single channel).
    pub fn overlap_saved(&self) -> SimDuration {
        self.total_busy()
            .saturating_sub(self.makespan().since(self.origin))
    }

    /// Scheduling origin.
    pub fn origin(&self) -> SimTime {
        self.origin
    }

    /// Per-channel accounting, in channel registration order. Channels
    /// that were registered but never placed on are omitted: an unused
    /// swimlane is not an observation.
    pub fn stats(&self) -> Vec<ChannelStats> {
        self.channels
            .iter()
            .filter(|c| c.ops > 0)
            .map(|c| ChannelStats {
                name: c.name.to_string(),
                busy: c.busy,
                ops: c.ops,
                free_at: c.free_at,
            })
            .collect()
    }

    /// Every placement made so far, in placement order (empty when the
    /// log was switched off with [`without_log`](Self::without_log)).
    /// Exposed so property tests can assert the no-same-channel-overlap
    /// invariant.
    pub fn placements(&self) -> &[Placement] {
        self.log.as_deref().unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    fn d(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }

    #[test]
    fn distinct_channels_overlap() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("pcie.dev0");
        let b = set.channel("disk");
        set.place(a, t(0), d(100), "copy");
        set.place(b, t(0), d(80), "write");
        // max, not sum.
        assert_eq!(set.makespan(), t(100));
        assert_eq!(set.total_busy(), d(180));
        assert_eq!(set.overlap_saved(), d(80));
    }

    #[test]
    fn same_channel_serializes() {
        let mut set = ChannelSet::new(t(10));
        let a = set.channel("disk");
        let p1 = set.place(a, t(0), d(50), "w1");
        // Ready before the channel frees: pushed back to free_at.
        let p2 = set.place(a, t(20), d(30), "w2");
        assert_eq!(p1.start, t(10)); // never before the origin
        assert_eq!(p1.end, t(60));
        assert_eq!(p2.start, t(60));
        assert_eq!(p2.end, t(90));
        assert_eq!(set.makespan(), t(90));
        assert_eq!(set.overlap_saved(), SimDuration::ZERO);
    }

    #[test]
    fn channel_lookup_is_stable() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("ipc");
        let b = set.channel("nfs");
        assert_eq!(set.channel("ipc"), a);
        assert_eq!(set.channel("nfs"), b);
        assert_ne!(a, b);
        assert_eq!(set.lookup("ipc"), Some(a));
        assert_eq!(set.lookup("never-registered"), None);
    }

    #[test]
    fn idle_gap_counts_toward_wall_not_busy() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("pcie.dev0");
        set.place(a, t(100), d(10), "late");
        assert_eq!(set.makespan(), t(110));
        assert_eq!(set.busy(a), d(10));
        // The 100ns idle gap is wall-clock but not busy time, so no
        // negative "savings".
        assert_eq!(set.overlap_saved(), SimDuration::ZERO);
    }

    #[test]
    fn stats_and_log_report_every_placement() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("pcie.dev0");
        let b = set.channel("disk");
        set.place(a, t(0), d(5), "x");
        set.place(b, t(0), d(7), "y");
        set.place(a, t(0), d(5), "z");
        let stats = set.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "pcie.dev0");
        assert_eq!(stats[0].ops, 2);
        assert_eq!(stats[0].busy, d(10));
        assert_eq!(stats[1].ops, 1);
        assert_eq!(set.placements().len(), 3);
    }

    #[test]
    fn without_log_keeps_accounting_but_drops_history() {
        let mut set = ChannelSet::new(t(0)).without_log();
        assert!(!set.log_enabled());
        let a = set.channel("disk");
        set.place(a, t(0), d(50), "fg1");
        set.place(a, t(100), d(50), "fg2");
        // Gap-filling still works without the log: the gap list is
        // maintained independently.
        let bg = set.place_background(a, t(10), d(40), "drain");
        assert_eq!(bg.start, t(50));
        assert_eq!(bg.end, t(90));
        assert_eq!(set.busy(a), d(140));
        assert_eq!(set.stats()[0].ops, 3);
        assert!(set.placements().is_empty());
    }

    #[test]
    fn unused_channels_do_not_distort_accounting() {
        // A channel registered after the origin moved forward used to
        // drag the makespan (and thus overlap_saved) around without a
        // single placement on it.
        let mut set = ChannelSet::new(t(50));
        let a = set.channel("disk");
        let _idle = set.channel("cpu.compress"); // registered, never used
        set.place(a, t(50), d(30), "w");
        assert_eq!(set.makespan(), t(80));
        assert_eq!(set.total_busy(), d(30));
        assert_eq!(set.overlap_saved(), SimDuration::ZERO);
        // Unused swimlanes don't show up in the stats report either.
        assert_eq!(set.stats().len(), 1);
        assert_eq!(set.stats()[0].name, "disk");
    }

    #[test]
    fn empty_set_with_registered_channels_is_all_zero() {
        let mut set = ChannelSet::new(t(1000));
        set.channel("a");
        set.channel("b");
        assert_eq!(set.makespan(), t(1000));
        assert_eq!(set.total_busy(), SimDuration::ZERO);
        assert_eq!(set.overlap_saved(), SimDuration::ZERO);
        assert!(set.stats().is_empty());
    }

    #[test]
    fn zero_duration_placements_are_safe() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("ipc");
        let p = set.place(a, t(0), d(0), "nop");
        assert_eq!(p.start, p.end);
        assert_eq!(set.total_busy(), SimDuration::ZERO);
        assert_eq!(set.overlap_saved(), SimDuration::ZERO);
        assert_eq!(set.stats()[0].ops, 1);
    }

    #[test]
    fn background_placements_fill_gaps_before_queueing() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("disk");
        set.place(a, t(0), d(50), "fg1");
        set.place(a, t(100), d(50), "fg2"); // idle gap [50, 100)
                                            // Fits the gap: starts at 50, not behind fg2.
        let bg = set.place_background(a, t(10), d(40), "drain");
        assert_eq!(bg.start, t(50));
        assert_eq!(bg.end, t(90));
        // Too wide for any gap: queues at the tail.
        let bg2 = set.place_background(a, t(10), d(60), "drain");
        assert_eq!(bg2.start, t(150));
        assert_eq!(set.free_at(a), t(210));
        // A gap placement never intersects a foreground interval.
        let ps = set.placements();
        for (i, p) in ps.iter().enumerate() {
            for q in &ps[i + 1..] {
                if p.channel == q.channel {
                    assert!(q.start >= p.end || p.start >= q.end, "intervals intersect");
                }
            }
        }
        // busy counts the background work too.
        assert_eq!(set.busy(a), d(200));
    }

    #[test]
    fn background_respects_ready_and_origin() {
        let mut set = ChannelSet::new(t(20));
        let a = set.channel("nfs");
        let p = set.place_background(a, t(0), d(10), "drain");
        assert_eq!(p.start, t(20)); // never before the origin
        let q = set.place_background(a, t(100), d(10), "drain");
        assert_eq!(q.start, t(100)); // never before ready

        // The idle span [30, 100) the tail fallback skipped is
        // claimable by later background work.
        let r = set.place_background(a, t(0), d(70), "drain");
        assert_eq!(r.start, t(30));
        assert_eq!(r.end, t(100));
    }

    #[test]
    fn degradation_windows_inflate_cost_deterministically() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("ckpt.disk");
        set.degrade(a, t(100), t(200), 25);
        let p1 = set.place(a, t(0), d(40), "w"); // healthy
        assert_eq!(p1.end, t(40));
        let p2 = set.place(a, t(100), d(40), "w"); // browned out: 4x
        assert_eq!(p2.start, t(100));
        assert_eq!(p2.end, t(260));
        let p3 = set.place(a, t(260), d(40), "w"); // window passed
        assert_eq!(p3.end, t(300));
        assert_eq!(set.busy(a), d(240));
        // Background work pays the brownout too: the [40, 100) gap is
        // healthy, but a start inside the window would inflate.
        let bg = set.place_background(a, t(0), d(60), "drain");
        assert_eq!(bg.start, t(40));
        assert_eq!(bg.end, t(100));
    }

    #[test]
    fn qcheck_accounting_invariants() {
        use crate::qcheck::qcheck;
        qcheck("channelset_accounting_invariants", 128, |g| {
            let origin = t(g.range(0, 1_000));
            let mut set = ChannelSet::new(origin);
            let names = ["pcie.dev0", "pcie.dev1", "disk", "ipc", "cpu.compress"];
            // Register every channel up front; only a random subset is
            // ever placed on.
            let ids: Vec<ChannelId> = names.iter().map(|n| set.channel(n)).collect();
            let used = g.usize_in(0, names.len());
            for _ in 0..g.usize_in(0, 24) {
                if used == 0 {
                    break;
                }
                let ch = ids[g.usize_in(0, used)];
                let ready = t(g.range(0, 2_000));
                // Zero-duration placements are explicitly in range.
                let cost = d(g.range(0, 500));
                let p = set.place(ch, ready, cost, "op");
                assert!(p.start >= origin.max(ready));
                assert_eq!(p.end, p.start + cost);
            }
            // overlap_saved never exceeds total_busy, and both are
            // finite/no-panic even with unused registered channels.
            assert!(set.overlap_saved() <= set.total_busy());
            // The makespan never precedes the origin.
            assert!(set.makespan() >= origin);
            let wall = set.makespan().since(origin);
            assert_eq!(set.overlap_saved(), set.total_busy().saturating_sub(wall));
            // stats() covers exactly the channels with placements, and
            // busy sums match total_busy.
            let stats = set.stats();
            assert!(stats.iter().all(|s| s.ops > 0));
            let stat_total = stats
                .iter()
                .map(|s| s.busy)
                .fold(SimDuration::ZERO, |a, b| a + b);
            assert_eq!(stat_total, set.total_busy());
            // No same-channel overlap: placements on one channel never
            // intersect.
            for (i, p) in set.placements().iter().enumerate() {
                for q in &set.placements()[i + 1..] {
                    if p.channel == q.channel {
                        assert!(q.start >= p.end, "same-channel placements overlap");
                    }
                }
            }
        });
    }

    #[test]
    fn qcheck_background_gap_list_matches_history_scan() {
        use crate::qcheck::qcheck;
        // The incremental gap list must pick the exact same slot the
        // old O(history) scan over the placement log would have picked.
        qcheck("background_gap_list_matches_history_scan", 128, |g| {
            let origin = t(g.range(0, 100));
            let mut set = ChannelSet::new(origin);
            let ch = set.channel("disk");
            // Reference model: the full interval list, scanned per op.
            let mut intervals: Vec<(SimTime, SimTime)> = Vec::new();
            for _ in 0..g.usize_in(1, 32) {
                let ready = t(g.range(0, 3_000));
                let cost = d(g.range(1, 400));
                let p = if g.bool() {
                    set.place(ch, ready, cost, "fg")
                } else {
                    // Old algorithm: earliest start ≥ max(ready, origin)
                    // such that [start, start+cost) clears every
                    // interval, scanning in sorted order.
                    let mut sorted = intervals.clone();
                    sorted.sort();
                    let mut start = ready.max(origin);
                    for (s, e) in sorted {
                        if start + cost <= s {
                            break;
                        }
                        start = start.max(e);
                    }
                    let p = set.place_background(ch, ready, cost, "bg");
                    assert_eq!(p.start, start, "gap list diverged from history scan");
                    p
                };
                intervals.push((p.start, p.end));
            }
            // Disjointness holds across the mixed sequence.
            let mut sorted = intervals.clone();
            sorted.sort();
            for w in sorted.windows(2) {
                assert!(w[0].1 <= w[1].0, "placements intersect");
            }
        });
    }
}
