//! Resource-channel scheduler for overlapped execution.
//!
//! The sequential checkpoint path charges every cost to one process
//! clock, so PCIe transfers and disk writes *sum* even though they use
//! independent hardware. This module models each independent resource —
//! a PCIe link per device, the local disk, the NFS mount, the IPC pipe —
//! as a named **channel** with its own availability timeline. Work
//! placed on distinct channels overlaps (the makespan is the `max` of
//! their busy ends), while work on the same channel serializes by
//! construction: a placement never starts before the channel's previous
//! placement ended.
//!
//! The scheduler is purely virtual-time bookkeeping: callers compute
//! each operation's cost with the usual link models, then `place` it.
//! With telemetry attached, every placement is emitted as a span on a
//! dedicated per-channel track so Perfetto traces show the overlap.

use crate::telemetry::{self, Track};
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Identifier of one registered channel within a [`ChannelSet`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChannelId(usize);

/// One scheduled occupancy interval, as returned by
/// [`ChannelSet::place`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Placement {
    /// The channel the work ran on.
    pub channel: ChannelId,
    /// When the work actually started (≥ the requested ready time).
    pub start: SimTime,
    /// When the channel becomes free again.
    pub end: SimTime,
}

struct Channel {
    name: String,
    free_at: SimTime,
    busy: SimDuration,
    ops: u64,
}

/// Per-channel accounting snapshot (the "per-channel busy time" half of
/// the Fig. 5 breakdown).
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelStats {
    /// Channel name as registered.
    pub name: String,
    /// Sum of all placed costs.
    pub busy: SimDuration,
    /// Number of placements.
    pub ops: u64,
    /// End of the channel's last placement.
    pub free_at: SimTime,
}

/// A set of named resource channels sharing one scheduling origin.
pub struct ChannelSet {
    origin: SimTime,
    channels: Vec<Channel>,
    by_name: BTreeMap<String, usize>,
    /// Base telemetry track; channel `i` emits on `tid = base.tid + i`.
    track: Option<Track>,
    log: Vec<Placement>,
}

impl ChannelSet {
    /// New empty set; `origin` is the virtual time scheduling starts
    /// from (all channels begin free at `origin`).
    pub fn new(origin: SimTime) -> Self {
        ChannelSet {
            origin,
            channels: Vec::new(),
            by_name: BTreeMap::new(),
            track: None,
            log: Vec::new(),
        }
    }

    /// Attach telemetry: placements on channel `i` are emitted as spans
    /// on `Track { pid, tid: base_tid + i }`, and each channel names its
    /// thread so the trace viewer shows one swimlane per channel.
    pub fn with_telemetry(mut self, pid: u64, base_tid: u64) -> Self {
        self.track = Some(Track { pid, tid: base_tid });
        self
    }

    /// Get or create the channel named `name`.
    pub fn channel(&mut self, name: &str) -> ChannelId {
        if let Some(&idx) = self.by_name.get(name) {
            return ChannelId(idx);
        }
        let idx = self.channels.len();
        self.channels.push(Channel {
            name: name.to_string(),
            free_at: self.origin,
            busy: SimDuration::ZERO,
            ops: 0,
        });
        self.by_name.insert(name.to_string(), idx);
        if let Some(base) = self.track {
            if telemetry::enabled() {
                telemetry::name_thread(base.pid, base.tid + idx as u64, &format!("chan:{name}"));
            }
        }
        ChannelId(idx)
    }

    /// Schedule `cost` units of work on `ch`, not starting before
    /// `ready`. Same-channel work serializes (start = max(ready,
    /// channel free time)); distinct channels are independent.
    pub fn place(
        &mut self,
        ch: ChannelId,
        ready: SimTime,
        cost: SimDuration,
        label: &str,
    ) -> Placement {
        let chan = &mut self.channels[ch.0];
        let start = ready.max(chan.free_at);
        let end = start + cost;
        chan.free_at = end;
        chan.busy += cost;
        chan.ops += 1;
        let placement = Placement {
            channel: ch,
            start,
            end,
        };
        self.log.push(placement);
        if let Some(base) = self.track {
            if telemetry::enabled() {
                let t = Track {
                    pid: base.pid,
                    tid: base.tid + ch.0 as u64,
                };
                let _scope = telemetry::track_scope(t);
                telemetry::span_begin("channel", label, start, Vec::new());
                telemetry::span_end("channel", label, end, vec![("cost_ns", cost.into())]);
            }
        }
        placement
    }

    /// When `ch` next becomes free.
    pub fn free_at(&self, ch: ChannelId) -> SimTime {
        self.channels[ch.0].free_at
    }

    /// Total busy time accumulated on `ch`.
    pub fn busy(&self, ch: ChannelId) -> SimDuration {
        self.channels[ch.0].busy
    }

    /// End of the latest placement across all channels (= the origin if
    /// nothing was placed). This is the overlapped wall-clock frontier.
    pub fn makespan(&self) -> SimTime {
        self.channels
            .iter()
            .map(|c| c.free_at)
            .max()
            .unwrap_or(self.origin)
    }

    /// Sum of every placed cost — what a strictly sequential execution
    /// of the same operations would pay.
    pub fn total_busy(&self) -> SimDuration {
        self.channels
            .iter()
            .map(|c| c.busy)
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// How much wall-clock the overlap saved versus running every
    /// placement back-to-back: `total_busy − (makespan − origin)`.
    /// Zero when nothing overlapped (e.g. a single channel).
    pub fn overlap_saved(&self) -> SimDuration {
        let wall = self.makespan().since(self.origin);
        let total = self.total_busy();
        if total > wall {
            total - wall
        } else {
            SimDuration::ZERO
        }
    }

    /// Scheduling origin.
    pub fn origin(&self) -> SimTime {
        self.origin
    }

    /// Per-channel accounting, in channel registration order.
    pub fn stats(&self) -> Vec<ChannelStats> {
        self.channels
            .iter()
            .map(|c| ChannelStats {
                name: c.name.clone(),
                busy: c.busy,
                ops: c.ops,
                free_at: c.free_at,
            })
            .collect()
    }

    /// Every placement made so far, in placement order. Exposed so
    /// property tests can assert the no-same-channel-overlap invariant.
    pub fn placements(&self) -> &[Placement] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    fn d(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }

    #[test]
    fn distinct_channels_overlap() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("pcie.dev0");
        let b = set.channel("disk");
        set.place(a, t(0), d(100), "copy");
        set.place(b, t(0), d(80), "write");
        // max, not sum.
        assert_eq!(set.makespan(), t(100));
        assert_eq!(set.total_busy(), d(180));
        assert_eq!(set.overlap_saved(), d(80));
    }

    #[test]
    fn same_channel_serializes() {
        let mut set = ChannelSet::new(t(10));
        let a = set.channel("disk");
        let p1 = set.place(a, t(0), d(50), "w1");
        // Ready before the channel frees: pushed back to free_at.
        let p2 = set.place(a, t(20), d(30), "w2");
        assert_eq!(p1.start, t(10)); // never before the origin
        assert_eq!(p1.end, t(60));
        assert_eq!(p2.start, t(60));
        assert_eq!(p2.end, t(90));
        assert_eq!(set.makespan(), t(90));
        assert_eq!(set.overlap_saved(), SimDuration::ZERO);
    }

    #[test]
    fn channel_lookup_is_stable() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("ipc");
        let b = set.channel("nfs");
        assert_eq!(set.channel("ipc"), a);
        assert_eq!(set.channel("nfs"), b);
        assert_ne!(a, b);
    }

    #[test]
    fn idle_gap_counts_toward_wall_not_busy() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("pcie.dev0");
        set.place(a, t(100), d(10), "late");
        assert_eq!(set.makespan(), t(110));
        assert_eq!(set.busy(a), d(10));
        // The 100ns idle gap is wall-clock but not busy time, so no
        // negative "savings".
        assert_eq!(set.overlap_saved(), SimDuration::ZERO);
    }

    #[test]
    fn stats_and_log_report_every_placement() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("pcie.dev0");
        let b = set.channel("disk");
        set.place(a, t(0), d(5), "x");
        set.place(b, t(0), d(7), "y");
        set.place(a, t(0), d(5), "z");
        let stats = set.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "pcie.dev0");
        assert_eq!(stats[0].ops, 2);
        assert_eq!(stats[0].busy, d(10));
        assert_eq!(stats[1].ops, 1);
        assert_eq!(set.placements().len(), 3);
    }
}
