//! Resource-channel scheduler for overlapped execution.
//!
//! The sequential checkpoint path charges every cost to one process
//! clock, so PCIe transfers and disk writes *sum* even though they use
//! independent hardware. This module models each independent resource —
//! a PCIe link per device, the local disk, the NFS mount, the IPC pipe —
//! as a named **channel** with its own availability timeline. Work
//! placed on distinct channels overlaps (the makespan is the `max` of
//! their busy ends), while work on the same channel serializes by
//! construction: a placement never starts before the channel's previous
//! placement ended.
//!
//! The scheduler is purely virtual-time bookkeeping: callers compute
//! each operation's cost with the usual link models, then `place` it.
//! With telemetry attached, every placement is emitted as a span on a
//! dedicated per-channel track so Perfetto traces show the overlap.

use crate::telemetry::{self, Track};
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Identifier of one registered channel within a [`ChannelSet`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChannelId(usize);

/// One scheduled occupancy interval, as returned by
/// [`ChannelSet::place`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Placement {
    /// The channel the work ran on.
    pub channel: ChannelId,
    /// When the work actually started (≥ the requested ready time).
    pub start: SimTime,
    /// When the channel becomes free again.
    pub end: SimTime,
}

struct Channel {
    name: String,
    free_at: SimTime,
    busy: SimDuration,
    ops: u64,
}

/// Per-channel accounting snapshot (the "per-channel busy time" half of
/// the Fig. 5 breakdown).
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelStats {
    /// Channel name as registered.
    pub name: String,
    /// Sum of all placed costs.
    pub busy: SimDuration,
    /// Number of placements.
    pub ops: u64,
    /// End of the channel's last placement.
    pub free_at: SimTime,
}

/// A set of named resource channels sharing one scheduling origin.
pub struct ChannelSet {
    origin: SimTime,
    channels: Vec<Channel>,
    by_name: BTreeMap<String, usize>,
    /// Base telemetry track; channel `i` emits on `tid = base.tid + i`.
    track: Option<Track>,
    log: Vec<Placement>,
}

impl ChannelSet {
    /// New empty set; `origin` is the virtual time scheduling starts
    /// from (all channels begin free at `origin`).
    pub fn new(origin: SimTime) -> Self {
        ChannelSet {
            origin,
            channels: Vec::new(),
            by_name: BTreeMap::new(),
            track: None,
            log: Vec::new(),
        }
    }

    /// Attach telemetry: placements on channel `i` are emitted as spans
    /// on `Track { pid, tid: base_tid + i }`, and each channel names its
    /// thread so the trace viewer shows one swimlane per channel.
    pub fn with_telemetry(mut self, pid: u64, base_tid: u64) -> Self {
        self.track = Some(Track { pid, tid: base_tid });
        self
    }

    /// Get or create the channel named `name`.
    pub fn channel(&mut self, name: &str) -> ChannelId {
        if let Some(&idx) = self.by_name.get(name) {
            return ChannelId(idx);
        }
        let idx = self.channels.len();
        self.channels.push(Channel {
            name: name.to_string(),
            free_at: self.origin,
            busy: SimDuration::ZERO,
            ops: 0,
        });
        self.by_name.insert(name.to_string(), idx);
        if let Some(base) = self.track {
            if telemetry::enabled() {
                telemetry::name_thread(base.pid, base.tid + idx as u64, &format!("chan:{name}"));
            }
        }
        ChannelId(idx)
    }

    /// Schedule `cost` units of work on `ch`, not starting before
    /// `ready`. Same-channel work serializes (start = max(ready,
    /// channel free time)); distinct channels are independent.
    pub fn place(
        &mut self,
        ch: ChannelId,
        ready: SimTime,
        cost: SimDuration,
        label: &str,
    ) -> Placement {
        let chan = &mut self.channels[ch.0];
        let start = ready.max(chan.free_at);
        let end = start + cost;
        chan.free_at = end;
        chan.busy += cost;
        chan.ops += 1;
        let placement = Placement {
            channel: ch,
            start,
            end,
        };
        self.log.push(placement);
        if let Some(base) = self.track {
            if telemetry::enabled() {
                let t = Track {
                    pid: base.pid,
                    tid: base.tid + ch.0 as u64,
                };
                let _scope = telemetry::track_scope(t);
                telemetry::span_begin("channel", label, start, Vec::new());
                telemetry::span_end("channel", label, end, vec![("cost_ns", cost.into())]);
            }
        }
        placement
    }

    /// Schedule `cost` units of *background* work on `ch`: instead of
    /// queueing behind everything already placed, the work slides into
    /// the earliest idle gap (at or after `ready`) wide enough to hold
    /// it, and only falls back to the tail when no gap fits. Foreground
    /// placements keep their reserved intervals — a background drain
    /// competes for the channel's idle time rather than monopolizing
    /// the resource.
    pub fn place_background(
        &mut self,
        ch: ChannelId,
        ready: SimTime,
        cost: SimDuration,
        label: &str,
    ) -> Placement {
        let mut intervals: Vec<(SimTime, SimTime)> = self
            .log
            .iter()
            .filter(|p| p.channel == ch)
            .map(|p| (p.start, p.end))
            .collect();
        intervals.sort();
        let mut start = ready.max(self.origin);
        for (s, e) in intervals {
            if start + cost <= s {
                break; // fits in the gap before this interval
            }
            start = start.max(e);
        }
        let end = start + cost;
        let chan = &mut self.channels[ch.0];
        chan.free_at = chan.free_at.max(end);
        chan.busy += cost;
        chan.ops += 1;
        let placement = Placement {
            channel: ch,
            start,
            end,
        };
        self.log.push(placement);
        if let Some(base) = self.track {
            if telemetry::enabled() {
                let t = Track {
                    pid: base.pid,
                    tid: base.tid + ch.0 as u64,
                };
                let _scope = telemetry::track_scope(t);
                telemetry::span_begin("channel", label, start, Vec::new());
                telemetry::span_end("channel", label, end, vec![("cost_ns", cost.into())]);
            }
        }
        placement
    }

    /// When `ch` next becomes free.
    pub fn free_at(&self, ch: ChannelId) -> SimTime {
        self.channels[ch.0].free_at
    }

    /// Total busy time accumulated on `ch`.
    pub fn busy(&self, ch: ChannelId) -> SimDuration {
        self.channels[ch.0].busy
    }

    /// End of the latest placement across all channels (= the origin if
    /// nothing was placed). This is the overlapped wall-clock frontier.
    /// Channels that were registered but never placed on do not count:
    /// their `free_at` is a default, not an observation.
    pub fn makespan(&self) -> SimTime {
        self.channels
            .iter()
            .filter(|c| c.ops > 0)
            .map(|c| c.free_at)
            .max()
            .unwrap_or(self.origin)
    }

    /// Sum of every placed cost — what a strictly sequential execution
    /// of the same operations would pay. Saturating: a degenerate set
    /// of near-`u64::MAX` placements clamps instead of wrapping.
    pub fn total_busy(&self) -> SimDuration {
        self.channels
            .iter()
            .filter(|c| c.ops > 0)
            .map(|c| c.busy)
            .fold(SimDuration::ZERO, |a, b| a.saturating_add(b))
    }

    /// How much wall-clock the overlap saved versus running every
    /// placement back-to-back: `total_busy − (makespan − origin)`.
    /// Zero when nothing overlapped (e.g. a single channel).
    pub fn overlap_saved(&self) -> SimDuration {
        self.total_busy()
            .saturating_sub(self.makespan().since(self.origin))
    }

    /// Scheduling origin.
    pub fn origin(&self) -> SimTime {
        self.origin
    }

    /// Per-channel accounting, in channel registration order. Channels
    /// that were registered but never placed on are omitted: an unused
    /// swimlane is not an observation.
    pub fn stats(&self) -> Vec<ChannelStats> {
        self.channels
            .iter()
            .filter(|c| c.ops > 0)
            .map(|c| ChannelStats {
                name: c.name.clone(),
                busy: c.busy,
                ops: c.ops,
                free_at: c.free_at,
            })
            .collect()
    }

    /// Every placement made so far, in placement order. Exposed so
    /// property tests can assert the no-same-channel-overlap invariant.
    pub fn placements(&self) -> &[Placement] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    fn d(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }

    #[test]
    fn distinct_channels_overlap() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("pcie.dev0");
        let b = set.channel("disk");
        set.place(a, t(0), d(100), "copy");
        set.place(b, t(0), d(80), "write");
        // max, not sum.
        assert_eq!(set.makespan(), t(100));
        assert_eq!(set.total_busy(), d(180));
        assert_eq!(set.overlap_saved(), d(80));
    }

    #[test]
    fn same_channel_serializes() {
        let mut set = ChannelSet::new(t(10));
        let a = set.channel("disk");
        let p1 = set.place(a, t(0), d(50), "w1");
        // Ready before the channel frees: pushed back to free_at.
        let p2 = set.place(a, t(20), d(30), "w2");
        assert_eq!(p1.start, t(10)); // never before the origin
        assert_eq!(p1.end, t(60));
        assert_eq!(p2.start, t(60));
        assert_eq!(p2.end, t(90));
        assert_eq!(set.makespan(), t(90));
        assert_eq!(set.overlap_saved(), SimDuration::ZERO);
    }

    #[test]
    fn channel_lookup_is_stable() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("ipc");
        let b = set.channel("nfs");
        assert_eq!(set.channel("ipc"), a);
        assert_eq!(set.channel("nfs"), b);
        assert_ne!(a, b);
    }

    #[test]
    fn idle_gap_counts_toward_wall_not_busy() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("pcie.dev0");
        set.place(a, t(100), d(10), "late");
        assert_eq!(set.makespan(), t(110));
        assert_eq!(set.busy(a), d(10));
        // The 100ns idle gap is wall-clock but not busy time, so no
        // negative "savings".
        assert_eq!(set.overlap_saved(), SimDuration::ZERO);
    }

    #[test]
    fn stats_and_log_report_every_placement() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("pcie.dev0");
        let b = set.channel("disk");
        set.place(a, t(0), d(5), "x");
        set.place(b, t(0), d(7), "y");
        set.place(a, t(0), d(5), "z");
        let stats = set.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "pcie.dev0");
        assert_eq!(stats[0].ops, 2);
        assert_eq!(stats[0].busy, d(10));
        assert_eq!(stats[1].ops, 1);
        assert_eq!(set.placements().len(), 3);
    }

    #[test]
    fn unused_channels_do_not_distort_accounting() {
        // A channel registered after the origin moved forward used to
        // drag the makespan (and thus overlap_saved) around without a
        // single placement on it.
        let mut set = ChannelSet::new(t(50));
        let a = set.channel("disk");
        let _idle = set.channel("cpu.compress"); // registered, never used
        set.place(a, t(50), d(30), "w");
        assert_eq!(set.makespan(), t(80));
        assert_eq!(set.total_busy(), d(30));
        assert_eq!(set.overlap_saved(), SimDuration::ZERO);
        // Unused swimlanes don't show up in the stats report either.
        assert_eq!(set.stats().len(), 1);
        assert_eq!(set.stats()[0].name, "disk");
    }

    #[test]
    fn empty_set_with_registered_channels_is_all_zero() {
        let mut set = ChannelSet::new(t(1000));
        set.channel("a");
        set.channel("b");
        assert_eq!(set.makespan(), t(1000));
        assert_eq!(set.total_busy(), SimDuration::ZERO);
        assert_eq!(set.overlap_saved(), SimDuration::ZERO);
        assert!(set.stats().is_empty());
    }

    #[test]
    fn zero_duration_placements_are_safe() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("ipc");
        let p = set.place(a, t(0), d(0), "nop");
        assert_eq!(p.start, p.end);
        assert_eq!(set.total_busy(), SimDuration::ZERO);
        assert_eq!(set.overlap_saved(), SimDuration::ZERO);
        assert_eq!(set.stats()[0].ops, 1);
    }

    #[test]
    fn background_placements_fill_gaps_before_queueing() {
        let mut set = ChannelSet::new(t(0));
        let a = set.channel("disk");
        set.place(a, t(0), d(50), "fg1");
        set.place(a, t(100), d(50), "fg2"); // idle gap [50, 100)
                                            // Fits the gap: starts at 50, not behind fg2.
        let bg = set.place_background(a, t(10), d(40), "drain");
        assert_eq!(bg.start, t(50));
        assert_eq!(bg.end, t(90));
        // Too wide for any gap: queues at the tail.
        let bg2 = set.place_background(a, t(10), d(60), "drain");
        assert_eq!(bg2.start, t(150));
        assert_eq!(set.free_at(a), t(210));
        // A gap placement never intersects a foreground interval.
        let ps = set.placements();
        for (i, p) in ps.iter().enumerate() {
            for q in &ps[i + 1..] {
                if p.channel == q.channel {
                    assert!(q.start >= p.end || p.start >= q.end, "intervals intersect");
                }
            }
        }
        // busy counts the background work too.
        assert_eq!(set.busy(a), d(200));
    }

    #[test]
    fn background_respects_ready_and_origin() {
        let mut set = ChannelSet::new(t(20));
        let a = set.channel("nfs");
        let p = set.place_background(a, t(0), d(10), "drain");
        assert_eq!(p.start, t(20)); // never before the origin
        let q = set.place_background(a, t(100), d(10), "drain");
        assert_eq!(q.start, t(100)); // never before ready
    }

    #[test]
    fn qcheck_accounting_invariants() {
        use crate::qcheck::qcheck;
        qcheck("channelset_accounting_invariants", 128, |g| {
            let origin = t(g.range(0, 1_000));
            let mut set = ChannelSet::new(origin);
            let names = ["pcie.dev0", "pcie.dev1", "disk", "ipc", "cpu.compress"];
            // Register every channel up front; only a random subset is
            // ever placed on.
            let ids: Vec<ChannelId> = names.iter().map(|n| set.channel(n)).collect();
            let used = g.usize_in(0, names.len());
            for _ in 0..g.usize_in(0, 24) {
                if used == 0 {
                    break;
                }
                let ch = ids[g.usize_in(0, used)];
                let ready = t(g.range(0, 2_000));
                // Zero-duration placements are explicitly in range.
                let cost = d(g.range(0, 500));
                let p = set.place(ch, ready, cost, "op");
                assert!(p.start >= origin.max(ready));
                assert_eq!(p.end, p.start + cost);
            }
            // overlap_saved never exceeds total_busy, and both are
            // finite/no-panic even with unused registered channels.
            assert!(set.overlap_saved() <= set.total_busy());
            // The makespan never precedes the origin.
            assert!(set.makespan() >= origin);
            let wall = set.makespan().since(origin);
            assert_eq!(set.overlap_saved(), set.total_busy().saturating_sub(wall));
            // stats() covers exactly the channels with placements, and
            // busy sums match total_busy.
            let stats = set.stats();
            assert!(stats.iter().all(|s| s.ops > 0));
            let stat_total = stats
                .iter()
                .map(|s| s.busy)
                .fold(SimDuration::ZERO, |a, b| a + b);
            assert_eq!(stat_total, set.total_busy());
            // No same-channel overlap: placements on one channel never
            // intersect.
            for (i, p) in set.placements().iter().enumerate() {
                for q in &set.placements()[i + 1..] {
                    if p.channel == q.channel {
                        assert!(q.start >= p.end, "same-channel placements overlap");
                    }
                }
            }
        });
    }
}
