//! FNV-1a content checksums.
//!
//! Used to (a) validate checkpoint file integrity and (b) let tests and
//! workloads assert that buffer contents survive checkpoint / restart /
//! migration bit-exactly without storing full golden copies.

/// Streaming 64-bit FNV-1a hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut h = self.0;
        for &b in data {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Absorb a little-endian `u64` (handy for hashing lengths/ids).
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
        assert_ne!(fnv1a64(b"\x00"), fnv1a64(b"\x00\x00"));
    }
}
