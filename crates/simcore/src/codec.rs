//! The checkpoint image byte format.
//!
//! CheCL checkpoints are written by serialising a process image — op
//! script, register file, host heap, and (transparently) the CheCL
//! runtime state living inside the process — into a compact, framed,
//! checksummed binary stream. This module defines that stream format:
//! little-endian fixed-width primitives, `u64` length prefixes, and a
//! `magic | version | payload | fnv64` frame.
//!
//! The format is deliberately hand-rolled rather than pulled from an
//! external serialisation crate: the checkpoint file layout is part of
//! the artifact (it determines the measured file sizes in Fig. 5 and
//! Fig. 8), and its decoder must be robust against truncated or
//! corrupted files.

use crate::checksum::fnv1a64;
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced while decoding a byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before a value was fully read.
    UnexpectedEof {
        /// Bytes needed by the failed read.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// Frame did not start with the expected magic bytes.
    BadMagic,
    /// Frame version not understood by this build.
    BadVersion(u32),
    /// Frame checksum did not match the payload.
    ChecksumMismatch,
    /// A decoded value was structurally invalid.
    Invalid(&'static str),
    /// Decoding finished but bytes were left over.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected EOF: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            CodecError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            CodecError::Invalid(what) => write!(f, "invalid value: {what}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Cursor over an encoded byte stream.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }
}

/// A type that can be written to / read from the checkpoint byte format.
pub trait Codec: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode from a buffer, requiring it to be fully consumed.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(CodecError::TrailingBytes(r.remaining()));
        }
        Ok(v)
    }
}

macro_rules! impl_codec_prim {
    ($($ty:ty),+) => {$(
        impl Codec for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok(<$ty>::from_le_bytes(r.take_array()?))
            }
        }
    )+};
}

impl_codec_prim!(u8, u16, u32, u64, u128, i8, i16, i32, i64, f32, f64);

impl Codec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| CodecError::Invalid("usize out of range"))
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool tag")),
        }
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_bytes(out, self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bytes = decode_bytes(r)?;
        String::from_utf8(bytes).map_err(|_| CodecError::Invalid("utf-8 string"))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(CodecError::Invalid("option tag")),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = u64::decode(r)? as usize;
        // A length prefix can never legitimately exceed the remaining
        // bytes (every element encodes to >= 1 byte), so reject early to
        // avoid huge allocations on corrupted input.
        if len > r.remaining() {
            return Err(CodecError::Invalid("vec length exceeds stream"));
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<K: Codec + Ord, V: Codec> Codec for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = u64::decode(r)? as usize;
        if len > r.remaining() {
            return Err(CodecError::Invalid("map length exceeds stream"));
        }
        let mut m = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

impl<T: Codec, const N: usize> Codec for [T; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::decode(r)?);
        }
        items
            .try_into()
            .map_err(|_| CodecError::Invalid("array length"))
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl Codec for crate::time::SimDuration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_nanos().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(crate::time::SimDuration::from_nanos(u64::decode(r)?))
    }
}

impl Codec for crate::time::SimTime {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_nanos().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(crate::time::SimTime::from_nanos(u64::decode(r)?))
    }
}

impl Codec for crate::bytesize::ByteSize {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_u64().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(crate::bytesize::ByteSize::bytes(u64::decode(r)?))
    }
}

/// Fast path for bulk byte payloads: `u64` length + raw bytes.
///
/// Layout-compatible with `Vec<u8>`'s generic encoding but O(1) memcpy
/// instead of per-element dispatch; use for buffer contents and heap
/// segments.
pub fn encode_bytes(out: &mut Vec<u8>, data: &[u8]) {
    (data.len() as u64).encode(out);
    out.extend_from_slice(data);
}

/// Inverse of [`encode_bytes`].
pub fn decode_bytes(r: &mut Reader<'_>) -> Result<Vec<u8>, CodecError> {
    let len = u64::decode(r)? as usize;
    Ok(r.take(len)?.to_vec())
}

/// Implement [`Codec`] for a struct by encoding its fields in order.
///
/// ```
/// use simcore::impl_codec_struct;
///
/// #[derive(Debug, PartialEq)]
/// struct Point { x: u32, y: u32 }
/// impl_codec_struct!(Point { x, y });
///
/// # use simcore::Codec;
/// let p = Point { x: 1, y: 2 };
/// assert_eq!(Point::from_bytes(&p.to_bytes()).unwrap(), p);
/// ```
#[macro_export]
macro_rules! impl_codec_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::codec::Codec for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                $($crate::codec::Codec::encode(&self.$field, out);)+
            }
            fn decode(
                r: &mut $crate::codec::Reader<'_>,
            ) -> Result<Self, $crate::codec::CodecError> {
                Ok(Self { $($field: $crate::codec::Codec::decode(r)?),+ })
            }
        }
    };
}

/// Wrap a payload in a `magic | version | len | payload | fnv64` frame.
pub fn encode_framed<T: Codec>(magic: [u8; 4], version: u32, payload: &T) -> Vec<u8> {
    let body = payload.to_bytes();
    let mut out = Vec::with_capacity(body.len() + 24);
    out.extend_from_slice(&magic);
    version.encode(&mut out);
    encode_bytes(&mut out, &body);
    fnv1a64(&body).encode(&mut out);
    out
}

/// Decode a frame produced by [`encode_framed`], validating magic,
/// version and checksum.
pub fn decode_framed<T: Codec>(
    magic: [u8; 4],
    version: u32,
    bytes: &[u8],
) -> Result<T, CodecError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != magic {
        return Err(CodecError::BadMagic);
    }
    let v = u32::decode(&mut r)?;
    if v != version {
        return Err(CodecError::BadVersion(v));
    }
    let body = decode_bytes(&mut r)?;
    let sum = u64::decode(&mut r)?;
    if !r.is_empty() {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    if fnv1a64(&body) != sum {
        return Err(CodecError::ChecksumMismatch);
    }
    T::from_bytes(&body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(
            u32::from_bytes(&0xdead_beefu32.to_bytes()).unwrap(),
            0xdead_beef
        );
        assert_eq!(i64::from_bytes(&(-42i64).to_bytes()).unwrap(), -42);
        assert_eq!(f64::from_bytes(&3.25f64.to_bytes()).unwrap(), 3.25);
        assert!(bool::from_bytes(&true.to_bytes()).unwrap());
        assert_eq!(
            String::from_bytes(&"héllo".to_string().to_bytes()).unwrap(),
            "héllo"
        );
    }

    #[test]
    fn container_roundtrips() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_bytes(&v.to_bytes()).unwrap(), v);
        let o: Option<String> = Some("x".into());
        assert_eq!(Option::<String>::from_bytes(&o.to_bytes()).unwrap(), o);
        let n: Option<String> = None;
        assert_eq!(Option::<String>::from_bytes(&n.to_bytes()).unwrap(), n);
        let mut m = BTreeMap::new();
        m.insert(7u64, "seven".to_string());
        assert_eq!(
            BTreeMap::<u64, String>::from_bytes(&m.to_bytes()).unwrap(),
            m
        );
        let t = (1u8, "a".to_string(), 2u64);
        assert_eq!(<(u8, String, u64)>::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = 5u32.to_bytes();
        b.push(0);
        assert_eq!(u32::from_bytes(&b), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn truncation_reports_eof() {
        let b = 5u64.to_bytes();
        let err = u64::from_bytes(&b[..3]).unwrap_err();
        assert!(matches!(err, CodecError::UnexpectedEof { .. }));
    }

    #[test]
    fn hostile_length_rejected_without_alloc() {
        // A Vec claiming u64::MAX elements must not attempt allocation.
        let mut b = Vec::new();
        u64::MAX.encode(&mut b);
        assert_eq!(
            Vec::<u8>::from_bytes(&b),
            Err(CodecError::Invalid("vec length exceeds stream"))
        );
    }

    #[test]
    fn bulk_bytes_compatible_with_vec_u8() {
        let data = vec![1u8, 2, 3, 4];
        let mut fast = Vec::new();
        encode_bytes(&mut fast, &data);
        assert_eq!(fast, data.to_bytes());
        let mut r = Reader::new(&fast);
        assert_eq!(decode_bytes(&mut r).unwrap(), data);
    }

    #[test]
    fn framing_roundtrip_and_validation() {
        let payload = vec![9u64, 8, 7];
        let frame = encode_framed(*b"CKPT", 1, &payload);
        let back: Vec<u64> = decode_framed(*b"CKPT", 1, &frame).unwrap();
        assert_eq!(back, payload);

        // Wrong magic.
        assert_eq!(
            decode_framed::<Vec<u64>>(*b"XXXX", 1, &frame),
            Err(CodecError::BadMagic)
        );
        // Wrong version.
        assert_eq!(
            decode_framed::<Vec<u64>>(*b"CKPT", 2, &frame),
            Err(CodecError::BadVersion(1))
        );
        // Corrupt payload byte -> checksum failure.
        let mut bad = frame.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        let res = decode_framed::<Vec<u64>>(*b"CKPT", 1, &bad);
        assert!(res.is_err());
    }

    #[test]
    fn struct_macro_roundtrip() {
        #[derive(Debug, PartialEq)]
        struct Demo {
            a: u32,
            b: String,
            c: Vec<u16>,
        }
        impl_codec_struct!(Demo { a, b, c });
        let d = Demo {
            a: 1,
            b: "two".into(),
            c: vec![3, 4],
        };
        assert_eq!(Demo::from_bytes(&d.to_bytes()).unwrap(), d);
    }

    #[test]
    fn sim_types_roundtrip() {
        use crate::{ByteSize, SimDuration, SimTime};
        let d = SimDuration::from_millis(123);
        assert_eq!(SimDuration::from_bytes(&d.to_bytes()).unwrap(), d);
        let t = SimTime::from_nanos(456);
        assert_eq!(SimTime::from_bytes(&t.to_bytes()).unwrap(), t);
        let s = ByteSize::mib(7);
        assert_eq!(ByteSize::from_bytes(&s.to_bytes()).unwrap(), s);
    }
}
