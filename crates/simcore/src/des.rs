//! Discrete-event core: indexed event queue, process handles, and
//! per-node channel registries.
//!
//! Everything before the fleet scheduler ran one tenant on one implicit
//! clock; this module is the substrate that lets O(10k) processes share
//! a single virtual timeline. Three pieces:
//!
//! - [`EventQueue`] — an indexed binary heap of timestamped events with
//!   deterministic `(time, seq)` tie-breaking. `push`/`pop` are
//!   O(log n); `cancel` is O(log n) through the slot index (no linear
//!   scan), which is what makes preemption affordable: a scheduler can
//!   revoke a victim's pending completion event in place. Every heap
//!   link traversal is counted in [`EventQueue::ops`], a deterministic
//!   proxy for scheduler overhead that benches can golden (wall-clock
//!   would not be reproducible).
//! - [`ProcSet`] — flat process-handle table with a tiny lifecycle
//!   state machine, for tenant bookkeeping without hashing.
//! - [`ChannelMap`] — per-node [`ChannelSet`] registry so each node's
//!   resource timelines (device slots, disks, NICs) stay independent;
//!   sets are created lazily and log-free by default (fleet runs place
//!   millions of intervals).
//!
//! Determinism contract: identical push/pop/cancel sequences produce
//! identical pop orders and identical `ops` counts — the heap never
//! consults anything but `(time, seq)`.

use crate::channels::ChannelSet;
use crate::time::SimTime;

/// Stable handle to a pending event, returned by [`EventQueue::push`].
/// Survives arbitrary heap movement; goes stale once the event is
/// popped or cancelled (a stale cancel is a no-op returning `None`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

struct Slot<T> {
    /// (time, seq) ordering key; `seq` is globally unique so ordering
    /// is total and ties break by insertion order.
    key: (SimTime, u64),
    /// Bumped on every reuse so stale [`EventId`]s can't cancel a
    /// successor occupying the same slot.
    gen: u32,
    /// Position in `heap`, maintained by every sift.
    pos: usize,
    payload: Option<T>,
}

/// Indexed binary-heap event queue with deterministic FIFO
/// tie-breaking at equal timestamps.
pub struct EventQueue<T> {
    /// Heap of slot indices, min-ordered by `slots[i].key`.
    heap: Vec<u32>,
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    next_seq: u64,
    ops: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// New empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            ops: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Deterministic count of heap link traversals (comparisons during
    /// sifts) across the queue's lifetime. Grows O(log n) per
    /// operation; a bench dividing `ops()` by events processed gets a
    /// reproducible overhead-per-event figure.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Earliest pending timestamp.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|&s| self.slots[s as usize].key.0)
    }

    /// Schedule `payload` at time `t`. Events at equal `t` pop in push
    /// order.
    pub fn push(&mut self, t: SimTime, payload: T) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = (t, seq);
        let pos = self.heap.len();
        let slot = match self.free.pop() {
            Some(s) => {
                let rec = &mut self.slots[s as usize];
                rec.key = key;
                rec.pos = pos;
                rec.payload = Some(payload);
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot {
                    key,
                    gen: 0,
                    pos,
                    payload: Some(payload),
                });
                s
            }
        };
        self.heap.push(slot);
        self.sift_up(pos);
        EventId {
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    /// Remove and return the earliest event as `(time, id, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, T)> {
        let &top = self.heap.first()?;
        let id = EventId {
            slot: top,
            gen: self.slots[top as usize].gen,
        };
        let (t, payload) = self.remove_at(0);
        Some((t, id, payload))
    }

    /// Cancel a pending event, returning its payload. `None` if the
    /// handle is stale (already popped or cancelled).
    pub fn cancel(&mut self, id: EventId) -> Option<T> {
        let rec = self.slots.get(id.slot as usize)?;
        if rec.gen != id.gen || rec.payload.is_none() {
            return None;
        }
        let pos = rec.pos;
        let (_, payload) = self.remove_at(pos);
        Some(payload)
    }

    /// Remove the slot at heap position `pos`, restoring heap order.
    fn remove_at(&mut self, pos: usize) -> (SimTime, T) {
        let slot = self.heap[pos] as usize;
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        self.slots[self.heap[pos] as usize].pos = pos;
        self.heap.pop();
        if pos < self.heap.len() {
            // The swapped-in element may need to move either way.
            self.sift_down(pos);
            self.sift_up(self.slots[self.heap[pos] as usize].pos);
        }
        let rec = &mut self.slots[slot];
        rec.gen = rec.gen.wrapping_add(1);
        let t = rec.key.0;
        let payload = rec.payload.take().expect("occupied slot");
        self.free.push(slot as u32);
        (t, payload)
    }

    fn key_at(&self, pos: usize) -> (SimTime, u64) {
        self.slots[self.heap[pos] as usize].key
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            self.ops += 1;
            if self.key_at(pos) >= self.key_at(parent) {
                break;
            }
            self.heap.swap(pos, parent);
            self.slots[self.heap[pos] as usize].pos = pos;
            self.slots[self.heap[parent] as usize].pos = parent;
            pos = parent;
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let l = 2 * pos + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            self.ops += 1;
            let mut best = l;
            if r < self.heap.len() && self.key_at(r) < self.key_at(l) {
                best = r;
            }
            if self.key_at(pos) <= self.key_at(best) {
                break;
            }
            self.heap.swap(pos, best);
            self.slots[self.heap[pos] as usize].pos = pos;
            self.slots[self.heap[best] as usize].pos = best;
            pos = best;
        }
    }
}

/// Lifecycle state of a process handle in a [`ProcSet`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcState {
    /// Admitted, waiting for a slot.
    Ready,
    /// Occupying a slot, advancing virtual time.
    Running,
    /// Suspended (checkpointed out or waiting on a dependency).
    Blocked,
    /// Finished; the handle is inert.
    Done,
}

/// Handle to one process in a [`ProcSet`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct ProcId(u32);

impl ProcId {
    /// Dense index (spawn order), usable as a Vec index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Flat table of process lifecycle states: O(1) state flips, O(1)
/// census counters, no hashing, dense ids.
pub struct ProcSet {
    states: Vec<ProcState>,
    counts: [usize; 4],
}

impl Default for ProcSet {
    fn default() -> Self {
        Self::new()
    }
}

impl ProcSet {
    /// New empty table.
    pub fn new() -> Self {
        ProcSet {
            states: Vec::new(),
            counts: [0; 4],
        }
    }

    fn bucket(state: ProcState) -> usize {
        match state {
            ProcState::Ready => 0,
            ProcState::Running => 1,
            ProcState::Blocked => 2,
            ProcState::Done => 3,
        }
    }

    /// Register a new process in `Ready` state.
    pub fn spawn(&mut self) -> ProcId {
        let id = ProcId(self.states.len() as u32);
        self.states.push(ProcState::Ready);
        self.counts[0] += 1;
        id
    }

    /// Current state of `id`.
    pub fn state(&self, id: ProcId) -> ProcState {
        self.states[id.index()]
    }

    /// Flip `id` to `state`, keeping the census in sync.
    pub fn set_state(&mut self, id: ProcId, state: ProcState) {
        let old = self.states[id.index()];
        self.counts[Self::bucket(old)] -= 1;
        self.counts[Self::bucket(state)] += 1;
        self.states[id.index()] = state;
    }

    /// How many processes are currently in `state`.
    pub fn count(&self, state: ProcState) -> usize {
        self.counts[Self::bucket(state)]
    }

    /// Total processes ever spawned.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no process was ever spawned.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Whether every spawned process reached `Done`.
    pub fn all_done(&self) -> bool {
        self.count(ProcState::Done) == self.len()
    }
}

/// Per-node registry of [`ChannelSet`]s sharing one origin: node `i`'s
/// resource timelines (device slots, disks, NICs) are independent of
/// node `j`'s. Sets are created lazily on first touch and — unlike a
/// bare `ChannelSet::new` — log-free, because a fleet run places one
/// interval per scheduling slice and would otherwise hold
/// O(total-placements) memory.
pub struct ChannelMap {
    origin: SimTime,
    nodes: Vec<Option<ChannelSet>>,
}

impl ChannelMap {
    /// New registry; every node's channels start free at `origin`.
    pub fn new(origin: SimTime) -> Self {
        ChannelMap {
            origin,
            nodes: Vec::new(),
        }
    }

    /// The node's channel set, created (log-free) on first touch.
    pub fn node(&mut self, node: usize) -> &mut ChannelSet {
        if node >= self.nodes.len() {
            self.nodes.resize_with(node + 1, || None);
        }
        self.nodes[node].get_or_insert_with(|| ChannelSet::new(self.origin).without_log())
    }

    /// The node's channel set if it was ever touched.
    pub fn try_node(&self, node: usize) -> Option<&ChannelSet> {
        self.nodes.get(node).and_then(|n| n.as_ref())
    }

    /// Latest placement end across every node's channels (= `origin`
    /// when nothing was placed anywhere).
    pub fn makespan(&self) -> SimTime {
        self.nodes
            .iter()
            .flatten()
            .map(|s| s.makespan())
            .max()
            .unwrap_or(self.origin)
    }

    /// Shared scheduling origin.
    pub fn origin(&self) -> SimTime {
        self.origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a1");
        q.push(t(10), "a2");
        q.push(t(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a1", "a2", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_removes_exactly_one_event() {
        let mut q = EventQueue::new();
        let _a = q.push(t(10), "a");
        let b = q.push(t(20), "b");
        let _c = q.push(t(30), "c");
        assert_eq!(q.cancel(b), Some("b"));
        assert_eq!(q.cancel(b), None, "double cancel is a no-op");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "c"]);
    }

    #[test]
    fn stale_handle_cannot_cancel_slot_reuser() {
        let mut q = EventQueue::new();
        let a = q.push(t(10), "a");
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("a"));
        // "b" reuses a's slot; a's handle must not be able to kill it.
        let _b = q.push(t(20), "b");
        assert_eq!(q.cancel(a), None);
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("b"));
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(50), ());
        q.push(t(5), ());
        assert_eq!(q.peek_time(), Some(t(5)));
        let (pt, _, _) = q.pop().unwrap();
        assert_eq!(pt, t(5));
        assert_eq!(q.peek_time(), Some(t(50)));
    }

    #[test]
    fn proc_set_census_tracks_transitions() {
        let mut ps = ProcSet::new();
        let a = ps.spawn();
        let b = ps.spawn();
        assert_eq!(ps.count(ProcState::Ready), 2);
        ps.set_state(a, ProcState::Running);
        ps.set_state(b, ProcState::Blocked);
        assert_eq!(ps.count(ProcState::Ready), 0);
        assert_eq!(ps.count(ProcState::Running), 1);
        assert_eq!(ps.count(ProcState::Blocked), 1);
        ps.set_state(a, ProcState::Done);
        ps.set_state(b, ProcState::Done);
        assert!(ps.all_done());
    }

    #[test]
    fn channel_map_keeps_nodes_independent() {
        let mut map = ChannelMap::new(t(0));
        let d0 = map.node(0).channel("slot0");
        map.node(0)
            .place(d0, t(0), SimDuration::from_nanos(100), "j0");
        let d1 = map.node(3).channel("slot0");
        map.node(3)
            .place(d1, t(0), SimDuration::from_nanos(40), "j1");
        assert_eq!(map.node(0).free_at(d0), t(100));
        assert_eq!(map.node(3).free_at(d1), t(40));
        assert_eq!(map.makespan(), t(100));
        assert!(map.try_node(1).is_none(), "untouched node stays lazy");
        // Fleet-scale registries never keep placement history.
        assert!(!map.node(0).log_enabled());
    }

    #[test]
    fn qcheck_heap_matches_sorted_model() {
        use crate::qcheck::qcheck;
        // Random interleavings of push/pop/cancel must pop the exact
        // order a sorted (time, seq) model predicts.
        qcheck("event_queue_matches_sorted_model", 96, |g| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut model: Vec<(u64, u64, EventId)> = Vec::new(); // (t, seq, id)
            let mut seq = 0u64;
            let mut popped = Vec::new();
            let mut expected = Vec::new();
            for _ in 0..g.usize_in(1, 64) {
                match g.range(0, 3) {
                    0 => {
                        let tt = g.range(0, 500);
                        let id = q.push(t(tt), seq);
                        model.push((tt, seq, id));
                        seq += 1;
                    }
                    1 => {
                        let want = model
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &(tt, s, _))| (tt, s))
                            .map(|(i, _)| i);
                        match (q.pop(), want) {
                            (Some((pt, _, payload)), Some(i)) => {
                                let (tt, s, _) = model.remove(i);
                                assert_eq!(pt, t(tt));
                                assert_eq!(payload, s);
                                popped.push(payload);
                                expected.push(s);
                            }
                            (None, None) => {}
                            (got, want) => {
                                panic!("pop mismatch: got {got:?}, model {want:?}")
                            }
                        }
                    }
                    _ => {
                        if model.is_empty() {
                            assert!(q.is_empty());
                        } else {
                            let i = g.usize_in(0, model.len());
                            let (_, s, id) = model.remove(i);
                            assert_eq!(q.cancel(id), Some(s));
                        }
                    }
                }
                assert_eq!(q.len(), model.len());
            }
            assert_eq!(popped, expected);
        });
    }

    #[test]
    fn ops_per_event_is_logarithmic_not_linear() {
        // Push/pop N events through a queue that holds W at a time; the
        // per-event op count must track log2(W), not W.
        let per_event = |window: u64| -> u64 {
            let mut q = EventQueue::new();
            let mut events = 0u64;
            for i in 0..window {
                q.push(t(i * 7 % 1000), i);
            }
            for i in 0..window * 8 {
                let (pt, _, _) = q.pop().unwrap();
                events += 1;
                q.push(pt + SimDuration::from_nanos(1 + i % 97), i);
            }
            q.ops() / events
        };
        let small = per_event(64);
        let big = per_event(4096);
        // 64x more pending events: a linear structure would cost ~64x
        // per op; the heap pays log2(4096)/log2(64) = 2x.
        assert!(
            big <= small * 4,
            "per-event ops grew superlogarithmically: {small} -> {big}"
        );
    }
}
