//! `simcore` — foundation types for the CheCL reproduction.
//!
//! Everything in the simulation stack is built on four small pieces:
//!
//! * [`time`] — a discrete-event *virtual clock* ([`SimTime`] /
//!   [`SimDuration`]). All reported experiment timings are virtual-time
//!   measurements driven by calibrated cost models, which makes every
//!   figure in the paper reproducible bit-for-bit.
//! * [`bandwidth`] — latency + bandwidth link models used for PCIe
//!   transfers, IPC pipes, disks and NICs.
//! * [`calib`] — the Table I constants of the paper (PCIe, disk, NFS and
//!   RAM-disk bandwidths, device memory sizes, compiler speeds).
//! * [`codec`] — the checkpoint image byte format: a compact, framed,
//!   checksummed binary codec. This *is* the artifact's checkpoint file
//!   format, not an incidental dependency.
//!
//! Helpers for deterministic pseudo-randomness ([`rng`]), content
//! checksums ([`checksum`]), virtual-clock tracing ([`telemetry`]) and
//! an offline property-test harness ([`qcheck`]) round out the crate.

pub mod bandwidth;
pub mod bytesize;
pub mod calib;
pub mod channels;
pub mod checksum;
pub mod codec;
pub mod des;
pub mod obs;
pub mod qcheck;
pub mod rng;
pub mod telemetry;
pub mod time;

pub use bandwidth::{Bandwidth, LinkModel};
pub use bytesize::ByteSize;
pub use checksum::{fnv1a64, Fnv64};
pub use codec::{Codec, CodecError, Reader};
pub use rng::SplitMix64;
pub use time::{SimDuration, SimTime};
