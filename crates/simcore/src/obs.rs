//! `obs` — the structured observability plane.
//!
//! [`crate::telemetry`] answers "what happened when" for a human with a
//! trace viewer; this module answers it for *programs*. It keeps a
//! thread-local **event ledger** of typed, serializable records
//! (checkpoint commits, restores, replica scrubs, incidents, interval
//! retunes, fault injections, …) appended in emission order with stable
//! IDs and virtual timestamps. The ledger is queryable by kind,
//! component and time window, and round-trips through JSON Lines so a
//! run can be inspected offline (`checl_inspect`) or diffed bit-exactly
//! against a seeded replay.
//!
//! Three derived views are built from the raw events:
//!
//! * [`ProvenanceGraph`] — one node per dump file, carrying its format,
//!   policy lattice point, logical vs. serialized bytes, chunk counts,
//!   incremental `bases`, vault generation/replica/checksum data and
//!   scrub history. `lineage(path)` walks the base edges and explains
//!   exactly which files a restore will touch.
//! * [`SloSummary`] — availability, downtime, wasted-work and
//!   checkpoint-overhead accounting summed from incident and
//!   checkpoint events. The sums reconcile *exactly* with the
//!   supervisor's own [`SupervisorReport`]-style accounting because the
//!   supervisor emits each quantity at the moment it charges it.
//! * Percentile digests — any `u64` projection of the ledger folds into
//!   a [`Histogram`] (see [`Ledger::digest`]), whose mergeable
//!   `percentile` estimator powers the p50/p95/p99 columns of
//!   `checl_inspect`.
//!
//! Recording is pure bookkeeping: emitting never touches a process
//! clock, so a run with the ledger enabled is bit-identical in virtual
//! time to the same run with it disabled.

use crate::telemetry::Histogram;
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// One structured ledger record.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Stable id: position in emission order, starting at 0.
    pub id: u64,
    /// Virtual time the event describes.
    pub t: SimTime,
    /// Emitting layer: `"engine"`, `"vault"`, `"supervisor"`,
    /// `"fault"`, `"migrate"`, `"mpi"`, `"channel"`, …
    pub component: String,
    /// The typed payload.
    pub kind: EventKind,
}

/// Typed event payloads. Every field is a `u64` or a string so records
/// serialize to flat JSON objects and compare bit-exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A checkpoint dump committed to `path` (engine level: full
    /// provenance of the dump that landed on disk).
    CheckpointCommitted {
        /// Final path of the committed dump.
        path: String,
        /// On-disk format (`"sequential"` or `"streamed"`).
        format: String,
        /// Human-readable policy lattice point.
        policy: String,
        /// Dumps this one depends on: the distinct files holding the
        /// clean bytes of buffers an incremental dump skipped.
        bases: Vec<String>,
        /// Live buffers considered.
        buffers: u64,
        /// Buffers skipped by incremental dedup.
        skipped: u64,
        /// Chunks written (streamed format; 0 for sequential).
        chunks: u64,
        /// Logical bytes of all live buffers.
        logical_bytes: u64,
        /// Serialized size of the file on disk.
        file_bytes: u64,
        /// Sync phase, ns.
        sync_ns: u64,
        /// Preprocess (device→host copy) phase, ns.
        preprocess_ns: u64,
        /// Write phase, ns.
        write_ns: u64,
        /// Postprocess phase, ns.
        postprocess_ns: u64,
        /// Total wall-clock of the snapshot, ns.
        cost_ns: u64,
    },
    /// The supervisor accounted one committed checkpoint (its measured
    /// cost includes vault commit I/O, which is what feeds the
    /// checkpoint-overhead SLO).
    CheckpointAccounted {
        /// Measured cost charged by the supervisor, ns.
        cost_ns: u64,
        /// Application progress (ops completed) at the commit.
        progress: u64,
    },
    /// A restore began from `path`.
    RestoreStarted {
        /// Dump file the restore reads.
        path: String,
        /// Sniffed or requested format.
        format: String,
    },
    /// A restore finished.
    RestoreCompleted {
        /// Dump file the restore read.
        path: String,
        /// Objects re-created.
        objects: u64,
        /// Object-recreation cost, ns.
        cost_ns: u64,
    },
    /// The vault committed a generation (replicated dump + checksum).
    GenerationCommitted {
        /// Generation number.
        generation: u64,
        /// Primary replica path.
        path: String,
        /// Stored bytes per replica.
        bytes: u64,
        /// FNV-64 of the stored bytes.
        checksum: u64,
        /// Every replica path (primary first).
        replicas: Vec<String>,
    },
    /// A generation fell off the vault's retention window.
    GenerationRetired {
        /// Generation number.
        generation: u64,
        /// Primary replica path.
        path: String,
    },
    /// A scrub pass verified a generation's replicas.
    ReplicaScrubbed {
        /// Generation number.
        generation: u64,
        /// Primary replica path.
        path: String,
        /// Replicas that verified clean.
        verified: u64,
    },
    /// A scrub pass rewrote a damaged replica from a healthy one.
    ReplicaRepaired {
        /// Generation number.
        generation: u64,
        /// Primary replica path.
        path: String,
        /// The replica that was rewritten.
        replica: String,
    },
    /// Every replica of a generation was damaged; the generation is
    /// unrecoverable.
    ReplicaLost {
        /// Generation number.
        generation: u64,
        /// Primary replica path.
        path: String,
    },
    /// The supervisor opened an incident (failure detected).
    IncidentOpened {
        /// Failure source (`"proxy_death"`, `"node_crash"`, …).
        source: String,
        /// Application progress rolled back, ns-equivalent ops are
        /// converted by the emitter to wasted virtual time.
        wasted_ns: u64,
        /// Detection latency charged as downtime, ns.
        detect_ns: u64,
    },
    /// The supervisor closed an incident.
    IncidentClosed {
        /// Failure source the incident was opened with.
        source: String,
        /// Total downtime charged to this incident, ns.
        downtime_ns: u64,
        /// Repair attempts spent.
        repairs: u64,
        /// 1 if service was restored, 0 if the incident ended the run.
        resolved: u64,
    },
    /// A migration finished end to end.
    MigrationCompleted {
        /// Dump path the migration used.
        path: String,
        /// Serialized dump size.
        file_bytes: u64,
        /// Measured end-to-end migration time, ns.
        actual_ns: u64,
        /// Model-predicted migration time, ns.
        predicted_ns: u64,
    },
    /// The adaptive interval controller picked a new interval.
    IntervalRetuned {
        /// New checkpoint interval, ns.
        interval_ns: u64,
        /// MTBF estimate that produced it, ns.
        mtbf_ns: u64,
    },
    /// A fault plan injected one fault.
    FaultInjected {
        /// Stable fault-kind name (`"disk_write_fail"`, …).
        fault: String,
        /// Site detail recorded by the plan (path, node, …).
        detail: String,
    },
    /// Aggregated dedup hits for one checkpoint generation: chunks
    /// whose content already lived in the chunk store, so their bytes
    /// never touched the disk again.
    ChunkDeduped {
        /// Chunk-store path the hits resolved against.
        store: String,
        /// Dump ordinal of the emitting checkpoint (0-based).
        generation: u64,
        /// Chunks that deduplicated.
        chunks: u64,
        /// Raw bytes those chunks would have cost without dedup.
        raw_bytes: u64,
    },
    /// Aggregated novel chunks compressed and appended to the chunk
    /// store for one checkpoint generation.
    ChunkCompressed {
        /// Chunk-store path the records were appended to.
        store: String,
        /// Dump ordinal of the emitting checkpoint (0-based).
        generation: u64,
        /// Novel chunks stored.
        chunks: u64,
        /// Raw bytes before compression.
        raw_bytes: u64,
        /// Bytes actually appended to the store.
        stored_bytes: u64,
        /// CPU time spent compressing, ns.
        compress_ns: u64,
    },
    /// Utilization snapshot of one resource channel at the end of an
    /// overlapped operation.
    ChannelObserved {
        /// Channel name (`"pcie.dev0"`, `"disk"`, …).
        channel: String,
        /// Busy time accumulated on the channel, ns.
        busy_ns: u64,
        /// Placements scheduled.
        ops: u64,
    },
    /// A live snapshot lazily forked chunks of a buffer the application
    /// was about to overwrite before its cut had drained.
    CowForked {
        /// Dump the pending cut belongs to.
        path: String,
        /// CheCL handle of the mutated buffer.
        buffer: u64,
        /// 64 KiB-granular chunks copied out.
        chunks: u64,
        /// Bytes copied out.
        bytes: u64,
        /// Application-visible stall charged for the fork, ns.
        stall_ns: u64,
    },
    /// A live snapshot's background drain finished and the dump file
    /// was sealed.
    LiveDrainCompleted {
        /// Final path of the committed dump.
        path: String,
        /// Buffers the cut covered.
        buffers: u64,
        /// Chunks that had to be COW-forked before overwrites.
        forked_chunks: u64,
        /// Bytes preserved by forking.
        forked_bytes: u64,
        /// Bytes drained from devices in the background.
        drained_bytes: u64,
        /// Application-visible stall of the whole generation, ns.
        stall_ns: u64,
        /// Background drain wall-clock (cut to seal), ns.
        drain_ns: u64,
        /// Serialized size of the sealed file.
        file_bytes: u64,
    },
    /// The fleet scheduler suspended a running tenant by checkpointing
    /// it out of its slot (priority preemption).
    TenantPreempted {
        /// Fleet-unique job name.
        job: String,
        /// Node the tenant was running on.
        node: u64,
        /// Checkpoint generation this preemption produced (1-based
        /// count of dumps taken for the job).
        generation: u64,
        /// Human-readable CprPolicy lattice point used for the dump.
        policy: String,
    },
    /// A tenant moved nodes: live migration off a hot node, or a
    /// preempted tenant resumed from its dump on a different node.
    TenantMigrated {
        /// Fleet-unique job name.
        job: String,
        /// Node the tenant left.
        from_node: u64,
        /// Node the tenant landed on.
        to_node: u64,
        /// 1 for an end-to-end live migration, 0 for a cold resume of
        /// an existing dump on a new node.
        live: u64,
    },
    /// A tenant ran to completion; the fleet-level outcome record.
    TenantCompleted {
        /// Fleet-unique job name.
        job: String,
        /// Node the tenant finished on.
        node: u64,
        /// Admission-to-completion latency, ns.
        latency_ns: u64,
        /// Times the tenant was preempted.
        preemptions: u64,
        /// Times the tenant changed nodes.
        migrations: u64,
        /// Checkpoint generations written for the tenant.
        generations: u64,
        /// 1 if the final result checksums matched the uninterrupted
        /// solo baseline, 0 otherwise.
        bit_exact: u64,
        /// 1 if the tenant finished within its SLO budget, 0 otherwise.
        slo_ok: u64,
    },
    /// A chunk store opened with a torn final frame (a crash landed
    /// mid-append); the store was truncated back to the last intact
    /// frame instead of erroring the whole `checl.cas`.
    StoreTruncated {
        /// Store path.
        path: String,
        /// Bytes of torn tail dropped by the truncation.
        dropped: u64,
    },
    /// The failure detector suspected a component that turned out to
    /// be alive (a gray failure: lost/jittered heartbeats, not a
    /// death). The probe cost is booked as supervisor-induced
    /// overhead, not application failure.
    FalsePositive {
        /// The suspected-but-alive beat source.
        source: String,
        /// Virtual time spent probing before the suspicion cleared.
        induced_ns: u64,
    },
    /// A stale writer (pre-partition epoch) tried to commit a vault
    /// generation after a failover and was fenced off; its staged
    /// file was discarded instead of double-committing.
    WriterFenced {
        /// Generation the stale writer tried to commit.
        generation: u64,
        /// Epoch the writer held.
        held_epoch: u64,
        /// Epoch currently in force at the vault.
        current_epoch: u64,
        /// Staged path that was discarded.
        path: String,
    },
    /// The fleet scheduler rejected an admission under sustained
    /// checkpoint-channel backlog (the top rung of the backpressure
    /// ladder) instead of silently queueing the job forever.
    AdmissionRejected {
        /// Fleet-unique job name.
        job: String,
        /// Observed `ckpt.disk` backlog at rejection, ns.
        backlog_ns: u64,
    },
}

/// Scalar field value used by the flat JSON codec.
#[derive(Clone, Debug, PartialEq)]
enum FieldVal {
    U(u64),
    S(String),
}

impl FieldVal {
    fn as_u64(&self) -> Option<u64> {
        match self {
            FieldVal::U(v) => Some(*v),
            FieldVal::S(_) => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            FieldVal::U(_) => None,
            FieldVal::S(s) => Some(s),
        }
    }
}

/// Lists (`bases`, `replicas`) are serialized as one comma-joined
/// string field; dump paths never contain commas.
fn join_list(items: &[String]) -> FieldVal {
    FieldVal::S(items.join(","))
}

fn split_list(s: &str) -> Vec<String> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| p.to_string())
        .collect()
}

impl EventKind {
    /// Stable kind name, also the JSONL `"kind"` field.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::CheckpointCommitted { .. } => "checkpoint_committed",
            EventKind::CheckpointAccounted { .. } => "checkpoint_accounted",
            EventKind::RestoreStarted { .. } => "restore_started",
            EventKind::RestoreCompleted { .. } => "restore_completed",
            EventKind::GenerationCommitted { .. } => "generation_committed",
            EventKind::GenerationRetired { .. } => "generation_retired",
            EventKind::ReplicaScrubbed { .. } => "replica_scrubbed",
            EventKind::ReplicaRepaired { .. } => "replica_repaired",
            EventKind::ReplicaLost { .. } => "replica_lost",
            EventKind::IncidentOpened { .. } => "incident_opened",
            EventKind::IncidentClosed { .. } => "incident_closed",
            EventKind::MigrationCompleted { .. } => "migration_completed",
            EventKind::IntervalRetuned { .. } => "interval_retuned",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::ChunkDeduped { .. } => "chunk_deduped",
            EventKind::ChunkCompressed { .. } => "chunk_compressed",
            EventKind::ChannelObserved { .. } => "channel_observed",
            EventKind::CowForked { .. } => "cow_forked",
            EventKind::LiveDrainCompleted { .. } => "live_drain_completed",
            EventKind::TenantPreempted { .. } => "tenant_preempted",
            EventKind::TenantMigrated { .. } => "tenant_migrated",
            EventKind::TenantCompleted { .. } => "tenant_completed",
            EventKind::StoreTruncated { .. } => "store_truncated",
            EventKind::FalsePositive { .. } => "false_positive",
            EventKind::WriterFenced { .. } => "writer_fenced",
            EventKind::AdmissionRejected { .. } => "admission_rejected",
        }
    }

    /// Kind-specific fields in fixed serialization order.
    fn fields(&self) -> Vec<(&'static str, FieldVal)> {
        use EventKind::*;
        use FieldVal::{S, U};
        match self {
            CheckpointCommitted {
                path,
                format,
                policy,
                bases,
                buffers,
                skipped,
                chunks,
                logical_bytes,
                file_bytes,
                sync_ns,
                preprocess_ns,
                write_ns,
                postprocess_ns,
                cost_ns,
            } => vec![
                ("path", S(path.clone())),
                ("format", S(format.clone())),
                ("policy", S(policy.clone())),
                ("bases", join_list(bases)),
                ("buffers", U(*buffers)),
                ("skipped", U(*skipped)),
                ("chunks", U(*chunks)),
                ("logical_bytes", U(*logical_bytes)),
                ("file_bytes", U(*file_bytes)),
                ("sync_ns", U(*sync_ns)),
                ("preprocess_ns", U(*preprocess_ns)),
                ("write_ns", U(*write_ns)),
                ("postprocess_ns", U(*postprocess_ns)),
                ("cost_ns", U(*cost_ns)),
            ],
            CheckpointAccounted { cost_ns, progress } => {
                vec![("cost_ns", U(*cost_ns)), ("progress", U(*progress))]
            }
            RestoreStarted { path, format } => {
                vec![("path", S(path.clone())), ("format", S(format.clone()))]
            }
            RestoreCompleted {
                path,
                objects,
                cost_ns,
            } => vec![
                ("path", S(path.clone())),
                ("objects", U(*objects)),
                ("cost_ns", U(*cost_ns)),
            ],
            GenerationCommitted {
                generation,
                path,
                bytes,
                checksum,
                replicas,
            } => vec![
                ("generation", U(*generation)),
                ("path", S(path.clone())),
                ("bytes", U(*bytes)),
                ("checksum", U(*checksum)),
                ("replicas", join_list(replicas)),
            ],
            GenerationRetired { generation, path } => {
                vec![("generation", U(*generation)), ("path", S(path.clone()))]
            }
            ReplicaScrubbed {
                generation,
                path,
                verified,
            } => vec![
                ("generation", U(*generation)),
                ("path", S(path.clone())),
                ("verified", U(*verified)),
            ],
            ReplicaRepaired {
                generation,
                path,
                replica,
            } => vec![
                ("generation", U(*generation)),
                ("path", S(path.clone())),
                ("replica", S(replica.clone())),
            ],
            ReplicaLost { generation, path } => {
                vec![("generation", U(*generation)), ("path", S(path.clone()))]
            }
            IncidentOpened {
                source,
                wasted_ns,
                detect_ns,
            } => vec![
                ("source", S(source.clone())),
                ("wasted_ns", U(*wasted_ns)),
                ("detect_ns", U(*detect_ns)),
            ],
            IncidentClosed {
                source,
                downtime_ns,
                repairs,
                resolved,
            } => vec![
                ("source", S(source.clone())),
                ("downtime_ns", U(*downtime_ns)),
                ("repairs", U(*repairs)),
                ("resolved", U(*resolved)),
            ],
            MigrationCompleted {
                path,
                file_bytes,
                actual_ns,
                predicted_ns,
            } => vec![
                ("path", S(path.clone())),
                ("file_bytes", U(*file_bytes)),
                ("actual_ns", U(*actual_ns)),
                ("predicted_ns", U(*predicted_ns)),
            ],
            IntervalRetuned {
                interval_ns,
                mtbf_ns,
            } => vec![("interval_ns", U(*interval_ns)), ("mtbf_ns", U(*mtbf_ns))],
            FaultInjected { fault, detail } => {
                vec![("fault", S(fault.clone())), ("detail", S(detail.clone()))]
            }
            ChunkDeduped {
                store,
                generation,
                chunks,
                raw_bytes,
            } => vec![
                ("store", S(store.clone())),
                ("generation", U(*generation)),
                ("chunks", U(*chunks)),
                ("raw_bytes", U(*raw_bytes)),
            ],
            ChunkCompressed {
                store,
                generation,
                chunks,
                raw_bytes,
                stored_bytes,
                compress_ns,
            } => vec![
                ("store", S(store.clone())),
                ("generation", U(*generation)),
                ("chunks", U(*chunks)),
                ("raw_bytes", U(*raw_bytes)),
                ("stored_bytes", U(*stored_bytes)),
                ("compress_ns", U(*compress_ns)),
            ],
            ChannelObserved {
                channel,
                busy_ns,
                ops,
            } => vec![
                ("channel", S(channel.clone())),
                ("busy_ns", U(*busy_ns)),
                ("ops", U(*ops)),
            ],
            CowForked {
                path,
                buffer,
                chunks,
                bytes,
                stall_ns,
            } => vec![
                ("path", S(path.clone())),
                ("buffer", U(*buffer)),
                ("chunks", U(*chunks)),
                ("bytes", U(*bytes)),
                ("stall_ns", U(*stall_ns)),
            ],
            LiveDrainCompleted {
                path,
                buffers,
                forked_chunks,
                forked_bytes,
                drained_bytes,
                stall_ns,
                drain_ns,
                file_bytes,
            } => vec![
                ("path", S(path.clone())),
                ("buffers", U(*buffers)),
                ("forked_chunks", U(*forked_chunks)),
                ("forked_bytes", U(*forked_bytes)),
                ("drained_bytes", U(*drained_bytes)),
                ("stall_ns", U(*stall_ns)),
                ("drain_ns", U(*drain_ns)),
                ("file_bytes", U(*file_bytes)),
            ],
            TenantPreempted {
                job,
                node,
                generation,
                policy,
            } => vec![
                ("job", S(job.clone())),
                ("node", U(*node)),
                ("generation", U(*generation)),
                ("policy", S(policy.clone())),
            ],
            TenantMigrated {
                job,
                from_node,
                to_node,
                live,
            } => vec![
                ("job", S(job.clone())),
                ("from_node", U(*from_node)),
                ("to_node", U(*to_node)),
                ("live", U(*live)),
            ],
            TenantCompleted {
                job,
                node,
                latency_ns,
                preemptions,
                migrations,
                generations,
                bit_exact,
                slo_ok,
            } => vec![
                ("job", S(job.clone())),
                ("node", U(*node)),
                ("latency_ns", U(*latency_ns)),
                ("preemptions", U(*preemptions)),
                ("migrations", U(*migrations)),
                ("generations", U(*generations)),
                ("bit_exact", U(*bit_exact)),
                ("slo_ok", U(*slo_ok)),
            ],
            StoreTruncated { path, dropped } => {
                vec![("path", S(path.clone())), ("dropped", U(*dropped))]
            }
            FalsePositive { source, induced_ns } => vec![
                ("source", S(source.clone())),
                ("induced_ns", U(*induced_ns)),
            ],
            WriterFenced {
                generation,
                held_epoch,
                current_epoch,
                path,
            } => vec![
                ("generation", U(*generation)),
                ("held_epoch", U(*held_epoch)),
                ("current_epoch", U(*current_epoch)),
                ("path", S(path.clone())),
            ],
            AdmissionRejected { job, backlog_ns } => {
                vec![("job", S(job.clone())), ("backlog_ns", U(*backlog_ns))]
            }
        }
    }

    fn from_fields(kind: &str, map: &BTreeMap<String, FieldVal>) -> Result<EventKind, ObsError> {
        let u = |k: &str| -> Result<u64, ObsError> {
            map.get(k)
                .and_then(FieldVal::as_u64)
                .ok_or_else(|| ObsError::Field(kind.to_string(), k.to_string()))
        };
        let s = |k: &str| -> Result<String, ObsError> {
            map.get(k)
                .and_then(FieldVal::as_str)
                .map(str::to_string)
                .ok_or_else(|| ObsError::Field(kind.to_string(), k.to_string()))
        };
        Ok(match kind {
            "checkpoint_committed" => EventKind::CheckpointCommitted {
                path: s("path")?,
                format: s("format")?,
                policy: s("policy")?,
                bases: split_list(&s("bases")?),
                buffers: u("buffers")?,
                skipped: u("skipped")?,
                chunks: u("chunks")?,
                logical_bytes: u("logical_bytes")?,
                file_bytes: u("file_bytes")?,
                sync_ns: u("sync_ns")?,
                preprocess_ns: u("preprocess_ns")?,
                write_ns: u("write_ns")?,
                postprocess_ns: u("postprocess_ns")?,
                cost_ns: u("cost_ns")?,
            },
            "checkpoint_accounted" => EventKind::CheckpointAccounted {
                cost_ns: u("cost_ns")?,
                progress: u("progress")?,
            },
            "restore_started" => EventKind::RestoreStarted {
                path: s("path")?,
                format: s("format")?,
            },
            "restore_completed" => EventKind::RestoreCompleted {
                path: s("path")?,
                objects: u("objects")?,
                cost_ns: u("cost_ns")?,
            },
            "generation_committed" => EventKind::GenerationCommitted {
                generation: u("generation")?,
                path: s("path")?,
                bytes: u("bytes")?,
                checksum: u("checksum")?,
                replicas: split_list(&s("replicas")?),
            },
            "generation_retired" => EventKind::GenerationRetired {
                generation: u("generation")?,
                path: s("path")?,
            },
            "replica_scrubbed" => EventKind::ReplicaScrubbed {
                generation: u("generation")?,
                path: s("path")?,
                verified: u("verified")?,
            },
            "replica_repaired" => EventKind::ReplicaRepaired {
                generation: u("generation")?,
                path: s("path")?,
                replica: s("replica")?,
            },
            "replica_lost" => EventKind::ReplicaLost {
                generation: u("generation")?,
                path: s("path")?,
            },
            "incident_opened" => EventKind::IncidentOpened {
                source: s("source")?,
                wasted_ns: u("wasted_ns")?,
                detect_ns: u("detect_ns")?,
            },
            "incident_closed" => EventKind::IncidentClosed {
                source: s("source")?,
                downtime_ns: u("downtime_ns")?,
                repairs: u("repairs")?,
                resolved: u("resolved")?,
            },
            "migration_completed" => EventKind::MigrationCompleted {
                path: s("path")?,
                file_bytes: u("file_bytes")?,
                actual_ns: u("actual_ns")?,
                predicted_ns: u("predicted_ns")?,
            },
            "interval_retuned" => EventKind::IntervalRetuned {
                interval_ns: u("interval_ns")?,
                mtbf_ns: u("mtbf_ns")?,
            },
            "fault_injected" => EventKind::FaultInjected {
                fault: s("fault")?,
                detail: s("detail")?,
            },
            "chunk_deduped" => EventKind::ChunkDeduped {
                store: s("store")?,
                generation: u("generation")?,
                chunks: u("chunks")?,
                raw_bytes: u("raw_bytes")?,
            },
            "chunk_compressed" => EventKind::ChunkCompressed {
                store: s("store")?,
                generation: u("generation")?,
                chunks: u("chunks")?,
                raw_bytes: u("raw_bytes")?,
                stored_bytes: u("stored_bytes")?,
                compress_ns: u("compress_ns")?,
            },
            "channel_observed" => EventKind::ChannelObserved {
                channel: s("channel")?,
                busy_ns: u("busy_ns")?,
                ops: u("ops")?,
            },
            "cow_forked" => EventKind::CowForked {
                path: s("path")?,
                buffer: u("buffer")?,
                chunks: u("chunks")?,
                bytes: u("bytes")?,
                stall_ns: u("stall_ns")?,
            },
            "live_drain_completed" => EventKind::LiveDrainCompleted {
                path: s("path")?,
                buffers: u("buffers")?,
                forked_chunks: u("forked_chunks")?,
                forked_bytes: u("forked_bytes")?,
                drained_bytes: u("drained_bytes")?,
                stall_ns: u("stall_ns")?,
                drain_ns: u("drain_ns")?,
                file_bytes: u("file_bytes")?,
            },
            "tenant_preempted" => EventKind::TenantPreempted {
                job: s("job")?,
                node: u("node")?,
                generation: u("generation")?,
                policy: s("policy")?,
            },
            "tenant_migrated" => EventKind::TenantMigrated {
                job: s("job")?,
                from_node: u("from_node")?,
                to_node: u("to_node")?,
                live: u("live")?,
            },
            "tenant_completed" => EventKind::TenantCompleted {
                job: s("job")?,
                node: u("node")?,
                latency_ns: u("latency_ns")?,
                preemptions: u("preemptions")?,
                migrations: u("migrations")?,
                generations: u("generations")?,
                bit_exact: u("bit_exact")?,
                slo_ok: u("slo_ok")?,
            },
            "store_truncated" => EventKind::StoreTruncated {
                path: s("path")?,
                dropped: u("dropped")?,
            },
            "false_positive" => EventKind::FalsePositive {
                source: s("source")?,
                induced_ns: u("induced_ns")?,
            },
            "writer_fenced" => EventKind::WriterFenced {
                generation: u("generation")?,
                held_epoch: u("held_epoch")?,
                current_epoch: u("current_epoch")?,
                path: s("path")?,
            },
            "admission_rejected" => EventKind::AdmissionRejected {
                job: s("job")?,
                backlog_ns: u("backlog_ns")?,
            },
            other => return Err(ObsError::Kind(other.to_string())),
        })
    }
}

// ---------------------------------------------------------------------
// Thread-local recording
// ---------------------------------------------------------------------

thread_local! {
    static LEDGER: RefCell<Option<Ledger>> = const { RefCell::new(None) };
}

/// `true` while a ledger is installed on this thread.
pub fn enabled() -> bool {
    LEDGER.with(|l| l.borrow().is_some())
}

/// Install a fresh ledger on this thread, discarding any existing one.
pub fn start_recording() {
    LEDGER.with(|l| *l.borrow_mut() = Some(Ledger::default()));
}

/// Detach and return the thread's ledger; recording stops.
pub fn stop_recording() -> Option<Ledger> {
    LEDGER.with(|l| l.borrow_mut().take())
}

/// Number of events recorded so far on this thread (0 when recording
/// is off). The crash-point torture harness uses this as its
/// deterministic boundary counter: every obs event is a point where a
/// real crash could land between two externally visible effects.
pub fn event_count() -> usize {
    LEDGER.with(|l| l.borrow().as_ref().map_or(0, Ledger::len))
}

/// Append one event at virtual time `t`. No-op when recording is off.
/// Emission is pure bookkeeping — it never advances a clock, so an
/// instrumented run is bit-identical in virtual time to a bare one.
pub fn emit(component: &str, t: SimTime, kind: EventKind) {
    LEDGER.with(|l| {
        if let Some(ledger) = l.borrow_mut().as_mut() {
            ledger.push(component, t, kind);
        }
    });
}

// ---------------------------------------------------------------------
// Ledger
// ---------------------------------------------------------------------

/// Error raised by the JSONL parser or lineage verification.
#[derive(Debug, PartialEq)]
pub enum ObsError {
    /// A line was not a flat JSON object.
    Parse(usize, String),
    /// Unknown event kind.
    Kind(String),
    /// A kind was missing a field (kind, field).
    Field(String, String),
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Parse(line, why) => write!(f, "jsonl line {line}: {why}"),
            ObsError::Kind(k) => write!(f, "unknown event kind {k:?}"),
            ObsError::Field(k, field) => write!(f, "event {k:?} missing field {field:?}"),
        }
    }
}

impl std::error::Error for ObsError {}

/// The append-only event ledger of one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Ledger {
    events: Vec<Event>,
}

impl Ledger {
    fn push(&mut self, component: &str, t: SimTime, kind: EventKind) {
        let id = self.events.len() as u64;
        self.events.push(Event {
            id,
            t,
            component: component.to_string(),
            kind,
        });
    }

    /// All events in emission (id) order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events sorted by `(t, id)` — virtual-time order with emission
    /// order breaking ties, so the ordering is total and stable.
    pub fn sorted(&self) -> Vec<&Event> {
        let mut out: Vec<&Event> = self.events.iter().collect();
        out.sort_by_key(|e| (e.t, e.id));
        out
    }

    /// Query by kind name, component and/or closed time window; `None`
    /// matches everything. Results come back in `(t, id)` order.
    pub fn query(
        &self,
        kind: Option<&str>,
        component: Option<&str>,
        window: Option<(SimTime, SimTime)>,
    ) -> Vec<&Event> {
        self.sorted()
            .into_iter()
            .filter(|e| kind.is_none_or(|k| e.kind.name() == k))
            .filter(|e| component.is_none_or(|c| e.component == c))
            .filter(|e| window.is_none_or(|(lo, hi)| e.t >= lo && e.t <= hi))
            .collect()
    }

    /// Fold a `u64` projection of every event into a mergeable
    /// histogram (`None` projections are skipped). The basis of every
    /// p50/p95/p99 column in `checl_inspect`.
    pub fn digest<F>(&self, f: F) -> Histogram
    where
        F: Fn(&Event) -> Option<u64>,
    {
        let mut h = Histogram::default();
        for e in &self.events {
            if let Some(v) = f(e) {
                h.observe(v);
            }
        }
        h
    }

    /// Aggregate channel utilization: channel name → (busy_ns, ops),
    /// summed over every [`EventKind::ChannelObserved`] record.
    pub fn channel_utilization(&self) -> BTreeMap<String, (u64, u64)> {
        let mut out: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for e in &self.events {
            if let EventKind::ChannelObserved {
                channel,
                busy_ns,
                ops,
            } = &e.kind
            {
                let entry = out.entry(channel.clone()).or_insert((0, 0));
                entry.0 += busy_ns;
                entry.1 += ops;
            }
        }
        out
    }

    /// Serialize to JSON Lines, one flat object per event in `(t, id)`
    /// order. Byte-deterministic: fixed key order, integer-only
    /// numbers.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.sorted() {
            out.push_str("{\"id\":");
            out.push_str(&e.id.to_string());
            out.push_str(",\"t\":");
            out.push_str(&e.t.as_nanos().to_string());
            out.push_str(",\"component\":\"");
            out.push_str(&json_escape(&e.component));
            out.push_str("\",\"kind\":\"");
            out.push_str(e.kind.name());
            out.push('"');
            for (k, v) in e.kind.fields() {
                out.push_str(",\"");
                out.push_str(k);
                out.push_str("\":");
                match v {
                    FieldVal::U(n) => out.push_str(&n.to_string()),
                    FieldVal::S(s) => {
                        out.push('"');
                        out.push_str(&json_escape(&s));
                        out.push('"');
                    }
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Parse a ledger back from [`Ledger::to_jsonl`] output. Events are
    /// stored in the file's order; ids are taken from the records.
    pub fn from_jsonl(text: &str) -> Result<Ledger, ObsError> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let map = parse_flat_object(line).map_err(|e| ObsError::Parse(i + 1, e))?;
            let get_u = |k: &str| -> Result<u64, ObsError> {
                map.get(k)
                    .and_then(FieldVal::as_u64)
                    .ok_or_else(|| ObsError::Parse(i + 1, format!("missing {k:?}")))
            };
            let kind_name = map
                .get("kind")
                .and_then(FieldVal::as_str)
                .ok_or_else(|| ObsError::Parse(i + 1, "missing \"kind\"".into()))?
                .to_string();
            let component = map
                .get("component")
                .and_then(FieldVal::as_str)
                .ok_or_else(|| ObsError::Parse(i + 1, "missing \"component\"".into()))?
                .to_string();
            events.push(Event {
                id: get_u("id")?,
                t: SimTime::from_nanos(get_u("t")?),
                component,
                kind: EventKind::from_fields(&kind_name, &map)?,
            });
        }
        Ok(Ledger { events })
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse one flat JSON object (string / unsigned-integer values only —
/// exactly what [`Ledger::to_jsonl`] emits). Hand-rolled because the
/// workspace carries no external dependencies.
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, FieldVal>, String> {
    let bytes: Vec<char> = line.chars().collect();
    let mut pos = 0usize;
    let mut map = BTreeMap::new();

    fn skip_ws(bytes: &[char], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[char], pos: &mut usize, c: char) -> Result<(), String> {
        skip_ws(bytes, pos);
        if *pos < bytes.len() && bytes[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {c:?} at {pos}"))
        }
    }

    fn parse_string(bytes: &[char], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, '"')?;
        let mut out = String::new();
        while *pos < bytes.len() {
            let c = bytes[*pos];
            *pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let e = *bytes.get(*pos).ok_or("dangling escape")?;
                    *pos += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            if *pos + 4 > bytes.len() {
                                return Err("short \\u escape".into());
                            }
                            let hex: String = bytes[*pos..*pos + 4].iter().collect();
                            *pos += 4;
                            let code = u32::from_str_radix(&hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or(format!("bad \\u{hex}"))?);
                        }
                        other => return Err(format!("bad escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    expect(&bytes, &mut pos, '{')?;
    skip_ws(&bytes, &mut pos);
    if pos < bytes.len() && bytes[pos] == '}' {
        return Ok(map);
    }
    loop {
        skip_ws(&bytes, &mut pos);
        let key = parse_string(&bytes, &mut pos)?;
        expect(&bytes, &mut pos, ':')?;
        skip_ws(&bytes, &mut pos);
        let val = if pos < bytes.len() && bytes[pos] == '"' {
            FieldVal::S(parse_string(&bytes, &mut pos)?)
        } else {
            let start = pos;
            while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                pos += 1;
            }
            if pos == start {
                return Err(format!("expected value at {pos}"));
            }
            let num: String = bytes[start..pos].iter().collect();
            FieldVal::U(num.parse::<u64>().map_err(|e| e.to_string())?)
        };
        map.insert(key, val);
        skip_ws(&bytes, &mut pos);
        match bytes.get(pos) {
            Some(',') => pos += 1,
            Some('}') => break,
            _ => return Err(format!("expected ',' or '}}' at {pos}")),
        }
    }
    Ok(map)
}

// ---------------------------------------------------------------------
// Provenance graph
// ---------------------------------------------------------------------

/// Outcome of one scrub touch on a generation.
#[derive(Clone, Debug, PartialEq)]
pub enum ScrubOutcome {
    /// `n` replicas verified clean.
    Verified(u64),
    /// The named replica was rewritten from a healthy copy.
    Repaired(String),
    /// Every replica was damaged.
    Lost,
}

/// One dump file in the provenance graph.
#[derive(Clone, Debug, PartialEq)]
pub struct DumpNode {
    /// Committed path (graph key).
    pub path: String,
    /// On-disk format.
    pub format: String,
    /// Policy lattice point that produced it.
    pub policy: String,
    /// Paths of the dumps this one's skipped buffers live in.
    pub bases: Vec<String>,
    /// Live buffers considered / skipped by incremental dedup.
    pub buffers: u64,
    /// Buffers skipped.
    pub skipped: u64,
    /// Chunks written (streamed only).
    pub chunks: u64,
    /// Logical bytes across live buffers.
    pub logical_bytes: u64,
    /// Serialized on-disk size.
    pub file_bytes: u64,
    /// Commit instant.
    pub committed_at: SimTime,
    /// Vault generation number, when committed to a vault.
    pub generation: Option<u64>,
    /// FNV-64 of the stored bytes, recorded by the vault commit.
    pub checksum: Option<u64>,
    /// Replica paths (primary first), when vault-committed.
    pub replicas: Vec<String>,
    /// Scrub history in event order.
    pub scrubs: Vec<(SimTime, ScrubOutcome)>,
    /// `true` once the vault garbage-collected the generation.
    pub retired: bool,
    /// `true` when a scrub declared every replica damaged.
    pub lost: bool,
}

/// The dump-lineage graph derived from a ledger: nodes keyed by path,
/// edges from each incremental dump to the files holding its skipped
/// buffers' clean bytes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProvenanceGraph {
    nodes: BTreeMap<String, DumpNode>,
}

impl ProvenanceGraph {
    /// Build the graph from checkpoint/vault events in a ledger.
    pub fn from_ledger(ledger: &Ledger) -> ProvenanceGraph {
        let mut nodes: BTreeMap<String, DumpNode> = BTreeMap::new();
        // Generation → primary path, to attach scrub/GC events.
        let mut gen_path: BTreeMap<u64, String> = BTreeMap::new();
        for e in ledger.sorted() {
            match &e.kind {
                EventKind::CheckpointCommitted {
                    path,
                    format,
                    policy,
                    bases,
                    buffers,
                    skipped,
                    chunks,
                    logical_bytes,
                    file_bytes,
                    ..
                } => {
                    // Re-commits to the same path (e.g. round-robin
                    // slots) overwrite: the newest dump is the live
                    // one.
                    nodes.insert(
                        path.clone(),
                        DumpNode {
                            path: path.clone(),
                            format: format.clone(),
                            policy: policy.clone(),
                            bases: bases.clone(),
                            buffers: *buffers,
                            skipped: *skipped,
                            chunks: *chunks,
                            logical_bytes: *logical_bytes,
                            file_bytes: *file_bytes,
                            committed_at: e.t,
                            generation: None,
                            checksum: None,
                            replicas: Vec::new(),
                            scrubs: Vec::new(),
                            retired: false,
                            lost: false,
                        },
                    );
                }
                EventKind::GenerationCommitted {
                    generation,
                    path,
                    bytes,
                    checksum,
                    replicas,
                } => {
                    gen_path.insert(*generation, path.clone());
                    let node = nodes.entry(path.clone()).or_insert_with(|| DumpNode {
                        path: path.clone(),
                        format: String::new(),
                        policy: String::new(),
                        bases: Vec::new(),
                        buffers: 0,
                        skipped: 0,
                        chunks: 0,
                        logical_bytes: 0,
                        file_bytes: *bytes,
                        committed_at: e.t,
                        generation: None,
                        checksum: None,
                        replicas: Vec::new(),
                        scrubs: Vec::new(),
                        retired: false,
                        lost: false,
                    });
                    node.generation = Some(*generation);
                    node.checksum = Some(*checksum);
                    node.replicas = replicas.clone();
                }
                EventKind::ReplicaScrubbed {
                    generation,
                    verified,
                    ..
                } => {
                    if let Some(node) = gen_path.get(generation).and_then(|p| nodes.get_mut(p)) {
                        node.scrubs.push((e.t, ScrubOutcome::Verified(*verified)));
                    }
                }
                EventKind::ReplicaRepaired {
                    generation,
                    replica,
                    ..
                } => {
                    if let Some(node) = gen_path.get(generation).and_then(|p| nodes.get_mut(p)) {
                        node.scrubs
                            .push((e.t, ScrubOutcome::Repaired(replica.clone())));
                    }
                }
                EventKind::ReplicaLost { generation, .. } => {
                    if let Some(node) = gen_path.get(generation).and_then(|p| nodes.get_mut(p)) {
                        node.scrubs.push((e.t, ScrubOutcome::Lost));
                        node.lost = true;
                    }
                }
                EventKind::GenerationRetired { generation, .. } => {
                    if let Some(node) = gen_path.get(generation).and_then(|p| nodes.get_mut(p)) {
                        node.retired = true;
                    }
                }
                _ => {}
            }
        }
        ProvenanceGraph { nodes }
    }

    /// The node for `path`, if a commit was recorded.
    pub fn node(&self, path: &str) -> Option<&DumpNode> {
        self.nodes.get(path)
    }

    /// All nodes in path order.
    pub fn nodes(&self) -> impl Iterator<Item = &DumpNode> {
        self.nodes.values()
    }

    /// Every file a restore of `path` will touch: the dump itself
    /// first, then its base closure in breadth-first, path-sorted
    /// order. Unknown bases appear as paths with no node.
    pub fn lineage(&self, path: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut queue = vec![path.to_string()];
        while let Some(p) = queue.pop() {
            if out.contains(&p) {
                continue;
            }
            out.push(p.clone());
            if let Some(node) = self.nodes.get(&p) {
                let mut bases = node.bases.clone();
                bases.sort();
                // Depth-first via the stack; reverse keeps sorted
                // visit order.
                for b in bases.into_iter().rev() {
                    queue.push(b);
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// SLO accounting
// ---------------------------------------------------------------------

/// Service-level accounting summed from a ledger's incident and
/// checkpoint events. Because the supervisor emits every quantity at
/// the instant it charges it, these sums reconcile exactly with its
/// internal report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SloSummary {
    /// Supervised horizon the ratios divide by.
    pub horizon: SimDuration,
    /// Σ incident downtime.
    pub downtime: SimDuration,
    /// Σ rolled-back (wasted) work.
    pub wasted: SimDuration,
    /// Σ supervisor-accounted checkpoint cost.
    pub overhead: SimDuration,
    /// Incidents opened.
    pub incidents: u64,
    /// Incidents closed without restoring service.
    pub unresolved: u64,
    /// Repair attempts across all incidents.
    pub repairs: u64,
    /// Checkpoints the supervisor accounted.
    pub checkpoints: u64,
    /// Faults the injection plan recorded.
    pub faults: u64,
    /// Interval retunes.
    pub retunes: u64,
}

impl SloSummary {
    /// Sum a ledger's events over `horizon` of supervised wall-clock.
    pub fn from_ledger(ledger: &Ledger, horizon: SimDuration) -> SloSummary {
        let mut s = SloSummary {
            horizon,
            ..SloSummary::default()
        };
        for e in ledger.events() {
            match &e.kind {
                EventKind::IncidentOpened { wasted_ns, .. } => {
                    s.incidents += 1;
                    s.wasted += SimDuration::from_nanos(*wasted_ns);
                }
                EventKind::IncidentClosed {
                    downtime_ns,
                    repairs,
                    resolved,
                    ..
                } => {
                    s.downtime += SimDuration::from_nanos(*downtime_ns);
                    s.repairs += repairs;
                    if *resolved == 0 {
                        s.unresolved += 1;
                    }
                }
                EventKind::CheckpointAccounted { cost_ns, .. } => {
                    s.checkpoints += 1;
                    s.overhead += SimDuration::from_nanos(*cost_ns);
                }
                EventKind::FaultInjected { .. } => s.faults += 1,
                EventKind::IntervalRetuned { .. } => s.retunes += 1,
                _ => {}
            }
        }
        s
    }

    /// Fraction of the horizon the service was up: `1 − downtime /
    /// horizon` (1.0 for an empty horizon).
    pub fn availability(&self) -> f64 {
        if self.horizon.is_zero() {
            1.0
        } else {
            1.0 - self.downtime.as_secs_f64() / self.horizon.as_secs_f64()
        }
    }

    /// Downtime left under `budget` (zero when overspent).
    pub fn downtime_budget_left(&self, budget: SimDuration) -> SimDuration {
        budget.saturating_sub(self.downtime)
    }

    /// Wasted (rolled-back) work as a fraction of the horizon.
    pub fn wasted_ratio(&self) -> f64 {
        if self.horizon.is_zero() {
            0.0
        } else {
            self.wasted.as_secs_f64() / self.horizon.as_secs_f64()
        }
    }

    /// Checkpoint overhead as a fraction of the horizon.
    pub fn overhead_ratio(&self) -> f64 {
        if self.horizon.is_zero() {
            0.0
        } else {
            self.overhead.as_secs_f64() / self.horizon.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample_ledger() -> Ledger {
        start_recording();
        emit(
            "engine",
            t(100),
            EventKind::CheckpointCommitted {
                path: "/nfs/a.ckpt".into(),
                format: "streamed".into(),
                policy: "streamed+incremental".into(),
                bases: vec![],
                buffers: 4,
                skipped: 0,
                chunks: 8,
                logical_bytes: 4096,
                file_bytes: 4200,
                sync_ns: 10,
                preprocess_ns: 20,
                write_ns: 60,
                postprocess_ns: 10,
                cost_ns: 100,
            },
        );
        emit(
            "engine",
            t(300),
            EventKind::CheckpointCommitted {
                path: "/nfs/b.ckpt".into(),
                format: "streamed".into(),
                policy: "streamed+incremental".into(),
                bases: vec!["/nfs/a.ckpt".into()],
                buffers: 4,
                skipped: 3,
                chunks: 2,
                logical_bytes: 4096,
                file_bytes: 1100,
                sync_ns: 5,
                preprocess_ns: 5,
                write_ns: 20,
                postprocess_ns: 5,
                cost_ns: 35,
            },
        );
        emit(
            "vault",
            t(120),
            EventKind::GenerationCommitted {
                generation: 1,
                path: "/nfs/a.ckpt".into(),
                bytes: 4200,
                checksum: 0xdead,
                replicas: vec!["/nfs/a.ckpt".into(), "/disk/a.ckpt".into()],
            },
        );
        emit(
            "vault",
            t(400),
            EventKind::ReplicaRepaired {
                generation: 1,
                path: "/nfs/a.ckpt".into(),
                replica: "/disk/a.ckpt".into(),
            },
        );
        emit(
            "supervisor",
            t(500),
            EventKind::IncidentOpened {
                source: "proxy_death".into(),
                wasted_ns: 50,
                detect_ns: 10,
            },
        );
        emit(
            "supervisor",
            t(600),
            EventKind::IncidentClosed {
                source: "proxy_death".into(),
                downtime_ns: 110,
                repairs: 1,
                resolved: 1,
            },
        );
        emit(
            "supervisor",
            t(310),
            EventKind::CheckpointAccounted {
                cost_ns: 40,
                progress: 7,
            },
        );
        stop_recording().unwrap()
    }

    #[test]
    fn ids_are_stable_and_sorted_is_time_ordered() {
        let ledger = sample_ledger();
        let ids: Vec<u64> = ledger.events().iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6]);
        let sorted = ledger.sorted();
        let times: Vec<u64> = sorted.iter().map(|e| e.t.as_nanos()).collect();
        assert_eq!(times, vec![100, 120, 300, 310, 400, 500, 600]);
    }

    #[test]
    fn query_filters_by_kind_component_window() {
        let ledger = sample_ledger();
        assert_eq!(
            ledger.query(Some("checkpoint_committed"), None, None).len(),
            2
        );
        assert_eq!(ledger.query(None, Some("vault"), None).len(), 2);
        assert_eq!(
            ledger
                .query(None, None, Some((t(300), t(500))))
                .iter()
                .map(|e| e.t.as_nanos())
                .collect::<Vec<_>>(),
            vec![300, 310, 400, 500]
        );
        assert_eq!(
            ledger
                .query(Some("incident_opened"), Some("supervisor"), None)
                .len(),
            1
        );
    }

    #[test]
    fn jsonl_roundtrip_is_exact() {
        let ledger = sample_ledger();
        let text = ledger.to_jsonl();
        let back = Ledger::from_jsonl(&text).unwrap();
        // Parsed events compare equal (order is (t, id) after
        // roundtrip, so compare as sorted sets).
        let a: Vec<&Event> = ledger.sorted();
        let b: Vec<&Event> = back.sorted();
        assert_eq!(a, b);
        // And re-serialization is byte-identical.
        assert_eq!(text, back.to_jsonl());
    }

    #[test]
    fn tenant_kinds_roundtrip_exactly() {
        start_recording();
        emit(
            "fleet",
            t(10),
            EventKind::TenantPreempted {
                job: "j0042.nbody".into(),
                node: 3,
                generation: 2,
                policy: "streamed+incremental+pipelined".into(),
            },
        );
        emit(
            "fleet",
            t(20),
            EventKind::TenantMigrated {
                job: "j0042.nbody".into(),
                from_node: 3,
                to_node: 1,
                live: 0,
            },
        );
        emit(
            "fleet",
            t(30),
            EventKind::TenantCompleted {
                job: "j0042.nbody".into(),
                node: 1,
                latency_ns: 123_456,
                preemptions: 1,
                migrations: 1,
                generations: 2,
                bit_exact: 1,
                slo_ok: 1,
            },
        );
        let ledger = stop_recording().unwrap();
        let text = ledger.to_jsonl();
        let back = Ledger::from_jsonl(&text).unwrap();
        assert_eq!(ledger, back);
        assert_eq!(text, back.to_jsonl());
    }

    #[test]
    fn jsonl_escapes_awkward_strings() {
        start_recording();
        emit(
            "fault",
            t(1),
            EventKind::FaultInjected {
                fault: "disk_write_fail".into(),
                detail: "path=\"/nfs/w\\x\"\n\ttab".into(),
            },
        );
        let ledger = stop_recording().unwrap();
        let text = ledger.to_jsonl();
        let back = Ledger::from_jsonl(&text).unwrap();
        assert_eq!(ledger, back);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Ledger::from_jsonl("{\"id\":0}").is_err());
        assert!(Ledger::from_jsonl("not json").is_err());
        assert!(
            Ledger::from_jsonl("{\"id\":0,\"t\":1,\"component\":\"x\",\"kind\":\"mystery\"}")
                .is_err()
        );
    }

    #[test]
    fn provenance_links_bases_and_vault_data() {
        let ledger = sample_ledger();
        let graph = ProvenanceGraph::from_ledger(&ledger);
        let a = graph.node("/nfs/a.ckpt").unwrap();
        assert_eq!(a.generation, Some(1));
        assert_eq!(a.checksum, Some(0xdead));
        assert_eq!(a.replicas.len(), 2);
        assert_eq!(a.scrubs.len(), 1);
        assert!(matches!(a.scrubs[0].1, ScrubOutcome::Repaired(_)));
        let lineage = graph.lineage("/nfs/b.ckpt");
        assert_eq!(
            lineage,
            vec!["/nfs/b.ckpt".to_string(), "/nfs/a.ckpt".to_string()]
        );
    }

    #[test]
    fn lineage_handles_diamonds_without_duplicates() {
        start_recording();
        let base = |path: &str, bases: Vec<String>| EventKind::CheckpointCommitted {
            path: path.into(),
            format: "streamed".into(),
            policy: "p".into(),
            bases,
            buffers: 1,
            skipped: 0,
            chunks: 1,
            logical_bytes: 1,
            file_bytes: 1,
            sync_ns: 0,
            preprocess_ns: 0,
            write_ns: 0,
            postprocess_ns: 0,
            cost_ns: 0,
        };
        emit("engine", t(1), base("/a", vec![]));
        emit("engine", t(2), base("/b", vec!["/a".into()]));
        emit("engine", t(3), base("/c", vec!["/a".into()]));
        emit("engine", t(4), base("/d", vec!["/b".into(), "/c".into()]));
        let graph = ProvenanceGraph::from_ledger(&stop_recording().unwrap());
        let lineage = graph.lineage("/d");
        assert_eq!(
            lineage,
            vec![
                "/d".to_string(),
                "/b".to_string(),
                "/a".to_string(),
                "/c".to_string()
            ]
        );
    }

    #[test]
    fn slo_sums_reconcile() {
        let ledger = sample_ledger();
        let slo = SloSummary::from_ledger(&ledger, SimDuration::from_nanos(1000));
        assert_eq!(slo.incidents, 1);
        assert_eq!(slo.downtime, SimDuration::from_nanos(110));
        assert_eq!(slo.wasted, SimDuration::from_nanos(50));
        assert_eq!(slo.overhead, SimDuration::from_nanos(40));
        assert_eq!(slo.checkpoints, 1);
        assert_eq!(slo.unresolved, 0);
        assert!((slo.availability() - 0.89).abs() < 1e-9);
        assert_eq!(
            slo.downtime_budget_left(SimDuration::from_nanos(200)),
            SimDuration::from_nanos(90)
        );
    }

    #[test]
    fn emit_without_recording_is_a_no_op() {
        assert!(!enabled());
        emit(
            "engine",
            t(1),
            EventKind::RestoreStarted {
                path: "/x".into(),
                format: "sequential".into(),
            },
        );
        assert!(stop_recording().is_none());
    }
}
