//! A tiny, dependency-free property-test harness on [`SplitMix64`].
//!
//! The workspace must build and test offline (path dependencies only),
//! so it cannot pull in `proptest`. This module provides the subset the
//! test suite actually needs: a seeded [`Gen`] with convenience
//! generators, and [`qcheck`] which runs a property over many derived
//! seeds and reports the failing seed so a case can be replayed by
//! pinning it.
//!
//! There is no shrinking; cases are kept small instead. Seeds derive
//! deterministically from the property name, so runs are reproducible
//! across machines and sessions.

use crate::checksum::fnv1a64;
use crate::rng::SplitMix64;

/// A deterministic generator of arbitrary test inputs.
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Gen {
        Gen {
            rng: SplitMix64::new(seed),
        }
    }

    /// Uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    /// Uniform byte.
    pub fn byte(&mut self) -> u8 {
        (self.rng.next_u64() >> 56) as u8
    }

    /// Uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.rng.next_below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.rng.next_f32() * (hi - lo)
    }

    /// `len` arbitrary bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.rng.fill_bytes(&mut buf);
        buf
    }

    /// An identifier matching `[a-z][a-z0-9_]*` with length in
    /// `[min_len, max_len]`.
    pub fn ident(&mut self, min_len: usize, max_len: usize) -> String {
        const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
        const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
        let len = self.usize_in(min_len, max_len + 1).max(1);
        let mut s = String::with_capacity(len);
        s.push(FIRST[self.usize_in(0, FIRST.len())] as char);
        for _ in 1..len {
            s.push(REST[self.usize_in(0, REST.len())] as char);
        }
        s
    }

    /// A reference to a uniformly chosen element of `xs`.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.usize_in(0, xs.len())]
    }
}

/// Run `prop` over `cases` deterministic seeds derived from `name`.
/// On panic, the failing case index and seed are printed before the
/// panic propagates, so the case can be replayed with
/// `prop(&mut Gen::new(seed))`.
pub fn qcheck(name: &str, cases: u32, mut prop: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let seed = fnv1a64(name.as_bytes()) ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(&mut Gen::new(seed))));
        if let Err(payload) = result {
            eprintln!("qcheck '{name}' failed at case {case}/{cases} (seed {seed:#018x})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let mut a = Gen::new(5);
        let mut b = Gen::new(5);
        for _ in 0..32 {
            assert_eq!(a.u64(), b.u64());
            assert_eq!(a.ident(1, 8), b.ident(1, 8));
        }
    }

    #[test]
    fn range_and_ident_shapes() {
        qcheck("range_and_ident_shapes", 64, |g| {
            let v = g.range(10, 20);
            assert!((10..20).contains(&v));
            let id = g.ident(1, 12);
            assert!(!id.is_empty() && id.len() <= 12);
            assert!(id.as_bytes()[0].is_ascii_lowercase());
        });
    }
}
