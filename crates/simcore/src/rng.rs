//! Deterministic pseudo-randomness for workload data generation.
//!
//! The simulator itself is fully deterministic; randomness only appears
//! when workloads fill their input buffers. SplitMix64 is tiny, fast,
//! and has no crate dependency, so workload inputs are identical across
//! runs and platforms — a requirement for the bit-exact
//! checkpoint/restart correctness tests.

/// SplitMix64 generator (Steele, Lea, Flood 2014).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Rejection-free multiply-shift; bias is negligible for the
        // bounds used in workload generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Fill `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_output() {
        // Reference value for SplitMix64 seeded with 0.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let f = r.next_f32();
            assert!((0.0..1.0).contains(&f));
            let d = r.next_f64();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn fill_bytes_handles_ragged_lengths() {
        let mut r = SplitMix64::new(1);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 8 {
                // Overwhelmingly unlikely to be all zero.
                assert!(buf.iter().any(|&b| b != 0), "len={len}");
            }
        }
    }
}
