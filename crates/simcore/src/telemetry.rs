//! Virtual-clock telemetry: trace spans, instants, async command
//! tracks, and a counters/gauges/histograms registry, all behind a
//! [`TraceSink`] installed per thread.
//!
//! Every timestamp is a [`SimTime`] — the simulation's virtual clock —
//! so two identical runs produce *byte-identical* traces. The layer is
//! dormant by default: no sink is installed, [`enabled`] is a single
//! thread-local boolean read, and every emit helper returns before
//! building its payload. Instrumentation sites therefore guard any
//! argument construction with `if telemetry::enabled() { ... }` and pay
//! nearly nothing when tracing is off.
//!
//! Event coordinates follow the Chrome trace-event model: a [`Track`]
//! is a `(pid, tid)` pair. The simulation maps its own notions onto
//! them — a simulated process is a `pid`, `tid 0` is the process's CPU
//! timeline, and each OpenCL command queue gets its own `tid` so
//! device-side command lifetimes render as parallel async rows under
//! the owning process.
//!
//! [`export_chrome_trace`] serializes a recording into the Chrome
//! trace-event JSON array format, loadable in Perfetto or
//! `chrome://tracing`. [`validate`] checks structural invariants (span
//! balance and nesting per track, async begin/end pairing) plus the
//! CheCL checkpoint-quiescence invariant: between the end of the
//! checkpoint `sync` phase and the start of the BLCR `write` phase, no
//! application-facing API-call span may open anywhere in the trace.

use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------

/// A timeline in the trace: a simulated process (`pid`) and a row
/// within it (`tid`). `tid 0` is the process's own CPU timeline;
/// nonzero tids are device-side rows (command queues).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    /// Simulated process id.
    pub pid: u64,
    /// Row within the process; 0 = the process timeline itself.
    pub tid: u64,
}

impl Track {
    /// The cluster-wide track (pid 0) used for events that belong to no
    /// single process, e.g. migration stages and global snapshots.
    pub const CLUSTER: Track = Track { pid: 0, tid: 0 };

    /// The CPU timeline of a simulated process.
    pub fn process(pid: u64) -> Track {
        Track { pid, tid: 0 }
    }

    /// A device-side row under the same process.
    pub fn with_tid(self, tid: u64) -> Track {
        Track { pid: self.pid, tid }
    }
}

/// A typed span/instant argument value.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (byte counts, handle counts, ids).
    U64(u64),
    /// Floating point (ratios, bandwidths, seconds).
    F64(f64),
    /// Free-form text (paths, vendor names, modes).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}
impl From<SimDuration> for ArgValue {
    fn from(v: SimDuration) -> Self {
        ArgValue::U64(v.as_nanos())
    }
}

/// Ordered key/value arguments attached to an event.
pub type Args = Vec<(&'static str, ArgValue)>;

/// What an event marks on its track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Open a synchronous span (stack discipline per track).
    SpanBegin,
    /// Close the innermost open span of the same name on the track.
    SpanEnd,
    /// A point event.
    Instant,
    /// Open an async operation identified by `TraceEvent::id` — used
    /// for device command lifetimes that overlap on one queue row.
    AsyncBegin,
    /// Close the async operation with the same id.
    AsyncEnd,
    /// A sampled counter value (rendered as a counter track).
    CounterSample,
}

/// One trace event. Ordering within a recording is emission order,
/// which for a single-threaded simulation is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Virtual timestamp.
    pub t: SimTime,
    /// Timeline the event belongs to.
    pub track: Track,
    /// Event kind.
    pub kind: EventKind,
    /// Category, e.g. `"api"`, `"cpr"`, `"queue"`, `"ipc"`, `"mpi"`.
    pub cat: &'static str,
    /// Event name (span name / instant label / counter name).
    pub name: String,
    /// Pairing id for async events; 0 for everything else.
    pub id: u64,
    /// Attached arguments.
    pub args: Args,
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

/// A power-of-two-bucketed histogram of `u64` observations.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// `buckets[i]` counts observations `v` with `floor(log2(v)) == i`
    /// (`v == 0` lands in bucket 0).
    pub buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        self.sum += v;
        let bucket = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `p`-quantile (`0.0 ≤ p ≤ 1.0`), or `None` when the
    /// histogram is empty.
    ///
    /// Walks the power-of-two buckets to the one holding the target
    /// rank and interpolates linearly inside it, clamped to the
    /// observed `[min, max]` range so the estimate never leaves the
    /// data. Deterministic: integer bucket walk plus one fixed-point
    /// interpolation, so merged and replayed histograms agree exactly.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based, in [1, count].
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                // Interpolate within bucket i: values span
                // [2^i, 2^(i+1)) (bucket 0 also holds v == 0).
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let width = if i == 0 { 1u64 } else { 1u64 << i };
                let into = rank - seen; // 1..=n
                let est = lo + width.saturating_mul(into - 1) / n;
                return Some(est.clamp(self.min, self.max));
            }
            seen += n;
        }
        Some(self.max)
    }

    /// Fold another histogram into this one. Merging is commutative
    /// and associative (all fields are sums, mins or maxes), so
    /// per-shard digests can be combined in any order.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.count += other.count;
        self.sum += other.sum;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

/// The counters/gauges/histograms registry accumulated by a
/// [`Recorder`]. `BTreeMap` keys give deterministic iteration order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms of `u64` observations (typically nanoseconds or bytes).
    pub histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Counter value, 0 if never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

/// Receiver for telemetry. The simulation emits through free functions
/// ([`span_begin`], [`counter_add`], …) which forward to the sink
/// installed on the current thread — or do nothing when none is.
pub trait TraceSink {
    /// Receive one trace event.
    fn event(&mut self, ev: TraceEvent);
    /// Add to a monotonic counter.
    fn counter_add(&mut self, _name: &str, _delta: u64) {}
    /// Set a gauge.
    fn gauge_set(&mut self, _name: &str, _value: f64) {}
    /// Record a histogram observation.
    fn observe(&mut self, _name: &str, _value: u64) {}
    /// Name a process track.
    fn name_process(&mut self, _pid: u64, _name: &str) {}
    /// Name a thread (row) within a process track.
    fn name_thread(&mut self, _pid: u64, _tid: u64, _name: &str) {}
}

/// A sink that drops everything. Installing it exercises the emit path
/// (for overhead measurements) without retaining data.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&mut self, _ev: TraceEvent) {}
}

/// In-memory sink: retains every event in order plus the metrics
/// registry and track names. This is what `--trace` and the tests use.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Recorder {
    /// All events in emission order.
    pub events: Vec<TraceEvent>,
    /// Accumulated metrics.
    pub metrics: Metrics,
    /// Process display names.
    pub process_names: BTreeMap<u64, String>,
    /// Row display names, keyed by `(pid, tid)`.
    pub thread_names: BTreeMap<(u64, u64), String>,
}

impl TraceSink for Recorder {
    fn event(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
    fn counter_add(&mut self, name: &str, delta: u64) {
        *self.metrics.counters.entry(name.to_string()).or_insert(0) += delta;
    }
    fn gauge_set(&mut self, name: &str, value: f64) {
        self.metrics.gauges.insert(name.to_string(), value);
    }
    fn observe(&mut self, name: &str, value: u64) {
        self.metrics
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }
    fn name_process(&mut self, pid: u64, name: &str) {
        self.process_names
            .entry(pid)
            .or_insert_with(|| name.to_string());
    }
    fn name_thread(&mut self, pid: u64, tid: u64, name: &str) {
        self.thread_names
            .entry((pid, tid))
            .or_insert_with(|| name.to_string());
    }
}

// ---------------------------------------------------------------------
// Thread-local installation
// ---------------------------------------------------------------------

enum ActiveSink {
    Recorder(Recorder),
    Custom(Box<dyn TraceSink>),
}

impl ActiveSink {
    fn sink(&mut self) -> &mut dyn TraceSink {
        match self {
            ActiveSink::Recorder(r) => r,
            ActiveSink::Custom(s) => s.as_mut(),
        }
    }
}

struct TelemetryState {
    sink: Option<ActiveSink>,
    track: Track,
}

thread_local! {
    static STATE: RefCell<TelemetryState> = const {
        RefCell::new(TelemetryState { sink: None, track: Track { pid: 0, tid: 0 } })
    };
}

/// Whether a sink is installed on this thread. Sites that build
/// argument vectors should check this first.
#[inline]
pub fn enabled() -> bool {
    STATE.with(|s| s.borrow().sink.is_some())
}

/// Install a fresh [`Recorder`] on this thread, replacing any previous
/// sink (which is dropped).
pub fn start_recording() {
    STATE.with(|s| {
        s.borrow_mut().sink = Some(ActiveSink::Recorder(Recorder::default()));
    });
}

/// Remove and return the recorder installed by [`start_recording`].
/// Returns `None` if no recorder is installed.
pub fn stop_recording() -> Option<Recorder> {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        match st.sink.take() {
            Some(ActiveSink::Recorder(r)) => Some(r),
            other => {
                st.sink = other;
                None
            }
        }
    })
}

/// Install a custom sink (e.g. [`NullSink`]), replacing any previous
/// sink.
pub fn install(sink: Box<dyn TraceSink>) {
    STATE.with(|s| {
        s.borrow_mut().sink = Some(ActiveSink::Custom(sink));
    });
}

/// Remove whatever sink is installed.
pub fn uninstall() {
    STATE.with(|s| {
        s.borrow_mut().sink = None;
    });
}

/// The track events are attributed to by default.
pub fn current_track() -> Track {
    STATE.with(|s| s.borrow().track)
}

/// Set the default track, returning the previous one.
pub fn set_track(track: Track) -> Track {
    STATE.with(|s| std::mem::replace(&mut s.borrow_mut().track, track))
}

/// RAII guard restoring the previous default track on drop.
pub struct TrackScope {
    prev: Track,
}

impl Drop for TrackScope {
    fn drop(&mut self) {
        set_track(self.prev);
    }
}

/// Switch the default track for the lifetime of the returned guard.
#[must_use = "the track reverts when the guard drops"]
pub fn track_scope(track: Track) -> TrackScope {
    TrackScope {
        prev: set_track(track),
    }
}

fn with_sink(f: impl FnOnce(&mut dyn TraceSink, Track)) {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let track = st.track;
        if let Some(active) = st.sink.as_mut() {
            f(active.sink(), track);
        }
    });
}

// ---------------------------------------------------------------------
// Emit helpers
// ---------------------------------------------------------------------

/// Open a span named `name` on the current track at virtual time `t`.
pub fn span_begin(cat: &'static str, name: &str, t: SimTime, args: Args) {
    with_sink(|sink, track| {
        sink.event(TraceEvent {
            t,
            track,
            kind: EventKind::SpanBegin,
            cat,
            name: name.to_string(),
            id: 0,
            args,
        })
    });
}

/// Close the innermost open span named `name` on the current track.
pub fn span_end(cat: &'static str, name: &str, t: SimTime, args: Args) {
    with_sink(|sink, track| {
        sink.event(TraceEvent {
            t,
            track,
            kind: EventKind::SpanEnd,
            cat,
            name: name.to_string(),
            id: 0,
            args,
        })
    });
}

/// Emit a point event on the current track.
pub fn instant(cat: &'static str, name: &str, t: SimTime, args: Args) {
    with_sink(|sink, track| {
        sink.event(TraceEvent {
            t,
            track,
            kind: EventKind::Instant,
            cat,
            name: name.to_string(),
            id: 0,
            args,
        })
    });
}

/// Open an async operation `id` on an explicit track (device command
/// lifetimes overlap, so they pair by id rather than by stack).
pub fn async_begin(cat: &'static str, name: &str, t: SimTime, track: Track, id: u64, args: Args) {
    with_sink(|sink, _| {
        sink.event(TraceEvent {
            t,
            track,
            kind: EventKind::AsyncBegin,
            cat,
            name: name.to_string(),
            id,
            args,
        })
    });
}

/// Close the async operation opened with the same `(track, id)`.
pub fn async_end(cat: &'static str, name: &str, t: SimTime, track: Track, id: u64, args: Args) {
    with_sink(|sink, _| {
        sink.event(TraceEvent {
            t,
            track,
            kind: EventKind::AsyncEnd,
            cat,
            name: name.to_string(),
            id,
            args,
        })
    });
}

/// Add to a monotonic counter in the metrics registry (no timeline
/// event).
pub fn counter_add(name: &str, delta: u64) {
    with_sink(|sink, _| sink.counter_add(name, delta));
}

/// Set a gauge in the metrics registry.
pub fn gauge_set(name: &str, value: f64) {
    with_sink(|sink, _| sink.gauge_set(name, value));
}

/// Record a histogram observation in the metrics registry.
pub fn observe(name: &str, value: u64) {
    with_sink(|sink, _| sink.observe(name, value));
}

/// Emit a sampled counter value as a timeline event *and* set the
/// matching gauge.
pub fn counter_sample(cat: &'static str, name: &str, t: SimTime, value: f64) {
    with_sink(|sink, track| {
        sink.gauge_set(name, value);
        sink.event(TraceEvent {
            t,
            track,
            kind: EventKind::CounterSample,
            cat,
            name: name.to_string(),
            id: 0,
            args: vec![("value", ArgValue::F64(value))],
        })
    });
}

/// Give a process track a display name (first write wins).
pub fn name_process(pid: u64, name: &str) {
    with_sink(|sink, _| sink.name_process(pid, name));
}

/// Give a row within a process track a display name (first write wins).
pub fn name_thread(pid: u64, tid: u64, name: &str) {
    with_sink(|sink, _| sink.name_thread(pid, tid, name));
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

/// Structural statistics computed by a successful [`validate`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ValidateStats {
    /// Matched synchronous span pairs.
    pub spans: usize,
    /// Deepest nesting observed on any track.
    pub max_depth: usize,
    /// Matched async begin/end pairs.
    pub async_pairs: usize,
    /// Instant events.
    pub instants: usize,
}

/// A violation found by [`validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum ValidateError {
    /// `SpanEnd` with no matching open span on its track.
    UnbalancedEnd {
        /// Offending event name.
        name: String,
        /// Track the end was emitted on.
        track: Track,
        /// Event index in the recording.
        index: usize,
    },
    /// `SpanEnd` whose name does not match the innermost open span.
    MismatchedEnd {
        /// Name on the end event.
        got: String,
        /// Name of the innermost open span.
        expected: String,
        /// Track.
        track: Track,
        /// Event index in the recording.
        index: usize,
    },
    /// A span or async pair closing before it opened.
    NegativeDuration {
        /// Span name.
        name: String,
        /// Track.
        track: Track,
        /// Event index of the offending end.
        index: usize,
    },
    /// Spans still open at end of recording.
    UnclosedSpans {
        /// `(track, name)` of each open span.
        open: Vec<(Track, String)>,
    },
    /// `AsyncEnd` with no matching `AsyncBegin` of the same `(track, id)`.
    UnmatchedAsyncEnd {
        /// Event name.
        name: String,
        /// Track.
        track: Track,
        /// Async pairing id.
        id: u64,
        /// Event index in the recording.
        index: usize,
    },
    /// Async operations still open at end of recording.
    UnclosedAsync {
        /// Number left open.
        count: usize,
    },
    /// An application API-call span opened between checkpoint-sync
    /// completion and the BLCR image write — the process was supposed
    /// to be quiescent.
    QuiescenceViolation {
        /// Name of the API span that opened.
        name: String,
        /// Process that violated quiescence.
        pid: u64,
        /// Event index in the recording.
        index: usize,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UnbalancedEnd { name, track, index } => {
                write!(
                    f,
                    "event {index}: end of '{name}' on {track:?} with no open span"
                )
            }
            ValidateError::MismatchedEnd {
                got,
                expected,
                track,
                index,
            } => write!(
                f,
                "event {index}: end of '{got}' on {track:?} but innermost open span is '{expected}'"
            ),
            ValidateError::NegativeDuration { name, track, index } => {
                write!(
                    f,
                    "event {index}: '{name}' on {track:?} ends before it begins"
                )
            }
            ValidateError::UnclosedSpans { open } => {
                write!(
                    f,
                    "{} span(s) left open at end of trace: {open:?}",
                    open.len()
                )
            }
            ValidateError::UnmatchedAsyncEnd {
                name,
                track,
                id,
                index,
            } => write!(
                f,
                "event {index}: async end of '{name}' id {id} on {track:?} with no matching begin"
            ),
            ValidateError::UnclosedAsync { count } => {
                write!(f, "{count} async operation(s) left open at end of trace")
            }
            ValidateError::QuiescenceViolation { name, pid, index } => write!(
                f,
                "event {index}: API span '{name}' opened on pid {pid} between checkpoint \
                 sync completion and BLCR write (process must be quiescent)"
            ),
        }
    }
}

/// Span names bounding the checkpoint quiescent window (see
/// `checl::cpr`): quiescence starts when the sync phase ends and ends
/// when the image write begins.
pub const QUIESCE_AFTER: &str = "checkpoint.sync";
/// See [`QUIESCE_AFTER`].
pub const QUIESCE_UNTIL: &str = "checkpoint.write";
/// Category of application-facing API-call spans, the ones forbidden
/// inside the quiescent window.
pub const API_CATEGORY: &str = "api";
/// Category of injected-fault instants (`osproc`'s fault plan). One
/// instant per injected fault, named `fault.<class>`.
pub const FAULT_CATEGORY: &str = "fault";
/// Category of recovery-action events (retries, fallbacks, verification
/// failures, proxy respawns, snapshot aborts).
pub const RECOVERY_CATEGORY: &str = "recovery";
/// Category of supervision events (failure detection, interval
/// recomputation, automatic repair, replica scrubbing).
pub const SUPERVISOR_CATEGORY: &str = "supervisor";

/// Check structural invariants of a recording:
///
/// * every `SpanEnd` closes the innermost open span of the same name
///   on its track, with a non-negative duration, and nothing is left
///   open;
/// * every `AsyncEnd` pairs with an earlier `AsyncBegin` of the same
///   `(track, id)`, and nothing is left open;
/// * **checkpoint quiescence** — within one process, no span with
///   category [`API_CATEGORY`] opens between the end of a
///   [`QUIESCE_AFTER`] span and the begin of the following
///   [`QUIESCE_UNTIL`] span.
pub fn validate(events: &[TraceEvent]) -> Result<ValidateStats, ValidateError> {
    let mut stats = ValidateStats::default();
    let mut stacks: BTreeMap<Track, Vec<(String, SimTime)>> = BTreeMap::new();
    let mut open_async: BTreeMap<(Track, u64), SimTime> = BTreeMap::new();
    // pids currently inside the checkpoint quiescent window.
    let mut quiescent: BTreeMap<u64, bool> = BTreeMap::new();

    for (index, ev) in events.iter().enumerate() {
        match ev.kind {
            EventKind::SpanBegin => {
                if ev.cat == API_CATEGORY && quiescent.get(&ev.track.pid).copied().unwrap_or(false)
                {
                    return Err(ValidateError::QuiescenceViolation {
                        name: ev.name.clone(),
                        pid: ev.track.pid,
                        index,
                    });
                }
                if ev.name == QUIESCE_UNTIL {
                    quiescent.insert(ev.track.pid, false);
                }
                let stack = stacks.entry(ev.track).or_default();
                stack.push((ev.name.clone(), ev.t));
                stats.max_depth = stats.max_depth.max(stack.len());
            }
            EventKind::SpanEnd => {
                let stack = stacks.entry(ev.track).or_default();
                match stack.pop() {
                    None => {
                        return Err(ValidateError::UnbalancedEnd {
                            name: ev.name.clone(),
                            track: ev.track,
                            index,
                        })
                    }
                    Some((open_name, t0)) => {
                        if open_name != ev.name {
                            return Err(ValidateError::MismatchedEnd {
                                got: ev.name.clone(),
                                expected: open_name,
                                track: ev.track,
                                index,
                            });
                        }
                        if ev.t < t0 {
                            return Err(ValidateError::NegativeDuration {
                                name: ev.name.clone(),
                                track: ev.track,
                                index,
                            });
                        }
                        stats.spans += 1;
                    }
                }
                if ev.name == QUIESCE_AFTER {
                    quiescent.insert(ev.track.pid, true);
                }
            }
            EventKind::Instant => stats.instants += 1,
            EventKind::AsyncBegin => {
                open_async.insert((ev.track, ev.id), ev.t);
            }
            EventKind::AsyncEnd => match open_async.remove(&(ev.track, ev.id)) {
                None => {
                    return Err(ValidateError::UnmatchedAsyncEnd {
                        name: ev.name.clone(),
                        track: ev.track,
                        id: ev.id,
                        index,
                    })
                }
                Some(t0) => {
                    if ev.t < t0 {
                        return Err(ValidateError::NegativeDuration {
                            name: ev.name.clone(),
                            track: ev.track,
                            index,
                        });
                    }
                    stats.async_pairs += 1;
                }
            },
            EventKind::CounterSample => {}
        }
    }

    let open: Vec<(Track, String)> = stacks
        .into_iter()
        .flat_map(|(track, stack)| stack.into_iter().map(move |(name, _)| (track, name)))
        .collect();
    if !open.is_empty() {
        return Err(ValidateError::UnclosedSpans { open });
    }
    if !open_async.is_empty() {
        return Err(ValidateError::UnclosedAsync {
            count: open_async.len(),
        });
    }
    Ok(stats)
}

/// Total duration of all completed spans per name, summed across
/// tracks. Used by tests and figure code to query phase timings out of
/// a trace. Panics if the trace is unbalanced — run [`validate`] first.
pub fn span_durations(events: &[TraceEvent]) -> BTreeMap<String, SimDuration> {
    let mut stacks: BTreeMap<Track, Vec<(String, SimTime)>> = BTreeMap::new();
    let mut totals: BTreeMap<String, SimDuration> = BTreeMap::new();
    for ev in events {
        match ev.kind {
            EventKind::SpanBegin => {
                stacks
                    .entry(ev.track)
                    .or_default()
                    .push((ev.name.clone(), ev.t));
            }
            EventKind::SpanEnd => {
                let (name, t0) = stacks
                    .entry(ev.track)
                    .or_default()
                    .pop()
                    .expect("span_durations: unbalanced trace");
                let total = totals.entry(name).or_insert(SimDuration::ZERO);
                *total += ev.t.since(t0);
            }
            _ => {}
        }
    }
    totals
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display is deterministic.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Microsecond timestamp with nanosecond precision, as Chrome expects.
fn ts_us(t: SimTime) -> String {
    let ns = t.as_nanos();
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn args_json(args: &Args) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(k));
        out.push_str("\":");
        match v {
            ArgValue::U64(n) => out.push_str(&n.to_string()),
            ArgValue::F64(x) => out.push_str(&json_f64(*x)),
            ArgValue::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
        }
    }
    out.push('}');
    out
}

/// Serialize a recording as Chrome trace-event JSON (the
/// `{"traceEvents": [...]}` object form), loadable in Perfetto or
/// `chrome://tracing`. Timestamps are virtual microseconds.
pub fn export_chrome_trace(rec: &Recorder) -> String {
    let mut out = String::with_capacity(rec.events.len() * 96 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&line);
        *first = false;
    };

    for (pid, name) in &rec.process_names {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(name)
            ),
            &mut out,
            &mut first,
        );
    }
    for ((pid, tid), name) in &rec.thread_names {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(name)
            ),
            &mut out,
            &mut first,
        );
    }

    for ev in &rec.events {
        let (ph, extra) = match ev.kind {
            EventKind::SpanBegin => ("B", String::new()),
            EventKind::SpanEnd => ("E", String::new()),
            EventKind::Instant => ("i", ",\"s\":\"t\"".to_string()),
            EventKind::AsyncBegin => ("b", format!(",\"id\":\"{:#x}\"", ev.id)),
            EventKind::AsyncEnd => ("e", format!(",\"id\":\"{:#x}\"", ev.id)),
            EventKind::CounterSample => ("C", String::new()),
        };
        push(
            format!(
                "{{\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\
                 \"cat\":\"{cat}\",\"name\":\"{name}\"{extra},\"args\":{args}}}",
                ts = ts_us(ev.t),
                pid = ev.track.pid,
                tid = ev.track.tid,
                cat = json_escape(ev.cat),
                name = json_escape(&ev.name),
                args = args_json(&ev.args),
            ),
            &mut out,
            &mut first,
        );
    }

    // Final counter/gauge/histogram snapshot as one metadata record, so
    // the registry travels with the trace file.
    let mut metrics = String::from("{\"counters\":{");
    for (i, (k, v)) in rec.metrics.counters.iter().enumerate() {
        if i > 0 {
            metrics.push(',');
        }
        metrics.push_str(&format!("\"{}\":{v}", json_escape(k)));
    }
    metrics.push_str("},\"gauges\":{");
    for (i, (k, v)) in rec.metrics.gauges.iter().enumerate() {
        if i > 0 {
            metrics.push(',');
        }
        metrics.push_str(&format!("\"{}\":{}", json_escape(k), json_f64(*v)));
    }
    metrics.push_str("},\"histograms\":{");
    for (i, (k, h)) in rec.metrics.histograms.iter().enumerate() {
        if i > 0 {
            metrics.push(',');
        }
        metrics.push_str(&format!(
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
            json_escape(k),
            h.count,
            h.sum,
            h.min,
            h.max,
            json_f64(h.mean()),
        ));
    }
    metrics.push_str("}}");
    push(
        format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"checl_metrics\",\"args\":{metrics}}}"
        ),
        &mut out,
        &mut first,
    );

    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_by_default() {
        assert!(!enabled());
        span_begin("api", "x", t(0), vec![]);
        assert!(stop_recording().is_none());
    }

    #[test]
    fn record_validate_roundtrip() {
        start_recording();
        let _scope = track_scope(Track::process(7));
        span_begin("api", "clFinish", t(10), vec![]);
        instant("ipc", "send", t(12), vec![("bytes", 64u64.into())]);
        span_end("api", "clFinish", t(20), vec![]);
        counter_add("calls", 1);
        drop(_scope);
        let rec = stop_recording().unwrap();
        assert_eq!(rec.events.len(), 3);
        assert_eq!(rec.metrics.counter("calls"), 1);
        let stats = validate(&rec.events).unwrap();
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.instants, 1);
        let durations = span_durations(&rec.events);
        assert_eq!(durations["clFinish"], SimDuration::from_nanos(10));
    }

    #[test]
    fn validate_rejects_unbalanced() {
        start_recording();
        span_begin("api", "a", t(0), vec![]);
        let rec = stop_recording().unwrap();
        assert!(matches!(
            validate(&rec.events),
            Err(ValidateError::UnclosedSpans { .. })
        ));
    }

    #[test]
    fn validate_rejects_quiescence_violation() {
        start_recording();
        let _scope = track_scope(Track::process(3));
        span_begin("cpr", QUIESCE_AFTER, t(0), vec![]);
        span_end("cpr", QUIESCE_AFTER, t(5), vec![]);
        span_begin("api", "clEnqueueReadBuffer", t(6), vec![]);
        span_end("api", "clEnqueueReadBuffer", t(7), vec![]);
        span_begin("cpr", QUIESCE_UNTIL, t(8), vec![]);
        span_end("cpr", QUIESCE_UNTIL, t(9), vec![]);
        drop(_scope);
        let rec = stop_recording().unwrap();
        assert!(matches!(
            validate(&rec.events),
            Err(ValidateError::QuiescenceViolation { .. })
        ));
    }

    #[test]
    fn chrome_export_is_json_shaped() {
        start_recording();
        let _scope = track_scope(Track::process(1));
        name_process(1, "app");
        span_begin(
            "api",
            "clCreateBuffer",
            t(1_500),
            vec![("bytes", 4096u64.into())],
        );
        span_end("api", "clCreateBuffer", t(2_500), vec![]);
        drop(_scope);
        let rec = stop_recording().unwrap();
        let json = export_chrome_trace(&rec);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("process_name"));
    }
}
