//! Virtual time for the discrete-event simulation.
//!
//! The whole CheCL reproduction runs on a *virtual clock*: device queues,
//! IPC pipes, disks and compilers advance [`SimTime`] according to the
//! calibrated cost models in [`crate::calib`], never by looking at the
//! wall clock. Nanosecond resolution in a `u64` covers ~584 years of
//! simulated time, far beyond any experiment here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative or non-finite input
    /// saturates to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// An instant on the virtual timeline, in nanoseconds since simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant. Panics if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is later than self"),
        )
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl SubAssign<SimDuration> for SimTime {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.checked_sub(rhs.0).expect("SimTime underflow");
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn from_secs_f64_saturates_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(10);
        let t2 = t1 + SimDuration::from_millis(5);
        assert_eq!(t2.since(t0), SimDuration::from_millis(15));
        assert_eq!(t2 - t1, SimDuration::from_millis(5));
        assert_eq!(t1.max(t2), t2);
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn since_panics_on_negative_span() {
        let t1 = SimTime::from_nanos(5);
        let t2 = SimTime::from_nanos(10);
        let _ = t1.since(t2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(7).to_string(), "7ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_and_scale() {
        let parts = [
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
            SimDuration::from_millis(3),
        ];
        let total: SimDuration = parts.iter().copied().sum();
        assert_eq!(total, SimDuration::from_millis(6));
        assert_eq!(total * 2, SimDuration::from_millis(12));
        assert_eq!(total / 3, SimDuration::from_millis(2));
        assert_eq!(total * 0.5, SimDuration::from_millis(3));
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        let a = SimDuration::from_nanos(3);
        let b = SimDuration::from_nanos(10);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_nanos(7));
    }
}
