//! The benchmark roster of §IV: NVIDIA GPU Computing SDK 3.0 samples,
//! the SHOC 0.9.1 suite (serial versions; Spmv excluded as in the
//! paper), and the three Parboil ports (cp, mri-fhd, mri-q — the
//! latter two in small and large problem sizes).
//!
//! Per the paper's methodology, the CPU-side result-verification code
//! of the original samples is omitted "to avoid underestimating the
//! timing overhead in the GPU computation part": the scripts contain
//! only the OpenCL host calls plus final checksum reads.

use crate::script::{BufInit, Op, Reg, Script};
use clspec::types::{DeviceType, MemFlags};
use simcore::ByteSize;

/// Which suite a workload comes from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    /// NVIDIA GPU Computing SDK 3.0 OpenCL samples.
    NvidiaSdk,
    /// SHOC benchmark suite 0.9.1.
    Shoc,
    /// Parboil ports.
    Parboil,
}

/// Configuration a script is generated against.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadCfg {
    /// Device memory of the target (oclFDTD3d and oclMatVecMul size
    /// their problems from it, §IV-B).
    pub device_mem: ByteSize,
    /// Scale factor on element counts (1.0 = paper-proportional).
    pub scale: f64,
    /// Device class the application requests.
    pub device_type: DeviceType,
}

impl Default for WorkloadCfg {
    fn default() -> Self {
        WorkloadCfg {
            device_mem: ByteSize::gib(4),
            scale: 1.0,
            device_type: DeviceType::Gpu,
        }
    }
}

impl WorkloadCfg {
    fn n(&self, base: u64) -> u64 {
        ((base as f64 * self.scale) as u64).max(16)
    }

    fn n_pow2(&self, base: u64) -> u64 {
        let n = self.n(base);
        1u64 << (63 - n.leading_zeros() as u64)
    }
}

/// One benchmark program.
#[derive(Clone)]
pub struct Workload {
    /// Name as it appears on the paper's figure axes.
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    build: fn(&WorkloadCfg) -> Script,
}

impl Workload {
    /// Generate the script for a configuration.
    pub fn script(&self, cfg: &WorkloadCfg) -> Script {
        (self.build)(cfg)
    }
}

// ---------------------------------------------------------------------
// Script builder helper
// ---------------------------------------------------------------------

/// Fluent builder with a register allocator and the standard
/// platform/device/context/queue prelude.
pub struct B {
    ops: Vec<Op>,
    next: Reg,
    /// Platform register.
    pub platform: Reg,
    /// First device register.
    pub device: Reg,
    /// Context register.
    pub ctx: Reg,
    /// Default queue register.
    pub queue: Reg,
}

impl B {
    /// Standard prelude against the configured device type.
    pub fn new(cfg: &WorkloadCfg) -> B {
        let mut b = B {
            ops: Vec::new(),
            next: 0,
            platform: 0,
            device: 0,
            ctx: 0,
            queue: 0,
        };
        b.platform = b.alloc();
        b.ops.push(Op::GetPlatform { out: b.platform });
        b.device = b.alloc();
        let _second_device = b.alloc(); // reserved slot for device[1]
        b.ops.push(Op::GetDevices {
            platform: b.platform,
            dtype: cfg.device_type,
            out: b.device,
            count: 2,
        });
        b.ctx = b.alloc();
        b.ops.push(Op::CreateContext {
            device: b.device,
            out: b.ctx,
        });
        b.queue = b.alloc();
        b.ops.push(Op::CreateQueue {
            context: b.ctx,
            device: b.device,
            out: b.queue,
        });
        b
    }

    fn alloc(&mut self) -> Reg {
        let r = self.next;
        self.next += 1;
        assert!(
            (self.next as usize) < crate::script::NUM_REGS,
            "register file exhausted"
        );
        r
    }

    /// Extra in-order queue on the same device.
    pub fn extra_queue(&mut self) -> Reg {
        let q = self.alloc();
        self.ops.push(Op::CreateQueue {
            context: self.ctx,
            device: self.device,
            out: q,
        });
        q
    }

    /// Read-write device buffer, optionally initialised.
    pub fn buffer(&mut self, size: u64, init: Option<BufInit>) -> Reg {
        let r = self.alloc();
        self.ops.push(Op::CreateBuffer {
            context: self.ctx,
            flags: MemFlags::READ_WRITE,
            size,
            init,
            out: r,
        });
        r
    }

    /// Buffer with explicit flags.
    pub fn buffer_flags(&mut self, size: u64, flags: MemFlags, init: Option<BufInit>) -> Reg {
        let r = self.alloc();
        self.ops.push(Op::CreateBuffer {
            context: self.ctx,
            flags,
            size,
            init,
            out: r,
        });
        r
    }

    /// Create and build a corpus program.
    pub fn program(&mut self, name: &str) -> Reg {
        let r = self.alloc();
        self.ops.push(Op::CreateProgram {
            name: name.to_string(),
            context: self.ctx,
            out: r,
        });
        self.ops.push(Op::BuildProgram { prog: r });
        r
    }

    /// Create a kernel from a program.
    pub fn kernel(&mut self, prog: Reg, name: &str) -> Reg {
        let r = self.alloc();
        self.ops.push(Op::CreateKernel {
            prog,
            name: name.to_string(),
            out: r,
        });
        r
    }

    /// Program + single kernel shorthand.
    pub fn prog_kernel(&mut self, prog_name: &str, kernel_name: &str) -> Reg {
        let p = self.program(prog_name);
        self.kernel(p, kernel_name)
    }

    /// Bind a buffer argument.
    pub fn arg_mem(&mut self, kernel: Reg, index: u32, buf: Reg) {
        self.ops.push(Op::SetArgMem { kernel, index, buf });
    }

    /// Bind a u32 scalar argument.
    pub fn arg_u32(&mut self, kernel: Reg, index: u32, value: u32) {
        self.ops.push(Op::SetArgU32 {
            kernel,
            index,
            value,
        });
    }

    /// Bind an f32 scalar argument.
    pub fn arg_f32(&mut self, kernel: Reg, index: u32, value: f32) {
        self.ops.push(Op::SetArgF32 {
            kernel,
            index,
            value,
        });
    }

    /// Declare local scratch.
    pub fn arg_local(&mut self, kernel: Reg, index: u32, size: u64) {
        self.ops.push(Op::SetArgLocal {
            kernel,
            index,
            size,
        });
    }

    /// 1-D launch on the default queue.
    pub fn launch1(&mut self, kernel: Reg, n: u64) {
        self.ops.push(Op::Launch {
            kernel,
            queue: self.queue,
            global: [n, 1, 1],
            local: None,
        });
    }

    /// 2-D launch.
    pub fn launch2(&mut self, kernel: Reg, x: u64, y: u64) {
        self.ops.push(Op::Launch {
            kernel,
            queue: self.queue,
            global: [x, y, 1],
            local: None,
        });
    }

    /// 3-D launch.
    pub fn launch3(&mut self, kernel: Reg, x: u64, y: u64, z: u64) {
        self.ops.push(Op::Launch {
            kernel,
            queue: self.queue,
            global: [x, y, z],
            local: None,
        });
    }

    /// Launch with an explicit work-group shape.
    pub fn launch_wg(&mut self, kernel: Reg, queue: Reg, global: [u64; 3], local: [u64; 3]) {
        self.ops.push(Op::Launch {
            kernel,
            queue,
            global,
            local: Some(local),
        });
    }

    /// `clFinish` the default queue.
    pub fn finish(&mut self) {
        self.ops.push(Op::Finish { queue: self.queue });
    }

    /// Blocking write of generated data.
    pub fn write(&mut self, buf: Reg, size: u64, init: BufInit) {
        self.ops.push(Op::WriteBuffer {
            queue: self.queue,
            buf,
            size,
            init,
        });
    }

    /// Blocking checksum read.
    pub fn read_checksum(&mut self, buf: Reg, size: u64) {
        self.ops.push(Op::ReadBufferChecksum {
            queue: self.queue,
            buf,
            size,
        });
    }

    /// Finalize.
    pub fn build(mut self) -> Script {
        // Every program ends with a full drain, like the samples do.
        self.finish();
        Script { ops: self.ops }
    }
}

// ---------------------------------------------------------------------
// NVIDIA SDK samples
// ---------------------------------------------------------------------

fn ocl_vector_add(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(1 << 23);
    let mut b = B::new(cfg);
    let a = b.buffer(
        n * 4,
        Some(BufInit::RandomF32 {
            seed: 1,
            lo: -1.0,
            hi: 1.0,
        }),
    );
    let bb = b.buffer(
        n * 4,
        Some(BufInit::RandomF32 {
            seed: 2,
            lo: -1.0,
            hi: 1.0,
        }),
    );
    let c = b.buffer(n * 4, None);
    let k = b.prog_kernel("vector_add", "vec_add");
    b.arg_mem(k, 0, a);
    b.arg_mem(k, 1, bb);
    b.arg_mem(k, 2, c);
    b.arg_u32(k, 3, n as u32);
    for _ in 0..50 {
        b.launch1(k, n);
    }
    b.finish();
    b.read_checksum(c, n * 4);
    b.build()
}

fn ocl_bandwidth_test(cfg: &WorkloadCfg) -> Script {
    // Pure transfer benchmark: no kernels at all.
    let size = cfg.n(32 << 20);
    let mut b = B::new(cfg);
    let buf = b.buffer(size, None);
    for i in 0..5 {
        b.write(buf, size, BufInit::RandomU32 { seed: 100 + i });
        b.read_checksum(buf, size);
    }
    b.build()
}

fn ocl_black_scholes(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(1 << 18);
    let mut b = B::new(cfg);
    let call = b.buffer(n * 4, None);
    let put = b.buffer(n * 4, None);
    let s = b.buffer(
        n * 4,
        Some(BufInit::RandomF32 {
            seed: 3,
            lo: 10.0,
            hi: 100.0,
        }),
    );
    let x = b.buffer(
        n * 4,
        Some(BufInit::RandomF32 {
            seed: 4,
            lo: 10.0,
            hi: 100.0,
        }),
    );
    let t = b.buffer(
        n * 4,
        Some(BufInit::RandomF32 {
            seed: 5,
            lo: 0.25,
            hi: 5.0,
        }),
    );
    let k = b.prog_kernel("black_scholes", "black_scholes");
    b.arg_mem(k, 0, call);
    b.arg_mem(k, 1, put);
    b.arg_mem(k, 2, s);
    b.arg_mem(k, 3, x);
    b.arg_mem(k, 4, t);
    b.arg_f32(k, 5, 0.02);
    b.arg_f32(k, 6, 0.30);
    b.arg_u32(k, 7, n as u32);
    for _ in 0..32 {
        b.launch1(k, n);
    }
    b.finish();
    b.read_checksum(call, n * 4);
    b.read_checksum(put, n * 4);
    b.build()
}

fn ocl_convolution_separable(cfg: &WorkloadCfg) -> Script {
    let w = cfg.n_pow2(1024);
    let h = w;
    let radius = 8u32;
    let taps = (2 * radius + 1) as u64;
    let mut b = B::new(cfg);
    let src = b.buffer(
        w * h * 4,
        Some(BufInit::RandomF32 {
            seed: 6,
            lo: 0.0,
            hi: 1.0,
        }),
    );
    let tmp = b.buffer(w * h * 4, None);
    let dst = b.buffer(w * h * 4, None);
    let filter = b.buffer(
        taps * 4,
        Some(BufInit::RandomF32 {
            seed: 7,
            lo: 0.0,
            hi: 0.1,
        }),
    );
    let p = b.program("convolution_separable");
    let k_rows = b.kernel(p, "conv_rows");
    let k_cols = b.kernel(p, "conv_cols");
    for _ in 0..8 {
        for (k, s, d) in [(k_rows, src, tmp), (k_cols, tmp, dst)] {
            b.arg_mem(k, 0, s);
            b.arg_mem(k, 1, d);
            b.arg_mem(k, 2, filter);
            b.arg_u32(k, 3, w as u32);
            b.arg_u32(k, 4, h as u32);
            b.arg_u32(k, 5, radius);
            b.launch2(k, w, h);
        }
    }
    b.finish();
    b.read_checksum(dst, w * h * 4);
    b.build()
}

fn ocl_dct8x8(cfg: &WorkloadCfg) -> Script {
    let w = cfg.n_pow2(512);
    let h = w;
    let mut b = B::new(cfg);
    let src = b.buffer(
        w * h * 4,
        Some(BufInit::RandomF32 {
            seed: 8,
            lo: 0.0,
            hi: 255.0,
        }),
    );
    let dst = b.buffer(w * h * 4, None);
    let k = b.prog_kernel("dct8x8", "dct8x8");
    b.arg_mem(k, 0, src);
    b.arg_mem(k, 1, dst);
    b.arg_u32(k, 2, w as u32);
    b.arg_u32(k, 3, h as u32);
    for _ in 0..16 {
        b.launch2(k, w, h);
    }
    b.finish();
    b.read_checksum(dst, w * h * 4);
    b.build()
}

fn ocl_dxt_compression(cfg: &WorkloadCfg) -> Script {
    let w = cfg.n_pow2(512);
    let h = w;
    let blocks = w * h / 16;
    let mut b = B::new(cfg);
    let src = b.buffer(
        w * h * 4,
        Some(BufInit::RandomF32 {
            seed: 9,
            lo: 0.0,
            hi: 1.0,
        }),
    );
    let dst = b.buffer(blocks * 8, None);
    let k = b.prog_kernel("dxtc", "dxt_compress");
    b.arg_mem(k, 0, src);
    b.arg_mem(k, 1, dst);
    b.arg_u32(k, 2, w as u32);
    b.arg_u32(k, 3, h as u32);
    for _ in 0..16 {
        b.launch1(k, blocks);
    }
    b.finish();
    b.read_checksum(dst, blocks * 8);
    b.build()
}

fn ocl_dot_product(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(1 << 16); // float4 elements
    let mut b = B::new(cfg);
    let a = b.buffer(
        n * 16,
        Some(BufInit::RandomF32 {
            seed: 10,
            lo: -1.0,
            hi: 1.0,
        }),
    );
    let bb = b.buffer(
        n * 16,
        Some(BufInit::RandomF32 {
            seed: 11,
            lo: -1.0,
            hi: 1.0,
        }),
    );
    let c = b.buffer(n * 4, None);
    let k = b.prog_kernel("dot_product", "dot_product");
    b.arg_mem(k, 0, a);
    b.arg_mem(k, 1, bb);
    b.arg_mem(k, 2, c);
    b.arg_u32(k, 3, n as u32);
    for _ in 0..32 {
        b.launch1(k, n);
    }
    b.finish();
    b.read_checksum(c, n * 4);
    b.build()
}

fn ocl_fdtd3d(cfg: &WorkloadCfg) -> Script {
    // Problem size determined from the device memory (§IV-B): two
    // dim³ f32 volumes targeting ~1/1024 of device memory each.
    let target = cfg.n(cfg.device_mem.as_u64() / 256);
    let dim = (((target / 8) as f64).cbrt() as u64).clamp(16, 192);
    let vol = dim * dim * dim;
    let mut b = B::new(cfg);
    let ping = b.buffer(
        vol * 4,
        Some(BufInit::RandomF32 {
            seed: 12,
            lo: 0.0,
            hi: 1.0,
        }),
    );
    let pong = b.buffer(vol * 4, None);
    let k = b.prog_kernel("fdtd3d", "fdtd3d");
    for step in 0..8 {
        let (src, dst) = if step % 2 == 0 {
            (ping, pong)
        } else {
            (pong, ping)
        };
        b.arg_mem(k, 0, src);
        b.arg_mem(k, 1, dst);
        b.arg_u32(k, 2, dim as u32);
        b.arg_u32(k, 3, dim as u32);
        b.arg_u32(k, 4, dim as u32);
        b.launch3(k, dim, dim, dim);
    }
    b.finish();
    b.read_checksum(ping, vol * 4);
    b.build()
}

fn ocl_histogram(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(1 << 22);
    let mut b = B::new(cfg);
    let data = b.buffer(
        n * 4,
        Some(BufInit::RandomF32 {
            seed: 13,
            lo: 0.0,
            hi: 1.0,
        }),
    );
    let hist = b.buffer(64 * 4, None);
    let k = b.prog_kernel("histogram", "histogram64");
    b.arg_mem(k, 0, data);
    b.arg_mem(k, 1, hist);
    b.arg_local(k, 2, 64 * 4);
    b.arg_u32(k, 3, n as u32);
    for _ in 0..32 {
        b.launch1(k, n);
    }
    b.finish();
    b.read_checksum(hist, 64 * 4);
    b.build()
}

fn ocl_matvecmul(cfg: &WorkloadCfg) -> Script {
    // Also sized from device memory (§IV-B): the matrix targets
    // ~1/1024 of device memory.
    let target = cfg.n(cfg.device_mem.as_u64() / 256);
    let dim = (((target / 4) as f64).sqrt() as u64).clamp(64, 4096);
    let mut b = B::new(cfg);
    let mat = b.buffer(
        dim * dim * 4,
        Some(BufInit::RandomF32 {
            seed: 14,
            lo: -1.0,
            hi: 1.0,
        }),
    );
    let vec = b.buffer(
        dim * 4,
        Some(BufInit::RandomF32 {
            seed: 15,
            lo: -1.0,
            hi: 1.0,
        }),
    );
    let out = b.buffer(dim * 4, None);
    let k = b.prog_kernel("matvec", "matvec");
    b.arg_mem(k, 0, mat);
    b.arg_mem(k, 1, vec);
    b.arg_mem(k, 2, out);
    b.arg_u32(k, 3, dim as u32);
    b.arg_u32(k, 4, dim as u32);
    for _ in 0..16 {
        b.launch1(k, dim);
    }
    b.finish();
    b.read_checksum(out, dim * 4);
    b.build()
}

fn ocl_matrixmul(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(128);
    let mut b = B::new(cfg);
    let a = b.buffer(
        n * n * 4,
        Some(BufInit::RandomF32 {
            seed: 16,
            lo: -1.0,
            hi: 1.0,
        }),
    );
    let bb = b.buffer(
        n * n * 4,
        Some(BufInit::RandomF32 {
            seed: 17,
            lo: -1.0,
            hi: 1.0,
        }),
    );
    let c = b.buffer(n * n * 4, None);
    let k = b.prog_kernel("matmul", "matmul");
    b.arg_mem(k, 0, a);
    b.arg_mem(k, 1, bb);
    b.arg_mem(k, 2, c);
    b.arg_u32(k, 3, n as u32);
    b.arg_u32(k, 4, n as u32);
    b.arg_u32(k, 5, n as u32);
    for _ in 0..16 {
        b.launch2(k, n, n);
    }
    b.finish();
    b.read_checksum(c, n * n * 4);
    b.build()
}

fn ocl_mersenne_twister(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(4096);
    let per = 512u64;
    let mut b = B::new(cfg);
    let seeds = b.buffer(n * 4, Some(BufInit::RandomU32 { seed: 18 }));
    let out = b.buffer(n * per * 4, None);
    let k = b.prog_kernel("mersenne_twister", "mersenne_twister");
    b.arg_mem(k, 0, seeds);
    b.arg_mem(k, 1, out);
    b.arg_u32(k, 2, n as u32);
    b.arg_u32(k, 3, per as u32);
    for _ in 0..16 {
        b.launch1(k, n);
    }
    b.finish();
    b.read_checksum(out, n * per * 4);
    b.build()
}

fn ocl_quasirandom(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(1 << 22);
    let mut b = B::new(cfg);
    let out = b.buffer(n * 4, None);
    let k = b.prog_kernel("quasirandom", "quasirandom");
    b.arg_mem(k, 0, out);
    b.arg_u32(k, 1, n as u32);
    for _ in 0..32 {
        b.launch1(k, n);
    }
    b.finish();
    b.read_checksum(out, n * 4);
    b.build()
}

fn ocl_radix_sort(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(1 << 22);
    let mut b = B::new(cfg);
    let keys = b.buffer(n * 4, Some(BufInit::RandomU32 { seed: 19 }));
    let k = b.prog_kernel("radix_sort", "radix_sort");
    b.arg_mem(k, 0, keys);
    b.arg_u32(k, 1, n as u32);
    for _ in 0..8 {
        b.launch1(k, n);
    }
    b.finish();
    b.read_checksum(keys, n * 4);
    b.build()
}

fn ocl_reduction(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(1 << 22);
    let mut b = B::new(cfg);
    let input = b.buffer(
        n * 4,
        Some(BufInit::RandomF32 {
            seed: 20,
            lo: 0.0,
            hi: 1.0,
        }),
    );
    let output = b.buffer(4, None);
    let k = b.prog_kernel("reduction", "reduce_sum");
    b.arg_mem(k, 0, input);
    b.arg_mem(k, 1, output);
    b.arg_local(k, 2, 256 * 4);
    b.arg_u32(k, 3, n as u32);
    for _ in 0..32 {
        b.launch1(k, n);
    }
    b.finish();
    b.read_checksum(output, 4);
    b.build()
}

fn ocl_scan(cfg: &WorkloadCfg) -> Script {
    // "some programs such as Scan … invoke API functions many times
    // without any time-consuming computation" (§IV-A).
    let n = cfg.n_pow2(1 << 16);
    let mut b = B::new(cfg);
    let input = b.buffer(
        n * 4,
        Some(BufInit::RandomF32 {
            seed: 21,
            lo: 0.0,
            hi: 1.0,
        }),
    );
    let output = b.buffer(n * 4, None);
    let k = b.prog_kernel("scan", "scan_exclusive");
    b.arg_mem(k, 0, input);
    b.arg_mem(k, 1, output);
    b.arg_local(k, 2, 512 * 4);
    b.arg_u32(k, 3, n as u32);
    for _ in 0..24 {
        b.launch1(k, n);
        b.finish();
    }
    b.read_checksum(output, n * 4);
    b.build()
}

fn ocl_simple_multi_gpu(cfg: &WorkloadCfg) -> Script {
    // Two command queues splitting the work (on one device per queue
    // when the platform has several).
    let n = cfg.n_pow2(1 << 19);
    let mut b = B::new(cfg);
    let q2 = b.extra_queue();
    let a = b.buffer(
        n * 4,
        Some(BufInit::RandomF32 {
            seed: 22,
            lo: -1.0,
            hi: 1.0,
        }),
    );
    let bb = b.buffer(
        n * 4,
        Some(BufInit::RandomF32 {
            seed: 23,
            lo: -1.0,
            hi: 1.0,
        }),
    );
    let c1 = b.buffer(n * 4, None);
    let c2 = b.buffer(n * 4, None);
    let p = b.program("vector_add");
    let k1 = b.kernel(p, "vec_add");
    let k2 = b.kernel(p, "vec_add");
    b.arg_mem(k1, 0, a);
    b.arg_mem(k1, 1, bb);
    b.arg_mem(k1, 2, c1);
    b.arg_u32(k1, 3, n as u32);
    b.arg_mem(k2, 0, bb);
    b.arg_mem(k2, 1, a);
    b.arg_mem(k2, 2, c2);
    b.arg_u32(k2, 3, n as u32);
    b.launch1(k1, n);
    b.launch_wg(k2, q2, [n, 1, 1], [256, 1, 1]);
    b.ops.push(Op::Finish { queue: q2 });
    b.finish();
    b.read_checksum(c1, n * 4);
    b.read_checksum(c2, n * 4);
    b.build()
}

fn ocl_sorting_networks(cfg: &WorkloadCfg) -> Script {
    // Bitonic sort: O(log² n) separate kernel launches, each a single
    // compare-exchange pass — extremely API-chatty. The 512-wide work
    // groups run on the Tesla (512) and the CPU (1024) but not on the
    // Radeon (256): the paper's portability failure.
    let n = cfg.n_pow2(1 << 13);
    let log_n = n.trailing_zeros();
    let mut b = B::new(cfg);
    let keys = b.buffer(n * 4, Some(BufInit::RandomU32 { seed: 24 }));
    let k = b.prog_kernel("sorting_networks", "bitonic_sort");
    b.arg_mem(k, 0, keys);
    b.arg_u32(k, 1, n as u32);
    for stage in 0..log_n {
        for pass in (0..=stage).rev() {
            b.arg_u32(k, 2, stage);
            b.arg_u32(k, 3, pass);
            b.launch_wg(k, b.queue, [n, 1, 1], [512.min(n), 1, 1]);
        }
    }
    b.finish();
    b.read_checksum(keys, n * 4);
    b.build()
}

fn ocl_transpose(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(1024);
    let mut b = B::new(cfg);
    let input = b.buffer(
        n * n * 4,
        Some(BufInit::RandomF32 {
            seed: 25,
            lo: 0.0,
            hi: 1.0,
        }),
    );
    let output = b.buffer(n * n * 4, None);
    let k = b.prog_kernel("transpose", "transpose");
    b.arg_mem(k, 0, input);
    b.arg_mem(k, 1, output);
    b.arg_u32(k, 2, n as u32);
    b.arg_u32(k, 3, n as u32);
    for _ in 0..16 {
        b.launch2(k, n, n);
    }
    b.finish();
    b.read_checksum(output, n * n * 4);
    b.build()
}

// ---------------------------------------------------------------------
// SHOC
// ---------------------------------------------------------------------

fn shoc_bus_speed_download(cfg: &WorkloadCfg) -> Script {
    let size = cfg.n(32 << 20);
    let mut b = B::new(cfg);
    let buf = b.buffer(size, None);
    for i in 0..8 {
        b.write(buf, size, BufInit::RandomU32 { seed: 200 + i });
    }
    b.build()
}

fn shoc_bus_speed_readback(cfg: &WorkloadCfg) -> Script {
    let size = cfg.n(32 << 20);
    let mut b = B::new(cfg);
    let buf = b.buffer(size, Some(BufInit::RandomU32 { seed: 26 }));
    for _ in 0..8 {
        b.read_checksum(buf, size);
    }
    b.build()
}

fn shoc_device_memory(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(1 << 22);
    let mut b = B::new(cfg);
    let src = b.buffer(
        n * 4,
        Some(BufInit::RandomF32 {
            seed: 27,
            lo: 0.0,
            hi: 1.0,
        }),
    );
    let dst = b.buffer(n * 4, None);
    let k = b.prog_kernel("device_copy", "copy_buf");
    b.arg_mem(k, 0, src);
    b.arg_mem(k, 1, dst);
    b.arg_u32(k, 2, n as u32);
    for _ in 0..16 {
        b.launch1(k, n);
    }
    b.finish();
    b.read_checksum(dst, n * 4);
    b.build()
}

fn shoc_fft(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(1 << 16);
    let mut b = B::new(cfg);
    let re = b.buffer(
        n * 4,
        Some(BufInit::RandomF32 {
            seed: 28,
            lo: -1.0,
            hi: 1.0,
        }),
    );
    let im = b.buffer(n * 4, Some(BufInit::Zero));
    let k = b.prog_kernel("fft", "fft_radix2");
    b.arg_mem(k, 0, re);
    b.arg_mem(k, 1, im);
    b.arg_u32(k, 2, n as u32);
    for _ in 0..16 {
        b.launch1(k, n);
    }
    b.finish();
    b.read_checksum(re, n * 4);
    b.read_checksum(im, n * 4);
    b.build()
}

fn shoc_kernel_compile(cfg: &WorkloadCfg) -> Script {
    // Measures clBuildProgram throughput: compiles, never launches.
    let mut b = B::new(cfg);
    for name in [
        "vector_add",
        "matmul",
        "fft",
        "scan",
        "reduction",
        "stencil2d",
    ] {
        b.program(name);
    }
    b.build()
}

fn shoc_max_flops(cfg: &WorkloadCfg) -> Script {
    // Deliberately long-running kernels: the benchmark whose
    // checkpoint is dominated by the synchronization phase in Fig. 5.
    let n = cfg.n_pow2(1 << 20);
    let mut b = B::new(cfg);
    let data = b.buffer(
        n * 4,
        Some(BufInit::RandomF32 {
            seed: 29,
            lo: 0.5,
            hi: 1.5,
        }),
    );
    let k = b.prog_kernel("max_flops", "max_flops");
    b.arg_mem(k, 0, data);
    b.arg_u32(k, 1, n as u32);
    b.arg_u32(k, 2, 8);
    for _ in 0..16 {
        b.launch1(k, n);
    }
    b.finish();
    b.read_checksum(data, n * 4);
    b.build()
}

fn shoc_md(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(1 << 17);
    let mut b = B::new(cfg);
    let pos = b.buffer(
        n * 12,
        Some(BufInit::RandomF32 {
            seed: 30,
            lo: 0.0,
            hi: 20.0,
        }),
    );
    let force = b.buffer(n * 12, None);
    let k = b.prog_kernel("md", "md_forces");
    b.arg_mem(k, 0, pos);
    b.arg_mem(k, 1, force);
    b.arg_u32(k, 2, n as u32);
    b.arg_f32(k, 3, 5.0);
    for _ in 0..8 {
        b.launch1(k, n);
    }
    b.finish();
    b.read_checksum(force, n * 12);
    b.build()
}

/// SHOC MD with a slowly-mutating position buffer: each step rewrites
/// a `mutation_rate` prefix of the atoms (fresh per-step seed) before
/// re-running `md_forces`. Because the force kernel only reads a small
/// neighbour window, the untouched position suffix reproduces its
/// force suffix bit-for-bit — the workload the dedup chunk store is
/// built for. Not on the roster; `ablation_dedup` drives it directly.
pub fn md_mutating(cfg: &WorkloadCfg, mutation_rate: f64, steps: u32) -> Script {
    let n = cfg.n_pow2(1 << 17);
    let mut b = B::new(cfg);
    let pos = b.buffer(
        n * 12,
        Some(BufInit::RandomF32 {
            seed: 30,
            lo: 0.0,
            hi: 20.0,
        }),
    );
    let force = b.buffer(n * 12, None);
    let k = b.prog_kernel("md", "md_forces");
    b.arg_mem(k, 0, pos);
    b.arg_mem(k, 1, force);
    b.arg_u32(k, 2, n as u32);
    b.arg_f32(k, 3, 5.0);
    let touched = ((n as f64 * mutation_rate).ceil() as u64).min(n);
    for step in 0..steps {
        if touched > 0 {
            b.write(
                pos,
                touched * 12,
                BufInit::RandomF32 {
                    seed: 500 + step as u64,
                    lo: 0.0,
                    hi: 20.0,
                },
            );
        }
        b.launch1(k, n);
        b.finish();
    }
    b.read_checksum(pos, n * 12);
    b.read_checksum(force, n * 12);
    b.build()
}

/// Parameterized workload for the live-checkpoint ablation: `bufs`
/// float buffers of `bytes_each`, stepped by rotating triad launches
/// that each rewrite only the first eighth of one buffer (plus a
/// host write of the first sixteenth). The 1D regular-stride kernel
/// keeps the dirty ranges *precise*, so a live cut taken mid-run only
/// has to copy-on-write the small prefixes the later steps touch —
/// the access pattern the live mode is built for. Not on the roster;
/// `ablation_live` drives it directly.
pub fn live_mutating(cfg: &WorkloadCfg, bufs: usize, bytes_each: u64, steps: u32) -> Script {
    assert!(bufs >= 1 && bytes_each >= 64);
    let n = bytes_each / 4; // f32 elements
    let mut b = B::new(cfg);
    let handles: Vec<Reg> = (0..bufs)
        .map(|i| {
            b.buffer(
                bytes_each,
                Some(BufInit::RandomF32 {
                    seed: 700 + i as u64,
                    lo: -1.0,
                    hi: 1.0,
                }),
            )
        })
        .collect();
    let k = b.prog_kernel("triad", "triad");
    for step in 0..steps {
        let t = step as usize % bufs;
        // Host-side rewrite of a sixteenth of the rotating target.
        b.write(
            handles[t],
            (n / 16).max(16) * 4,
            BufInit::RandomF32 {
                seed: 900 + step as u64,
                lo: -1.0,
                hi: 1.0,
            },
        );
        // Device-side rewrite of an eighth: a[i] = b[i] + s*c[i] over
        // gid 0..n/8 only, which the stride analysis narrows to the
        // exact written prefix.
        let sub = (n / 8).max(16);
        b.arg_mem(k, 0, handles[t]);
        b.arg_mem(k, 1, handles[(t + 1) % bufs]);
        b.arg_mem(k, 2, handles[(t + 2) % bufs]);
        b.arg_f32(k, 3, 0.5 + step as f32);
        b.arg_u32(k, 4, sub as u32);
        b.launch1(k, sub);
        b.finish();
    }
    for &h in &handles {
        b.read_checksum(h, bytes_each);
    }
    b.build()
}

fn shoc_queue_delay(cfg: &WorkloadCfg) -> Script {
    // Minimal kernels, one Finish per launch: pure API latency.
    let mut b = B::new(cfg);
    let buf = b.buffer(64, Some(BufInit::Zero));
    let k = b.prog_kernel("null", "null_kernel");
    b.arg_mem(k, 0, buf);
    for _ in 0..64 {
        b.launch1(k, 1);
        b.finish();
    }
    b.build()
}

fn shoc_reduction(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(1 << 22);
    let mut b = B::new(cfg);
    let input = b.buffer(
        n * 4,
        Some(BufInit::RandomF32 {
            seed: 31,
            lo: 0.0,
            hi: 1.0,
        }),
    );
    let output = b.buffer(4, None);
    let k = b.prog_kernel("reduction", "reduce_sum");
    b.arg_mem(k, 0, input);
    b.arg_mem(k, 1, output);
    b.arg_local(k, 2, 256 * 4);
    b.arg_u32(k, 3, n as u32);
    for _ in 0..32 {
        b.launch1(k, n);
    }
    b.finish();
    b.read_checksum(output, 4);
    b.build()
}

fn shoc_s3d(cfg: &WorkloadCfg) -> Script {
    // 27 separate cl_program objects — the restart outlier of Fig. 7.
    let n = cfg.n_pow2(1 << 16);
    let mut b = B::new(cfg);
    let state = b.buffer(
        n * 4,
        Some(BufInit::RandomF32 {
            seed: 32,
            lo: 0.5,
            hi: 2.0,
        }),
    );
    let rates = b.buffer(n * 4, None);
    for kidx in 0..27 {
        let prog = b.program(&format!("s3d_{kidx}"));
        let k = b.kernel(prog, &format!("rate_{kidx}"));
        b.arg_mem(k, 0, state);
        b.arg_mem(k, 1, rates);
        b.arg_u32(k, 2, n as u32);
        b.launch1(k, n);
    }
    b.finish();
    b.read_checksum(rates, n * 4);
    b.build()
}

fn shoc_sgemm(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(128);
    let mut b = B::new(cfg);
    let a = b.buffer(
        n * n * 4,
        Some(BufInit::RandomF32 {
            seed: 33,
            lo: -1.0,
            hi: 1.0,
        }),
    );
    let bb = b.buffer(
        n * n * 4,
        Some(BufInit::RandomF32 {
            seed: 34,
            lo: -1.0,
            hi: 1.0,
        }),
    );
    let c = b.buffer(n * n * 4, Some(BufInit::Zero));
    let k = b.prog_kernel("sgemm", "sgemm");
    b.arg_mem(k, 0, a);
    b.arg_mem(k, 1, bb);
    b.arg_mem(k, 2, c);
    b.arg_u32(k, 3, n as u32);
    b.arg_u32(k, 4, n as u32);
    b.arg_u32(k, 5, n as u32);
    b.arg_f32(k, 6, 1.0);
    b.arg_f32(k, 7, 0.5);
    for _ in 0..16 {
        b.launch2(k, n, n);
    }
    b.finish();
    b.read_checksum(c, n * n * 4);
    b.build()
}

fn shoc_scan(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(1 << 16);
    let mut b = B::new(cfg);
    let input = b.buffer(
        n * 4,
        Some(BufInit::RandomF32 {
            seed: 35,
            lo: 0.0,
            hi: 1.0,
        }),
    );
    let output = b.buffer(n * 4, None);
    let k = b.prog_kernel("scan", "scan_exclusive");
    b.arg_mem(k, 0, input);
    b.arg_mem(k, 1, output);
    b.arg_local(k, 2, 512 * 4);
    b.arg_u32(k, 3, n as u32);
    for _ in 0..32 {
        b.launch1(k, n);
        b.finish();
    }
    b.read_checksum(output, n * 4);
    b.build()
}

fn shoc_sort(cfg: &WorkloadCfg) -> Script {
    let n = cfg.n_pow2(1 << 22);
    let mut b = B::new(cfg);
    let keys = b.buffer(n * 4, Some(BufInit::RandomU32 { seed: 36 }));
    let k = b.prog_kernel("radix_sort", "radix_sort");
    b.arg_mem(k, 0, keys);
    b.arg_u32(k, 1, n as u32);
    for _ in 0..8 {
        b.launch1(k, n);
    }
    b.finish();
    b.read_checksum(keys, n * 4);
    b.build()
}

fn shoc_stencil2d(cfg: &WorkloadCfg) -> Script {
    // Chatty *and* compute-light: overhead shows under CheCL (§IV-A).
    let n = cfg.n_pow2(1024);
    let mut b = B::new(cfg);
    let ping = b.buffer(
        n * n * 4,
        Some(BufInit::RandomF32 {
            seed: 37,
            lo: 0.0,
            hi: 1.0,
        }),
    );
    let pong = b.buffer(n * n * 4, None);
    let k = b.prog_kernel("stencil2d", "stencil2d");
    for step in 0..32 {
        let (s, d) = if step % 2 == 0 {
            (ping, pong)
        } else {
            (pong, ping)
        };
        b.arg_mem(k, 0, s);
        b.arg_mem(k, 1, d);
        b.arg_u32(k, 2, n as u32);
        b.arg_u32(k, 3, n as u32);
        b.launch2(k, n, n);
        b.finish();
    }
    b.read_checksum(ping, n * n * 4);
    b.build()
}

fn shoc_triad(cfg: &WorkloadCfg) -> Script {
    // Streaming triad: data transfer dominates the total time, so the
    // proxy's extra copy is maximally visible (Fig. 4).
    let n = cfg.n_pow2(1 << 22);
    let mut b = B::new(cfg);
    let a = b.buffer(n * 4, None);
    let bb = b.buffer(n * 4, None);
    let c = b.buffer(n * 4, None);
    let k = b.prog_kernel("triad", "triad");
    b.arg_mem(k, 0, a);
    b.arg_mem(k, 1, bb);
    b.arg_mem(k, 2, c);
    b.arg_f32(k, 3, 1.75);
    b.arg_u32(k, 4, n as u32);
    for i in 0..8 {
        b.write(
            bb,
            n * 4,
            BufInit::RandomF32 {
                seed: 300 + i,
                lo: 0.0,
                hi: 1.0,
            },
        );
        b.write(
            c,
            n * 4,
            BufInit::RandomF32 {
                seed: 400 + i,
                lo: 0.0,
                hi: 1.0,
            },
        );
        b.launch1(k, n);
        b.read_checksum(a, n * 4);
    }
    b.build()
}

// ---------------------------------------------------------------------
// Parboil
// ---------------------------------------------------------------------

fn parboil_cp(cfg: &WorkloadCfg) -> Script {
    let natoms = cfg.n(256);
    let gw = cfg.n_pow2(512);
    let gh = gw;
    let mut b = B::new(cfg);
    let atoms = b.buffer(
        natoms * 16,
        Some(BufInit::RandomF32 {
            seed: 38,
            lo: 0.0,
            hi: 64.0,
        }),
    );
    let grid = b.buffer(gw * gh * 4, None);
    let k = b.prog_kernel("cp", "cp_potential");
    b.arg_mem(k, 0, atoms);
    b.arg_mem(k, 1, grid);
    b.arg_u32(k, 2, natoms as u32);
    b.arg_u32(k, 3, gw as u32);
    b.arg_u32(k, 4, gh as u32);
    for _ in 0..4 {
        b.launch2(k, gw, gh);
    }
    b.finish();
    b.read_checksum(grid, gw * gh * 4);
    b.build()
}

fn parboil_mri(cfg: &WorkloadCfg, fhd: bool, large: bool) -> Script {
    let (nk, nx) = if large {
        (cfg.n_pow2(1024), cfg.n_pow2(4096))
    } else {
        (cfg.n_pow2(256), cfg.n_pow2(1024))
    };
    let mut b = B::new(cfg);
    let mk_buf = |b: &mut B, n: u64, seed: u64| {
        b.buffer(
            n * 4,
            Some(BufInit::RandomF32 {
                seed,
                lo: -1.0,
                hi: 1.0,
            }),
        )
    };
    if fhd {
        let rphi = mk_buf(&mut b, nk, 40);
        let iphi = mk_buf(&mut b, nk, 41);
        let kx = mk_buf(&mut b, nk, 42);
        let ky = mk_buf(&mut b, nk, 43);
        let kz = mk_buf(&mut b, nk, 44);
        let x = mk_buf(&mut b, nx, 45);
        let y = mk_buf(&mut b, nx, 46);
        let z = mk_buf(&mut b, nx, 47);
        let rfhd = b.buffer(nx * 4, None);
        let ifhd = b.buffer(nx * 4, None);
        let k = b.prog_kernel("mri_fhd", "mri_fhd");
        for (i, buf) in [rphi, iphi, kx, ky, kz, x, y, z, rfhd, ifhd]
            .iter()
            .enumerate()
        {
            b.arg_mem(k, i as u32, *buf);
        }
        b.arg_u32(k, 10, nk as u32);
        b.arg_u32(k, 11, nx as u32);
        for _ in 0..4 {
            b.launch1(k, nx);
        }
        b.finish();
        b.read_checksum(rfhd, nx * 4);
        b.read_checksum(ifhd, nx * 4);
    } else {
        let phi = mk_buf(&mut b, nk, 50);
        let kx = mk_buf(&mut b, nk, 51);
        let ky = mk_buf(&mut b, nk, 52);
        let kz = mk_buf(&mut b, nk, 53);
        let x = mk_buf(&mut b, nx, 54);
        let y = mk_buf(&mut b, nx, 55);
        let z = mk_buf(&mut b, nx, 56);
        let qr = b.buffer(nx * 4, None);
        let qi = b.buffer(nx * 4, None);
        let k = b.prog_kernel("mri_q", "mri_q");
        for (i, buf) in [phi, kx, ky, kz, x, y, z, qr, qi].iter().enumerate() {
            b.arg_mem(k, i as u32, *buf);
        }
        b.arg_u32(k, 9, nk as u32);
        b.arg_u32(k, 10, nx as u32);
        for _ in 0..4 {
            b.launch1(k, nx);
        }
        b.finish();
        b.read_checksum(qr, nx * 4);
        b.read_checksum(qi, nx * 4);
    }
    b.build()
}

// ---------------------------------------------------------------------
// Roster
// ---------------------------------------------------------------------

macro_rules! workload {
    ($name:literal, $suite:expr, $f:expr) => {
        Workload {
            name: $name,
            suite: $suite,
            build: $f,
        }
    };
}

/// Every benchmark in figure-axis order.
pub fn all_workloads() -> Vec<Workload> {
    use Suite::*;
    vec![
        workload!("oclBandwidthTest", NvidiaSdk, ocl_bandwidth_test),
        workload!("oclBlackScholes", NvidiaSdk, ocl_black_scholes),
        workload!(
            "oclConvolutionSeparable",
            NvidiaSdk,
            ocl_convolution_separable
        ),
        workload!("oclDCT8x8", NvidiaSdk, ocl_dct8x8),
        workload!("oclDXTCompression", NvidiaSdk, ocl_dxt_compression),
        workload!("oclDotProduct", NvidiaSdk, ocl_dot_product),
        workload!("oclFDTD3d", NvidiaSdk, ocl_fdtd3d),
        workload!("oclHistogram", NvidiaSdk, ocl_histogram),
        workload!("oclMatVecMul", NvidiaSdk, ocl_matvecmul),
        workload!("oclMatrixMul", NvidiaSdk, ocl_matrixmul),
        workload!("oclMersenneTwister", NvidiaSdk, ocl_mersenne_twister),
        workload!("oclQuasirandomGenerator", NvidiaSdk, ocl_quasirandom),
        workload!("oclRadixSort", NvidiaSdk, ocl_radix_sort),
        workload!("oclReduction", NvidiaSdk, ocl_reduction),
        workload!("oclScan", NvidiaSdk, ocl_scan),
        workload!("oclSimpleMultiGPU", NvidiaSdk, ocl_simple_multi_gpu),
        workload!("oclSortingNetworks", NvidiaSdk, ocl_sorting_networks),
        workload!("oclTranspose", NvidiaSdk, ocl_transpose),
        workload!("oclVectorAdd", NvidiaSdk, ocl_vector_add),
        workload!("BusSpeedDownload", Shoc, shoc_bus_speed_download),
        workload!("BusSpeedReadback", Shoc, shoc_bus_speed_readback),
        workload!("DeviceMemory", Shoc, shoc_device_memory),
        workload!("FFT", Shoc, shoc_fft),
        workload!("KernelCompile", Shoc, shoc_kernel_compile),
        workload!("MaxFlops", Shoc, shoc_max_flops),
        workload!("MD", Shoc, shoc_md),
        workload!("QueueDelay", Shoc, shoc_queue_delay),
        workload!("Reduction", Shoc, shoc_reduction),
        workload!("S3D", Shoc, shoc_s3d),
        workload!("SGEMM", Shoc, shoc_sgemm),
        workload!("Scan", Shoc, shoc_scan),
        workload!("Sort", Shoc, shoc_sort),
        workload!("Stencil2D", Shoc, shoc_stencil2d),
        workload!("Triad", Shoc, shoc_triad),
        workload!("cp_default", Parboil, |c| parboil_cp(c)),
        workload!("mri-fhd_small", Parboil, |c| parboil_mri(c, true, false)),
        workload!("mri-fhd_large", Parboil, |c| parboil_mri(c, true, true)),
        workload!("mri-q_small", Parboil, |c| parboil_mri(c, false, false)),
        workload!("mri-q_large", Parboil, |c| parboil_mri(c, false, true)),
    ]
}

/// Look up a workload by its figure-axis name.
pub fn workload_by_name(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_paper_counts() {
        let all = all_workloads();
        let nv = all.iter().filter(|w| w.suite == Suite::NvidiaSdk).count();
        let shoc = all.iter().filter(|w| w.suite == Suite::Shoc).count();
        let parboil = all.iter().filter(|w| w.suite == Suite::Parboil).count();
        assert_eq!(nv, 19, "19 NVIDIA SDK samples (§IV)");
        assert_eq!(shoc, 15, "SHOC roster incl. BusSpeed*/KernelCompile");
        assert_eq!(parboil, 5, "cp + mri-fhd/mri-q in two sizes");
    }

    #[test]
    fn every_script_generates() {
        let cfg = WorkloadCfg {
            scale: 0.01,
            ..WorkloadCfg::default()
        };
        for w in all_workloads() {
            let script = w.script(&cfg);
            assert!(!script.ops.is_empty(), "{} is empty", w.name);
        }
    }

    #[test]
    fn device_memory_changes_fdtd_problem_size() {
        // The Radeon's 1 GB shrinks the problem (and later the
        // checkpoint file), as the paper observes.
        let big = ocl_fdtd3d(&WorkloadCfg {
            device_mem: ByteSize::gib(4),
            ..WorkloadCfg::default()
        });
        let small = ocl_fdtd3d(&WorkloadCfg {
            device_mem: ByteSize::gib(1),
            ..WorkloadCfg::default()
        });
        let buf_size = |s: &Script| {
            s.ops
                .iter()
                .filter_map(|o| match o {
                    Op::CreateBuffer { size, .. } => Some(*size),
                    _ => None,
                })
                .sum::<u64>()
        };
        assert!(buf_size(&big) > buf_size(&small));
    }

    #[test]
    fn chatty_workloads_have_many_launches() {
        let cfg = WorkloadCfg::default();
        let sn = workload_by_name("oclSortingNetworks").unwrap().script(&cfg);
        assert!(sn.kernel_launches() > 50, "{}", sn.kernel_launches());
        let qd = workload_by_name("QueueDelay").unwrap().script(&cfg);
        assert_eq!(qd.kernel_launches(), 64);
        let bw = workload_by_name("oclBandwidthTest").unwrap().script(&cfg);
        assert_eq!(bw.kernel_launches(), 0);
    }

    #[test]
    fn s3d_builds_27_programs() {
        let s = workload_by_name("S3D")
            .unwrap()
            .script(&WorkloadCfg::default());
        let programs = s
            .ops
            .iter()
            .filter(|o| matches!(o, Op::CreateProgram { .. }))
            .count();
        assert_eq!(programs, 27);
    }

    #[test]
    fn names_are_unique() {
        let all = all_workloads();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }
}
