//! `workloads` — the paper's benchmark programs as checkpointable
//! applications.
//!
//! §IV evaluates CheCL on 19 NVIDIA GPU Computing SDK 3.0 samples, the
//! SHOC 0.9.1 suite, and three Parboil ports (cp, mri-fhd, mri-q).
//! Each of those programs lives here as a [`script::Script`]: a
//! serializable list of OpenCL host operations plus a register file for
//! the handles it holds. Serializability is the point — the script,
//! its program counter and its registers *are* the application's host
//! memory, so a BLCR dump captures the application mid-run and a
//! restart resumes it, oblivious to whether the handles in its
//! registers are native or CheCL handles.
//!
//! * [`script`] — the op/script model and its interpreter.
//! * [`catalog`] — one entry per benchmark, sized per device memory
//!   (the paper notes oclFDTD3d/oclMatVecMul size themselves from the
//!   device, which is why their checkpoint files shrink on the 1 GB
//!   Radeon).
//! * [`session`] — glue: run a workload natively or under CheCL,
//!   checkpoint it mid-flight, restart it, and verify checksums.

pub mod catalog;
pub mod script;
pub mod session;
pub mod supervise;

pub use catalog::{all_workloads, workload_by_name, Suite, Workload, WorkloadCfg};
pub use script::{AppProgram, BufInit, Op, Reg, RunStatus, Script, StopCondition};
pub use session::{
    CheclSession, NativeSession, PolicyRunOutcome, RecoveryRunReport, YieldPoint, APP_SEGMENT,
};
pub use supervise::{run_supervised, SuperviseSetup};
