//! The op-script application model and its interpreter.
//!
//! A script is host code flattened into a serializable instruction
//! list. Handles returned by the API land in a register file as opaque
//! `u64`s — exactly how a C program holds `cl_mem` variables on its
//! stack/heap. The interpreter advances one op at a time so a
//! checkpoint can land at any instruction boundary (in particular,
//! right after a kernel launch, with the command still in flight — the
//! Fig. 5 measurement protocol).

use clspec::api::{ApiRequest, ClApi};
use clspec::error::ClResult;
use clspec::handles::{CommandQueue, Context, DeviceId, Event, Kernel, Mem, Program, RawHandle};
use clspec::types::{ArgValue, DeviceType, MemFlags, NDRange, QueueProps, SamplerDesc};
use simcore::codec::{Codec, CodecError, Reader};
use simcore::{fnv1a64, impl_codec_struct, SimTime, SplitMix64};

/// A register index in the application's handle file.
pub type Reg = u16;

/// Number of registers every application gets.
pub const NUM_REGS: usize = 96;

/// How a buffer (or a `WriteBuffer`'s payload) is filled.
///
/// Data is generated deterministically from the seed so that a restart
/// replays identical inputs and checksums are comparable across runs,
/// vendors and devices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BufInit {
    /// All zeroes.
    Zero,
    /// Uniform `f32` values in `[lo, hi)`.
    RandomF32 {
        /// Generator seed.
        seed: u64,
        /// Lower bound.
        lo: f32,
        /// Upper bound.
        hi: f32,
    },
    /// Uniform random `u32` values.
    RandomU32 {
        /// Generator seed.
        seed: u64,
    },
    /// `0.0, 1.0, 2.0, …` ramp of `f32`s.
    Ramp,
}

impl BufInit {
    /// Materialise `size` bytes of data.
    pub fn generate(&self, size: u64) -> Vec<u8> {
        let size = size as usize;
        match self {
            BufInit::Zero => vec![0u8; size],
            BufInit::RandomF32 { seed, lo, hi } => {
                let mut rng = SplitMix64::new(*seed);
                let mut out = Vec::with_capacity(size);
                for _ in 0..size / 4 {
                    let v = lo + (hi - lo) * rng.next_f32();
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.resize(size, 0);
                out
            }
            BufInit::RandomU32 { seed } => {
                let mut rng = SplitMix64::new(*seed);
                let mut out = Vec::with_capacity(size);
                for _ in 0..size / 4 {
                    out.extend_from_slice(&rng.next_u32().to_le_bytes());
                }
                out.resize(size, 0);
                out
            }
            BufInit::Ramp => {
                let mut out = Vec::with_capacity(size);
                for i in 0..size / 4 {
                    out.extend_from_slice(&(i as f32).to_le_bytes());
                }
                out.resize(size, 0);
                out
            }
        }
    }
}

impl Codec for BufInit {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BufInit::Zero => out.push(0),
            BufInit::RandomF32 { seed, lo, hi } => {
                out.push(1);
                seed.encode(out);
                lo.encode(out);
                hi.encode(out);
            }
            BufInit::RandomU32 { seed } => {
                out.push(2);
                seed.encode(out);
            }
            BufInit::Ramp => out.push(3),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match u8::decode(r)? {
            0 => BufInit::Zero,
            1 => BufInit::RandomF32 {
                seed: u64::decode(r)?,
                lo: f32::decode(r)?,
                hi: f32::decode(r)?,
            },
            2 => BufInit::RandomU32 {
                seed: u64::decode(r)?,
            },
            3 => BufInit::Ramp,
            _ => return Err(CodecError::Invalid("BufInit tag")),
        })
    }
}

/// One host-code operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// `clGetPlatformIDs`; stores the first platform.
    GetPlatform { out: Reg },
    /// `clGetDeviceIDs`; stores up to `count` devices in consecutive
    /// registers starting at `out` (missing slots repeat the first).
    GetDevices {
        platform: Reg,
        dtype: DeviceType,
        out: Reg,
        count: u16,
    },
    /// `clCreateContext` over one device.
    CreateContext { device: Reg, out: Reg },
    /// `clCreateCommandQueue`.
    CreateQueue { context: Reg, device: Reg, out: Reg },
    /// `clCreateBuffer`, optionally initialised via `COPY_HOST_PTR`.
    CreateBuffer {
        context: Reg,
        flags: MemFlags,
        size: u64,
        init: Option<BufInit>,
        out: Reg,
    },
    /// `clEnqueueWriteBuffer` (blocking) with generated data.
    WriteBuffer {
        queue: Reg,
        buf: Reg,
        size: u64,
        init: BufInit,
    },
    /// `clEnqueueReadBuffer` (blocking); the FNV-64 of the bytes is
    /// appended to the application's checksum log.
    ReadBufferChecksum { queue: Reg, buf: Reg, size: u64 },
    /// `clCreateProgramWithSource` from the named corpus program.
    CreateProgram {
        name: String,
        context: Reg,
        out: Reg,
    },
    /// `clBuildProgram`.
    BuildProgram { prog: Reg },
    /// `clCreateKernel`.
    CreateKernel { prog: Reg, name: String, out: Reg },
    /// `clCreateSampler`.
    CreateSampler { context: Reg, out: Reg },
    /// `clSetKernelArg` with a buffer handle.
    SetArgMem { kernel: Reg, index: u32, buf: Reg },
    /// `clSetKernelArg` with a sampler handle.
    SetArgSampler {
        kernel: Reg,
        index: u32,
        sampler: Reg,
    },
    /// `clSetKernelArg` with a `u32` scalar.
    SetArgU32 { kernel: Reg, index: u32, value: u32 },
    /// `clSetKernelArg` with an `f32` scalar.
    SetArgF32 { kernel: Reg, index: u32, value: f32 },
    /// `clSetKernelArg` declaring `__local` scratch.
    SetArgLocal { kernel: Reg, index: u32, size: u64 },
    /// `clEnqueueNDRangeKernel`.
    Launch {
        kernel: Reg,
        queue: Reg,
        global: [u64; 3],
        local: Option<[u64; 3]>,
    },
    /// `clFinish`.
    Finish { queue: Reg },
    /// `clEnqueueMarker`, event stored.
    Marker { queue: Reg, out: Reg },
    /// `clWaitForEvents` on one stored event.
    WaitEvent { event: Reg },
    /// `clReleaseMemObject`.
    ReleaseMem { buf: Reg },
    /// `clCreateImage2D` (single-channel float texels).
    CreateImage {
        context: Reg,
        width: u64,
        height: u64,
        init: Option<BufInit>,
        out: Reg,
    },
    /// `clEnqueueReadImage` (whole image, blocking) with checksum.
    ReadImageChecksum { queue: Reg, image: Reg },
}

macro_rules! op_codec {
    ($($tag:literal => $variant:ident { $($field:ident),* }),+ $(,)?) => {
        impl Codec for Op {
            fn encode(&self, out: &mut Vec<u8>) {
                match self {
                    $(Op::$variant { $($field),* } => {
                        out.push($tag);
                        $($field.encode(out);)*
                    })+
                }
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok(match u8::decode(r)? {
                    $($tag => Op::$variant {
                        $($field: Codec::decode(r)?),*
                    },)+
                    _ => return Err(CodecError::Invalid("Op tag")),
                })
            }
        }
    };
}

op_codec! {
    0 => GetPlatform { out },
    1 => GetDevices { platform, dtype, out, count },
    2 => CreateContext { device, out },
    3 => CreateQueue { context, device, out },
    4 => CreateBuffer { context, flags, size, init, out },
    5 => WriteBuffer { queue, buf, size, init },
    6 => ReadBufferChecksum { queue, buf, size },
    7 => CreateProgram { name, context, out },
    8 => BuildProgram { prog },
    9 => CreateKernel { prog, name, out },
    10 => CreateSampler { context, out },
    11 => SetArgMem { kernel, index, buf },
    12 => SetArgSampler { kernel, index, sampler },
    13 => SetArgU32 { kernel, index, value },
    14 => SetArgF32 { kernel, index, value },
    15 => SetArgLocal { kernel, index, size },
    16 => Launch { kernel, queue, global, local },
    17 => Finish { queue },
    18 => Marker { queue, out },
    19 => WaitEvent { event },
    20 => ReleaseMem { buf },
    21 => CreateImage { context, width, height, init, out },
    22 => ReadImageChecksum { queue, image },
}

/// A complete benchmark program.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Script {
    /// Instructions in execution order.
    pub ops: Vec<Op>,
}

impl Script {
    /// Number of `Launch` ops in the script.
    pub fn kernel_launches(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Launch { .. }))
            .count()
    }
}

impl Codec for Script {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ops.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Script {
            ops: Vec::decode(r)?,
        })
    }
}

/// The live (and checkpointable) state of a running application.
#[derive(Clone, Debug, PartialEq)]
pub struct AppProgram {
    /// The program text.
    pub script: Script,
    /// Program counter: next op to execute.
    pub pc: u64,
    /// Handle register file.
    pub regs: Vec<u64>,
    /// Checksum log from `ReadBufferChecksum` ops.
    pub checksums: Vec<u64>,
    /// Kernel launches executed so far.
    pub kernels_launched: u64,
}

impl_codec_struct!(AppProgram {
    script,
    pc,
    regs,
    checksums,
    kernels_launched
});

impl AppProgram {
    /// Load a script, ready to run from the first op.
    pub fn new(script: Script) -> Self {
        AppProgram {
            script,
            pc: 0,
            regs: vec![0; NUM_REGS],
            checksums: Vec::new(),
            kernels_launched: 0,
        }
    }

    /// `true` once every op has executed.
    pub fn is_done(&self) -> bool {
        self.pc as usize >= self.script.ops.len()
    }

    fn reg(&self, r: Reg) -> u64 {
        self.regs[r as usize]
    }

    fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r as usize] = v;
    }

    /// Execute exactly one op against `api`, advancing `now`.
    pub fn step(&mut self, api: &mut dyn ClApi, now: &mut SimTime) -> ClResult<()> {
        let op = self.script.ops[self.pc as usize].clone();
        self.exec(api, now, &op)?;
        self.pc += 1;
        Ok(())
    }

    /// Run until `stop` is satisfied (or the script ends).
    pub fn run_until(
        &mut self,
        api: &mut dyn ClApi,
        now: &mut SimTime,
        stop: StopCondition,
    ) -> ClResult<RunStatus> {
        while !self.is_done() {
            self.step(api, now)?;
            match stop {
                StopCondition::Completion => {}
                StopCondition::AfterKernel(n) => {
                    if self.kernels_launched >= n {
                        return Ok(RunStatus::Paused);
                    }
                }
                StopCondition::AfterOps(n) => {
                    if self.pc >= n {
                        return Ok(RunStatus::Paused);
                    }
                }
            }
        }
        Ok(RunStatus::Done)
    }

    fn exec(&mut self, api: &mut dyn ClApi, now: &mut SimTime, op: &Op) -> ClResult<()> {
        match op {
            Op::GetPlatform { out } => {
                let platforms = api
                    .call(now, ApiRequest::GetPlatformIds)?
                    .into_platforms()?;
                self.set_reg(*out, platforms[0].raw().0);
            }
            Op::GetDevices {
                platform,
                dtype,
                out,
                count,
            } => {
                let devices = api
                    .call(
                        now,
                        ApiRequest::GetDeviceIds {
                            platform: clspec::PlatformId::from_raw(RawHandle(self.reg(*platform))),
                            device_type: *dtype,
                        },
                    )?
                    .into_devices()?;
                for i in 0..*count {
                    let dev = devices.get(i as usize).unwrap_or(&devices[0]);
                    self.set_reg(out + i, dev.raw().0);
                }
            }
            Op::CreateContext { device, out } => {
                let ctx = api
                    .call(
                        now,
                        ApiRequest::CreateContext {
                            devices: vec![DeviceId::from_raw(RawHandle(self.reg(*device)))],
                        },
                    )?
                    .into_context()?;
                self.set_reg(*out, ctx.raw().0);
            }
            Op::CreateQueue {
                context,
                device,
                out,
            } => {
                let q = api
                    .call(
                        now,
                        ApiRequest::CreateCommandQueue {
                            context: Context::from_raw(RawHandle(self.reg(*context))),
                            device: DeviceId::from_raw(RawHandle(self.reg(*device))),
                            props: QueueProps::default(),
                        },
                    )?
                    .into_queue()?;
                self.set_reg(*out, q.raw().0);
            }
            Op::CreateBuffer {
                context,
                flags,
                size,
                init,
                out,
            } => {
                let host_data = init.as_ref().map(|i| i.generate(*size));
                let mut flags = *flags;
                if host_data.is_some() && !flags.contains(MemFlags::USE_HOST_PTR) {
                    flags = flags | MemFlags::COPY_HOST_PTR;
                }
                let mem = api
                    .call(
                        now,
                        ApiRequest::CreateBuffer {
                            context: Context::from_raw(RawHandle(self.reg(*context))),
                            flags,
                            size: *size,
                            host_data,
                        },
                    )?
                    .into_mem()?;
                self.set_reg(*out, mem.raw().0);
            }
            Op::WriteBuffer {
                queue,
                buf,
                size,
                init,
            } => {
                let data = init.generate(*size);
                let ev = api
                    .call(
                        now,
                        ApiRequest::EnqueueWriteBuffer {
                            queue: CommandQueue::from_raw(RawHandle(self.reg(*queue))),
                            mem: Mem::from_raw(RawHandle(self.reg(*buf))),
                            blocking: true,
                            offset: 0,
                            data,
                            wait_list: vec![],
                        },
                    )?
                    .into_event()?;
                api.call(now, ApiRequest::ReleaseEvent { event: ev })?;
            }
            Op::ReadBufferChecksum { queue, buf, size } => {
                let (data, ev) = api
                    .call(
                        now,
                        ApiRequest::EnqueueReadBuffer {
                            queue: CommandQueue::from_raw(RawHandle(self.reg(*queue))),
                            mem: Mem::from_raw(RawHandle(self.reg(*buf))),
                            blocking: true,
                            offset: 0,
                            size: *size,
                            wait_list: vec![],
                        },
                    )?
                    .into_data_event()?;
                api.call(now, ApiRequest::ReleaseEvent { event: ev })?;
                self.checksums.push(fnv1a64(&data));
            }
            Op::CreateProgram { name, context, out } => {
                let source = clkernels::program_source(name)
                    .unwrap_or_else(|| panic!("unknown corpus program {name}"))
                    .source;
                let p = api
                    .call(
                        now,
                        ApiRequest::CreateProgramWithSource {
                            context: Context::from_raw(RawHandle(self.reg(*context))),
                            source,
                        },
                    )?
                    .into_program()?;
                self.set_reg(*out, p.raw().0);
            }
            Op::BuildProgram { prog } => {
                api.call(
                    now,
                    ApiRequest::BuildProgram {
                        program: Program::from_raw(RawHandle(self.reg(*prog))),
                        options: String::new(),
                    },
                )?;
            }
            Op::CreateKernel { prog, name, out } => {
                let k = api
                    .call(
                        now,
                        ApiRequest::CreateKernel {
                            program: Program::from_raw(RawHandle(self.reg(*prog))),
                            name: name.clone(),
                        },
                    )?
                    .into_kernel()?;
                self.set_reg(*out, k.raw().0);
            }
            Op::CreateSampler { context, out } => {
                let s = api
                    .call(
                        now,
                        ApiRequest::CreateSampler {
                            context: Context::from_raw(RawHandle(self.reg(*context))),
                            desc: SamplerDesc {
                                normalized_coords: true,
                                addressing_mode: 0,
                                filter_mode: 0,
                            },
                        },
                    )?
                    .into_sampler()?;
                self.set_reg(*out, s.raw().0);
            }
            Op::SetArgMem { kernel, index, buf } => {
                self.set_arg(
                    api,
                    now,
                    *kernel,
                    *index,
                    ArgValue::handle(RawHandle(self.reg(*buf))),
                )?;
            }
            Op::SetArgSampler {
                kernel,
                index,
                sampler,
            } => {
                self.set_arg(
                    api,
                    now,
                    *kernel,
                    *index,
                    ArgValue::handle(RawHandle(self.reg(*sampler))),
                )?;
            }
            Op::SetArgU32 {
                kernel,
                index,
                value,
            } => {
                self.set_arg(api, now, *kernel, *index, ArgValue::scalar(*value))?;
            }
            Op::SetArgF32 {
                kernel,
                index,
                value,
            } => {
                self.set_arg(api, now, *kernel, *index, ArgValue::scalar(*value))?;
            }
            Op::SetArgLocal {
                kernel,
                index,
                size,
            } => {
                self.set_arg(api, now, *kernel, *index, ArgValue::LocalMem(*size))?;
            }
            Op::Launch {
                kernel,
                queue,
                global,
                local,
            } => {
                let nd = |s: &[u64; 3]| NDRange {
                    dims: if s[2] > 1 {
                        3
                    } else if s[1] > 1 {
                        2
                    } else {
                        1
                    },
                    sizes: *s,
                };
                let ev = api
                    .call(
                        now,
                        ApiRequest::EnqueueNDRangeKernel {
                            queue: CommandQueue::from_raw(RawHandle(self.reg(*queue))),
                            kernel: Kernel::from_raw(RawHandle(self.reg(*kernel))),
                            global: nd(global),
                            local: local.as_ref().map(nd),
                            wait_list: vec![],
                        },
                    )?
                    .into_event()?;
                api.call(now, ApiRequest::ReleaseEvent { event: ev })?;
                self.kernels_launched += 1;
            }
            Op::Finish { queue } => {
                api.call(
                    now,
                    ApiRequest::Finish {
                        queue: CommandQueue::from_raw(RawHandle(self.reg(*queue))),
                    },
                )?;
            }
            Op::Marker { queue, out } => {
                let ev = api
                    .call(
                        now,
                        ApiRequest::EnqueueMarker {
                            queue: CommandQueue::from_raw(RawHandle(self.reg(*queue))),
                        },
                    )?
                    .into_event()?;
                self.set_reg(*out, ev.raw().0);
            }
            Op::WaitEvent { event } => {
                api.call(
                    now,
                    ApiRequest::WaitForEvents {
                        events: vec![Event::from_raw(RawHandle(self.reg(*event)))],
                    },
                )?;
            }
            Op::ReleaseMem { buf } => {
                api.call(
                    now,
                    ApiRequest::ReleaseMemObject {
                        mem: Mem::from_raw(RawHandle(self.reg(*buf))),
                    },
                )?;
            }
            Op::CreateImage {
                context,
                width,
                height,
                init,
                out,
            } => {
                let host_data = init.as_ref().map(|i| i.generate(width * height * 4));
                let flags = if host_data.is_some() {
                    MemFlags::READ_WRITE | MemFlags::COPY_HOST_PTR
                } else {
                    MemFlags::READ_WRITE
                };
                let mem = api
                    .call(
                        now,
                        ApiRequest::CreateImage2D {
                            context: Context::from_raw(RawHandle(self.reg(*context))),
                            flags,
                            width: *width,
                            height: *height,
                            host_data,
                        },
                    )?
                    .into_mem()?;
                self.set_reg(*out, mem.raw().0);
            }
            Op::ReadImageChecksum { queue, image } => {
                let (data, ev) = api
                    .call(
                        now,
                        ApiRequest::EnqueueReadImage {
                            queue: CommandQueue::from_raw(RawHandle(self.reg(*queue))),
                            image: Mem::from_raw(RawHandle(self.reg(*image))),
                            blocking: true,
                            wait_list: vec![],
                        },
                    )?
                    .into_data_event()?;
                api.call(now, ApiRequest::ReleaseEvent { event: ev })?;
                self.checksums.push(fnv1a64(&data));
            }
        }
        Ok(())
    }

    fn set_arg(
        &self,
        api: &mut dyn ClApi,
        now: &mut SimTime,
        kernel: Reg,
        index: u32,
        value: ArgValue,
    ) -> ClResult<()> {
        api.call(
            now,
            ApiRequest::SetKernelArg {
                kernel: Kernel::from_raw(RawHandle(self.reg(kernel))),
                index,
                value,
            },
        )?
        .into_unit()
    }
}

/// Where to pause execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCondition {
    /// Run the whole script.
    Completion,
    /// Stop right after the n-th kernel launch (1-based), leaving the
    /// command in flight.
    AfterKernel(u64),
    /// Stop after `n` ops.
    AfterOps(u64),
}

/// Result of a `run_until`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Script completed.
    Done,
    /// Stop condition hit; more ops remain.
    Paused,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bufinit_deterministic() {
        let a = BufInit::RandomF32 {
            seed: 7,
            lo: 0.0,
            hi: 1.0,
        }
        .generate(64);
        let b = BufInit::RandomF32 {
            seed: 7,
            lo: 0.0,
            hi: 1.0,
        }
        .generate(64);
        assert_eq!(a, b);
        let c = BufInit::RandomF32 {
            seed: 8,
            lo: 0.0,
            hi: 1.0,
        }
        .generate(64);
        assert_ne!(a, c);
        assert_eq!(BufInit::Zero.generate(16), vec![0u8; 16]);
        let ramp = BufInit::Ramp.generate(12);
        assert_eq!(f32::from_le_bytes(ramp[4..8].try_into().unwrap()), 1.0);
    }

    #[test]
    fn script_codec_roundtrip() {
        let script = Script {
            ops: vec![
                Op::GetPlatform { out: 0 },
                Op::GetDevices {
                    platform: 0,
                    dtype: DeviceType::Gpu,
                    out: 1,
                    count: 2,
                },
                Op::CreateContext { device: 1, out: 3 },
                Op::CreateBuffer {
                    context: 3,
                    flags: MemFlags::READ_WRITE,
                    size: 1024,
                    init: Some(BufInit::Ramp),
                    out: 4,
                },
                Op::CreateProgram {
                    name: "vector_add".into(),
                    context: 3,
                    out: 5,
                },
                Op::SetArgF32 {
                    kernel: 6,
                    index: 3,
                    value: 2.5,
                },
                Op::Launch {
                    kernel: 6,
                    queue: 7,
                    global: [1024, 1, 1],
                    local: Some([256, 1, 1]),
                },
                Op::Finish { queue: 7 },
            ],
        };
        let bytes = script.to_bytes();
        assert_eq!(Script::from_bytes(&bytes).unwrap(), script);
        assert_eq!(script.kernel_launches(), 1);
    }

    #[test]
    fn app_program_codec_roundtrip_mid_run() {
        let mut app = AppProgram::new(Script {
            ops: vec![Op::GetPlatform { out: 0 }, Op::Finish { queue: 1 }],
        });
        app.pc = 1;
        app.regs[0] = 0xdead;
        app.checksums.push(42);
        app.kernels_launched = 3;
        let back = AppProgram::from_bytes(&app.to_bytes()).unwrap();
        assert_eq!(back, app);
        assert!(!back.is_done());
    }

    #[test]
    fn runs_against_a_driver() {
        let mut drv = cldriver::Driver::new(cldriver::vendor::nimbus());
        let mut now = SimTime::ZERO;
        let mut app = AppProgram::new(Script {
            ops: vec![
                Op::GetPlatform { out: 0 },
                Op::GetDevices {
                    platform: 0,
                    dtype: DeviceType::Gpu,
                    out: 1,
                    count: 1,
                },
                Op::CreateContext { device: 1, out: 2 },
                Op::CreateQueue {
                    context: 2,
                    device: 1,
                    out: 3,
                },
                Op::CreateBuffer {
                    context: 2,
                    flags: MemFlags::READ_WRITE,
                    size: 64,
                    init: Some(BufInit::Ramp),
                    out: 4,
                },
                Op::ReadBufferChecksum {
                    queue: 3,
                    buf: 4,
                    size: 64,
                },
            ],
        });
        let status = app
            .run_until(&mut drv, &mut now, StopCondition::Completion)
            .unwrap();
        assert_eq!(status, RunStatus::Done);
        assert_eq!(app.checksums.len(), 1);
        assert_eq!(app.checksums[0], fnv1a64(&BufInit::Ramp.generate(64)));
    }

    #[test]
    fn pause_after_kernel_leaves_work_in_flight() {
        let mut drv = cldriver::Driver::new(cldriver::vendor::nimbus());
        let mut now = SimTime::ZERO;
        let mut app = AppProgram::new(Script {
            ops: vec![
                Op::GetPlatform { out: 0 },
                Op::GetDevices {
                    platform: 0,
                    dtype: DeviceType::Gpu,
                    out: 1,
                    count: 1,
                },
                Op::CreateContext { device: 1, out: 2 },
                Op::CreateQueue {
                    context: 2,
                    device: 1,
                    out: 3,
                },
                Op::CreateBuffer {
                    context: 2,
                    flags: MemFlags::READ_WRITE,
                    size: 4096,
                    init: Some(BufInit::Ramp),
                    out: 4,
                },
                Op::CreateProgram {
                    name: "max_flops".into(),
                    context: 2,
                    out: 5,
                },
                Op::BuildProgram { prog: 5 },
                Op::CreateKernel {
                    prog: 5,
                    name: "max_flops".into(),
                    out: 6,
                },
                Op::SetArgMem {
                    kernel: 6,
                    index: 0,
                    buf: 4,
                },
                Op::SetArgU32 {
                    kernel: 6,
                    index: 1,
                    value: 1024,
                },
                Op::SetArgU32 {
                    kernel: 6,
                    index: 2,
                    value: 4,
                },
                Op::Launch {
                    kernel: 6,
                    queue: 3,
                    global: [1024, 1, 1],
                    local: None,
                },
                Op::Finish { queue: 3 },
            ],
        });
        let status = app
            .run_until(&mut drv, &mut now, StopCondition::AfterKernel(1))
            .unwrap();
        assert_eq!(status, RunStatus::Paused);
        assert_eq!(app.kernels_launched, 1);
        assert!(!app.is_done()); // Finish not yet executed
                                 // Resume.
        let status = app
            .run_until(&mut drv, &mut now, StopCondition::Completion)
            .unwrap();
        assert_eq!(status, RunStatus::Done);
    }
}
