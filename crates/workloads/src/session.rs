//! Sessions: a workload running in a simulated process, natively or
//! under CheCL, with checkpoint/restart/migration plumbing.
//!
//! The session owns the pieces a real OS would keep implicitly — the
//! process, the loaded `libOpenCL` implementation, and the running
//! program — and keeps the process clock in the cluster coherent with
//! the interpreter.

use crate::script::{AppProgram, RunStatus, Script, StopCondition};
use checl::cpr::{restart_checl_process, CheckpointReport, CheclCprError, RestoreTarget};
use checl::migrate::MigrationReport;
use checl::{boot_checl, checkpoint_checl, ChecLib, CheclConfig, CprPolicy, SnapshotOutcome};
use cldriver::{Driver, VendorConfig};
use clspec::api::ClApi;
use clspec::error::ClResult;
use osproc::{Cluster, NodeId, Pid};
use simcore::codec::Codec;
use simcore::{telemetry, SimDuration, SimTime};

/// Image segment holding the serialized application state (script, pc,
/// registers, checksums) — the part of "host memory" the interpreter
/// owns.
pub const APP_SEGMENT: &str = "app-state";

/// A workload linked directly against a vendor driver (no CheCL).
pub struct NativeSession {
    /// The application process.
    pub pid: Pid,
    /// The vendor driver, loaded *in the application process* — which
    /// is what makes the process uncheckpointable.
    pub driver: Driver,
    /// The running program.
    pub program: AppProgram,
}

impl NativeSession {
    /// Launch a script natively on `node`.
    pub fn launch(
        cluster: &mut Cluster,
        node: NodeId,
        vendor: VendorConfig,
        script: Script,
    ) -> NativeSession {
        let pid = cluster.spawn(node);
        let driver = checl::boot::boot_native(cluster, pid, vendor);
        NativeSession {
            pid,
            driver,
            program: AppProgram::new(script),
        }
    }

    /// Run until `stop`, keeping the cluster clock coherent.
    pub fn run(&mut self, cluster: &mut Cluster, stop: StopCondition) -> ClResult<RunStatus> {
        let _track = telemetry::track_scope(telemetry::Track::process(self.pid.0 as u64));
        let mut now = cluster.process(self.pid).clock;
        let status = self.program.run_until(&mut self.driver, &mut now, stop);
        cluster.process_mut(self.pid).clock = now;
        status
    }

    /// Virtual time elapsed since process start.
    pub fn elapsed(&self, cluster: &Cluster) -> SimDuration {
        cluster.process(self.pid).clock.since(SimTime::ZERO)
    }
}

/// A workload transparently linked against CheCL.
pub struct CheclSession {
    /// The application process.
    pub pid: Pid,
    /// The CheCL shim (proxy + object database).
    pub lib: ChecLib,
    /// The running program — identical to the native case; the program
    /// cannot tell which library it is linked against.
    pub program: AppProgram,
}

impl CheclSession {
    /// Launch a script under CheCL on `node`.
    pub fn launch(
        cluster: &mut Cluster,
        node: NodeId,
        vendor: VendorConfig,
        config: CheclConfig,
        script: Script,
    ) -> CheclSession {
        let pid = cluster.spawn(node);
        Self::attach(cluster, pid, vendor, config, script)
    }

    /// Bind a script to an *existing* process (e.g. an MPI rank).
    pub fn attach(
        cluster: &mut Cluster,
        pid: Pid,
        vendor: VendorConfig,
        config: CheclConfig,
        script: Script,
    ) -> CheclSession {
        let booted = boot_checl(cluster, pid, vendor, config);
        CheclSession {
            pid,
            lib: booted.lib,
            program: AppProgram::new(script),
        }
    }

    /// Run until `stop`, keeping the cluster clock coherent.
    pub fn run(&mut self, cluster: &mut Cluster, stop: StopCondition) -> ClResult<RunStatus> {
        let _track = telemetry::track_scope(telemetry::Track::process(self.pid.0 as u64));
        let mut now = cluster.process(self.pid).clock;
        let status = self.program.run_until(&mut self.lib, &mut now, stop);
        cluster.process_mut(self.pid).clock = now;
        status
    }

    /// Virtual time elapsed since process start.
    pub fn elapsed(&self, cluster: &Cluster) -> SimDuration {
        cluster.process(self.pid).clock.since(SimTime::ZERO)
    }

    /// Block until every command queue of this session has drained
    /// (a `clFinish` on each), advancing the process clock past the
    /// device work. Used to model checkpoints or scheduling decisions
    /// taken at a synchronization point.
    pub fn drain(&mut self, cluster: &mut Cluster) {
        let _track = telemetry::track_scope(telemetry::Track::process(self.pid.0 as u64));
        let mut now = cluster.process(self.pid).clock;
        let queues: Vec<u64> = self
            .lib
            .db
            .live_of_kind(clspec::handles::HandleKind::CommandQueue)
            .map(|e| e.checl)
            .collect();
        for q in queues {
            let _ = self.lib.call(
                &mut now,
                clspec::ApiRequest::Finish {
                    queue: clspec::CommandQueue::from_raw(clspec::RawHandle(q)),
                },
            );
        }
        cluster.process_mut(self.pid).clock = now;
    }

    /// Persist the interpreter state into the process image (it *is*
    /// host memory; a real program would not need this step because the
    /// dump captures its heap wholesale).
    pub fn persist_program(&mut self, cluster: &mut Cluster) {
        cluster
            .process_mut(self.pid)
            .image
            .put(APP_SEGMENT, self.program.to_bytes());
    }

    /// Checkpoint this application (CheCL §III-C procedure).
    pub fn checkpoint(
        &mut self,
        cluster: &mut Cluster,
        path: &str,
    ) -> Result<CheckpointReport, CheclCprError> {
        self.persist_program(cluster);
        checkpoint_checl(&mut self.lib, cluster, self.pid, path)
    }

    /// Checkpoint through the pipelined engine: D2H copies overlap the
    /// streamed chunk writes ([`checl::checkpoint_checl_pipelined`]).
    pub fn checkpoint_pipelined(
        &mut self,
        cluster: &mut Cluster,
        path: &str,
    ) -> Result<CheckpointReport, CheclCprError> {
        self.persist_program(cluster);
        checl::checkpoint_checl_pipelined(&mut self.lib, cluster, self.pid, path)
    }

    /// Pipelined + incremental checkpoint
    /// ([`checl::checkpoint_checl_pipelined_incremental`]).
    pub fn checkpoint_pipelined_incremental(
        &mut self,
        cluster: &mut Cluster,
        path: &str,
    ) -> Result<CheckpointReport, CheclCprError> {
        self.persist_program(cluster);
        checl::checkpoint_checl_pipelined_incremental(&mut self.lib, cluster, self.pid, path)
    }

    /// Checkpoint with the full recovery policy — atomic
    /// write-to-temp-then-rename, post-write verification, bounded
    /// retry and target fallback ([`checl::checkpoint_with_recovery`]).
    pub fn checkpoint_with_recovery(
        &mut self,
        cluster: &mut Cluster,
        targets: &[&str],
        policy: &blcr::RetryPolicy,
    ) -> Result<(CheckpointReport, blcr::RecoveryOutcome), CheclCprError> {
        self.persist_program(cluster);
        checl::checkpoint_with_recovery(&mut self.lib, cluster, self.pid, targets, policy)
    }

    /// Checkpoint under an arbitrary [`CprPolicy`] — the unified-engine
    /// entry point the legacy `checkpoint*` methods are shims over.
    pub fn checkpoint_with_policy(
        &mut self,
        cluster: &mut Cluster,
        path: &str,
        policy: &CprPolicy,
    ) -> Result<SnapshotOutcome, CheclCprError> {
        self.persist_program(cluster);
        checl::snapshot(&mut self.lib, cluster, self.pid, path, policy)
    }

    /// Drive a parked live-checkpoint drain to completion
    /// ([`checl::complete_live_drain`]): the background writer seals
    /// the stream and publishes the dump, and the process clock only
    /// advances if the drain outran the compute since the cut. `Ok
    /// (None)` when no live checkpoint is in flight.
    pub fn complete_live_drain(
        &mut self,
        cluster: &mut Cluster,
    ) -> Result<Option<checl::LiveDrainOutcome>, CheclCprError> {
        checl::complete_live_drain(&mut self.lib, cluster, self.pid)
    }

    /// Kill this session's processes (simulating failure or teardown).
    pub fn kill(mut self, cluster: &mut Cluster) {
        // A parked live drain dies with the process: drop its temp so
        // the previous committed generation stays the restore target.
        checl::abort_live_drain(&mut self.lib, cluster, self.pid);
        checl::boot::kill_proxy(cluster, &mut self.lib);
        cluster.kill(self.pid);
    }

    /// Restart a checkpointed session on `node` with `vendor`.
    pub fn restart(
        cluster: &mut Cluster,
        node: NodeId,
        path: &str,
        vendor: VendorConfig,
        target: RestoreTarget,
    ) -> Result<CheclSession, CheclCprError> {
        let (lib, pid, _report) = restart_checl_process(cluster, node, path, vendor, target)?;
        let bytes = cluster
            .process(pid)
            .image
            .get(APP_SEGMENT)
            .ok_or(CheclCprError::MissingState)?
            .to_vec();
        let program = AppProgram::from_bytes(&bytes).map_err(CheclCprError::BadState)?;
        Ok(CheclSession { pid, lib, program })
    }

    /// Restart through the pipelined engine
    /// ([`checl::restart_checl_pipelined`]): streamed checkpoints are
    /// read and uploaded overlapped; sequential dumps are handled
    /// identically to [`CheclSession::restart`].
    pub fn restart_pipelined(
        cluster: &mut Cluster,
        node: NodeId,
        path: &str,
        vendor: VendorConfig,
        target: RestoreTarget,
    ) -> Result<CheclSession, CheclCprError> {
        let (lib, pid, _report) =
            checl::restart_checl_pipelined(cluster, node, path, vendor, target)?;
        let bytes = cluster
            .process(pid)
            .image
            .get(APP_SEGMENT)
            .ok_or(CheclCprError::MissingState)?
            .to_vec();
        let program = AppProgram::from_bytes(&bytes).map_err(CheclCprError::BadState)?;
        Ok(CheclSession { pid, lib, program })
    }

    /// Migrate this session to another node/vendor/device and resume,
    /// using the classic sequential dump.
    pub fn migrate(
        self,
        cluster: &mut Cluster,
        dest_node: NodeId,
        dest_vendor: VendorConfig,
        path: &str,
        target: RestoreTarget,
    ) -> Result<(CheclSession, MigrationReport), CheclCprError> {
        self.migrate_with_policy(
            cluster,
            dest_node,
            dest_vendor,
            path,
            target,
            &CprPolicy::sequential(),
        )
    }

    /// Migrate under an arbitrary [`CprPolicy`]: a pipelined policy
    /// overlaps the dump's copies and writes, a recovery policy adds
    /// verify/retry/fallback to the source-side snapshot.
    pub fn migrate_with_policy(
        mut self,
        cluster: &mut Cluster,
        dest_node: NodeId,
        dest_vendor: VendorConfig,
        path: &str,
        target: RestoreTarget,
        policy: &CprPolicy,
    ) -> Result<(CheclSession, MigrationReport), CheclCprError> {
        self.persist_program(cluster);
        let mut report = checl::migrate_process(
            cluster,
            self.lib,
            self.pid,
            dest_node,
            dest_vendor,
            path,
            target,
            policy,
        )?;
        let bytes = cluster
            .process(report.new_pid)
            .image
            .get(APP_SEGMENT)
            .ok_or(CheclCprError::MissingState)?
            .to_vec();
        let program = AppProgram::from_bytes(&bytes).map_err(CheclCprError::BadState)?;
        // Take the rebuilt shim out of the report and into the session.
        let lib = std::mem::replace(&mut report.new_lib, ChecLib::new(CheclConfig::default()));
        let session = CheclSession {
            pid: report.new_pid,
            lib,
            program,
        };
        Ok((session, report))
    }
}

/// Where a step-driven run segment ([`CheclSession::run_step`])
/// yielded control back to its scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YieldPoint {
    /// The program ran to completion.
    Done,
    /// The program is parked *before* a `clFinish` — its natural
    /// synchronization boundary. Every queue will drain at this op
    /// anyway, so a checkpoint taken here pays a near-zero sync phase
    /// (the Delayed-trigger observation of §III-C, surfaced as a
    /// scheduling hook).
    Sync,
    /// The run quantum expired at an ordinary op boundary. The
    /// interpreter state is still checkpointable (pc and registers
    /// serialize at any op boundary), but a preemption here pays the
    /// full sync cost for in-flight device work.
    Quantum,
}

impl CheclSession {
    /// Run at most `quantum` of virtual time, yielding at the first
    /// sync boundary (`clFinish`) reached after making progress — the
    /// step-driven face of the session that lets a scheduler interleave
    /// many tenants on one timeline.
    ///
    /// The session always executes at least one op per call (a tenant
    /// resumed *at* a sync point must cross it, or it would yield
    /// forever), and the process clock in `cluster` stays coherent at
    /// every yield, so callers can checkpoint, migrate or kill the
    /// session at any return point. `Sync` is reported in preference to
    /// `Quantum` when both hold.
    pub fn run_step(
        &mut self,
        cluster: &mut Cluster,
        quantum: SimDuration,
    ) -> ClResult<YieldPoint> {
        use crate::script::Op;
        let start = cluster.process(self.pid).clock;
        let mut executed = false;
        loop {
            if self.program.is_done() {
                return Ok(YieldPoint::Done);
            }
            if executed {
                if matches!(
                    self.program.script.ops[self.program.pc as usize],
                    Op::Finish { .. }
                ) {
                    return Ok(YieldPoint::Sync);
                }
                if cluster.process(self.pid).clock.since(start) >= quantum {
                    return Ok(YieldPoint::Quantum);
                }
            }
            let mut now = cluster.process(self.pid).clock;
            let step = {
                let _track = telemetry::track_scope(telemetry::Track::process(self.pid.0 as u64));
                self.program.step(&mut self.lib, &mut now)
            };
            cluster.process_mut(self.pid).clock = now;
            step?;
            executed = true;
        }
    }
}

/// Outcome of a signal-aware run segment.
#[derive(Debug, PartialEq)]
pub enum CprRunOutcome {
    /// Script finished; no checkpoint was triggered.
    Done,
    /// A checkpoint was taken (triggered by SIGUSR1) and the program
    /// paused right after it; call `run_with_cpr` again to continue.
    Checkpointed(checl::CheckpointReport),
}

impl CheclSession {
    /// Run the program while honouring checkpoint signals (§III-C).
    ///
    /// When a `SIGUSR1` is pending on the application process:
    /// * **Immediate mode** checkpoints before the next op executes,
    ///   paying the synchronization wait for any in-flight commands;
    /// * **Delayed mode** postpones until the program's next `clFinish`
    ///   (its natural synchronization point), so the checkpoint's sync
    ///   phase is nearly free. If the script ends first, the checkpoint
    ///   is taken at exit (all queues drained by then).
    ///
    /// Returns after the first checkpoint so callers can decide whether
    /// to continue, migrate or kill.
    pub fn run_with_cpr(
        &mut self,
        cluster: &mut Cluster,
        mode: checl::CheckpointMode,
        path: &str,
    ) -> Result<CprRunOutcome, CheclCprError> {
        use crate::script::Op;
        let mut armed = false;
        loop {
            if self.program.is_done() {
                return if armed {
                    // Delayed past the end of the script: checkpoint at
                    // exit, queues already drained.
                    Ok(CprRunOutcome::Checkpointed(self.checkpoint(cluster, path)?))
                } else {
                    Ok(CprRunOutcome::Done)
                };
            }
            if cluster.process_mut(self.pid).poll_signal() == Some(osproc::Signal::Usr1) {
                armed = true;
            }
            if armed {
                let at_sync_point = matches!(
                    self.program.script.ops[self.program.pc as usize],
                    Op::Finish { .. }
                );
                let take_now = match mode {
                    checl::CheckpointMode::Immediate => true,
                    checl::CheckpointMode::Delayed => at_sync_point,
                };
                if take_now {
                    return Ok(CprRunOutcome::Checkpointed(self.checkpoint(cluster, path)?));
                }
            }
            let mut now = cluster.process(self.pid).clock;
            let step = {
                let _track = telemetry::track_scope(telemetry::Track::process(self.pid.0 as u64));
                self.program.step(&mut self.lib, &mut now)
            };
            cluster.process_mut(self.pid).clock = now;
            step.map_err(CheclCprError::Cl)?;
        }
    }
}

/// Outcome of a policy-driven signal-aware run segment.
#[derive(Debug)]
pub enum PolicyRunOutcome {
    /// Script finished; no checkpoint was triggered.
    Done,
    /// A checkpoint was taken (triggered by SIGUSR1) under the policy
    /// and the program paused right after it.
    Checkpointed(SnapshotOutcome),
}

impl CheclSession {
    /// Run the program while honouring checkpoint signals under an
    /// arbitrary [`CprPolicy`] — the unified-engine sibling of
    /// [`CheclSession::run_with_cpr`]. The policy's `trigger` decides
    /// Immediate vs Delayed placement, and the snapshot itself goes
    /// through [`CheclSession::checkpoint_with_policy`], so Delayed
    /// triggering composes with streaming, pipelining and commit
    /// hardening.
    pub fn run_with_cpr_policy(
        &mut self,
        cluster: &mut Cluster,
        policy: &CprPolicy,
        path: &str,
    ) -> Result<PolicyRunOutcome, CheclCprError> {
        use crate::script::Op;
        let mut armed = false;
        loop {
            if self.program.is_done() {
                return if armed {
                    let outcome = self.checkpoint_with_policy(cluster, path, policy)?;
                    Ok(PolicyRunOutcome::Checkpointed(outcome))
                } else {
                    Ok(PolicyRunOutcome::Done)
                };
            }
            if cluster.process_mut(self.pid).poll_signal() == Some(osproc::Signal::Usr1) {
                armed = true;
            }
            if armed {
                let at_sync_point = matches!(
                    self.program.script.ops[self.program.pc as usize],
                    Op::Finish { .. }
                );
                let take_now = match policy.trigger {
                    checl::CheckpointMode::Immediate => true,
                    checl::CheckpointMode::Delayed => at_sync_point,
                };
                if take_now {
                    let outcome = self.checkpoint_with_policy(cluster, path, policy)?;
                    return Ok(PolicyRunOutcome::Checkpointed(outcome));
                }
            }
            let mut now = cluster.process(self.pid).clock;
            let step = {
                let _track = telemetry::track_scope(telemetry::Track::process(self.pid.0 as u64));
                self.program.step(&mut self.lib, &mut now)
            };
            cluster.process_mut(self.pid).clock = now;
            step.map_err(CheclCprError::Cl)?;
        }
    }
}

/// What it took to run a program segment under fault injection.
#[derive(Debug, PartialEq, Eq)]
pub struct RecoveryRunReport {
    /// How the segment ended.
    pub status: RunStatus,
    /// Proxy respawn + object-graph re-creation cycles performed.
    pub respawns: u32,
}

impl CheclSession {
    /// Run until `stop` while surviving API-proxy death and app↔proxy
    /// pipe breakage.
    ///
    /// Scheduled process faults from the cluster's
    /// [`FaultPlan`](osproc::FaultPlan) are delivered before each op;
    /// when one strikes (or a step fails with `DeviceNotAvailable`),
    /// the §III-C restart procedure runs in place: fork a new proxy,
    /// re-create the object graph from `last_ckpt`, and roll the
    /// interpreter back to the checkpointed program counter — device
    /// work since the checkpoint died with the proxy, so re-executing
    /// from the checkpoint is the only consistent continuation. The
    /// final buffer contents are bit-exact with an undisturbed run.
    ///
    /// `last_ckpt` must name a checkpoint taken with
    /// [`CheclSession::checkpoint`] (so it carries the program state).
    /// At most `max_respawns` recoveries are attempted; a fault storm
    /// beyond that surfaces as `DeviceNotAvailable`.
    pub fn run_with_recovery(
        &mut self,
        cluster: &mut Cluster,
        stop: StopCondition,
        last_ckpt: &str,
        vendor: &VendorConfig,
        max_respawns: u32,
    ) -> Result<RecoveryRunReport, CheclCprError> {
        let mut respawns = 0u32;
        loop {
            if self.program.is_done() {
                return Ok(RecoveryRunReport {
                    status: RunStatus::Done,
                    respawns,
                });
            }
            // Deliver scheduled process faults that have come due.
            let now = cluster.process(self.pid).clock;
            let (proxy_dies, pipe_breaks) = match cluster.faults_mut() {
                Some(plan) => (plan.proxy_death_due(now), plan.pipe_break_due(now)),
                None => (false, false),
            };
            if proxy_dies {
                if let Some(proxy) = self.lib.proxy_pid() {
                    cluster.kill(proxy);
                }
                self.lib.break_pipe();
            }
            if pipe_breaks {
                self.lib.break_pipe();
            }
            if self.lib.pipe_broken() || !self.lib.has_proxy() {
                if respawns >= max_respawns {
                    return Err(CheclCprError::Cl(
                        clspec::error::ClError::DeviceNotAvailable,
                    ));
                }
                respawns += 1;
                self.recover(cluster, last_ckpt, vendor.clone())?;
                continue;
            }
            let mut now = cluster.process(self.pid).clock;
            let step = {
                let _track = telemetry::track_scope(telemetry::Track::process(self.pid.0 as u64));
                self.program.step(&mut self.lib, &mut now)
            };
            cluster.process_mut(self.pid).clock = now;
            match step {
                Ok(()) => {}
                Err(clspec::error::ClError::DeviceNotAvailable) => {
                    // The proxy died under the op (pc not advanced: a
                    // failed step leaves the interpreter retryable).
                    if respawns >= max_respawns {
                        return Err(CheclCprError::Cl(
                            clspec::error::ClError::DeviceNotAvailable,
                        ));
                    }
                    respawns += 1;
                    self.recover(cluster, last_ckpt, vendor.clone())?;
                    continue;
                }
                Err(e) => return Err(CheclCprError::Cl(e)),
            }
            match stop {
                StopCondition::Completion => {}
                StopCondition::AfterKernel(n) => {
                    if self.program.kernels_launched >= n {
                        return Ok(RecoveryRunReport {
                            status: RunStatus::Paused,
                            respawns,
                        });
                    }
                }
                StopCondition::AfterOps(n) => {
                    if self.program.pc >= n {
                        return Ok(RecoveryRunReport {
                            status: RunStatus::Paused,
                            respawns,
                        });
                    }
                }
            }
        }
    }

    /// In-place recovery: respawn the proxy, restore the object graph
    /// from `last_ckpt`, and roll the interpreter back to the program
    /// state dumped in the same checkpoint.
    fn recover(
        &mut self,
        cluster: &mut Cluster,
        last_ckpt: &str,
        vendor: VendorConfig,
    ) -> Result<(), CheclCprError> {
        checl::respawn_proxy_and_restore(
            cluster,
            &mut self.lib,
            self.pid,
            last_ckpt,
            vendor,
            RestoreTarget::default(),
        )?;
        let bytes = cluster
            .read_file(self.pid, last_ckpt)
            .map_err(|e| CheclCprError::Cpr(blcr::CprError::Fs(e)))?;
        let image = blcr::sniff_dump(&bytes)
            .map_err(|e| CheclCprError::Cpr(blcr::CprError::Corrupt(e)))?
            .into_image();
        let app = image.get(APP_SEGMENT).ok_or(CheclCprError::MissingState)?;
        self.program = AppProgram::from_bytes(app).map_err(CheclCprError::BadState)?;
        Ok(())
    }
}

/// Which `ClApi` implementation a generic runner should use — lets
/// tests and benches run the same workload both ways.
pub enum AnySession {
    /// Direct vendor linking.
    Native(Box<NativeSession>),
    /// CheCL interposition.
    Checl(Box<CheclSession>),
}

impl AnySession {
    /// Run until `stop`.
    pub fn run(&mut self, cluster: &mut Cluster, stop: StopCondition) -> ClResult<RunStatus> {
        match self {
            AnySession::Native(s) => s.run(cluster, stop),
            AnySession::Checl(s) => s.run(cluster, stop),
        }
    }

    /// The running program.
    pub fn program(&self) -> &AppProgram {
        match self {
            AnySession::Native(s) => &s.program,
            AnySession::Checl(s) => &s.program,
        }
    }

    /// Elapsed virtual time.
    pub fn elapsed(&self, cluster: &Cluster) -> SimDuration {
        match self {
            AnySession::Native(s) => s.elapsed(cluster),
            AnySession::Checl(s) => s.elapsed(cluster),
        }
    }

    /// The implementation name the app is (unknowingly) linked against.
    pub fn impl_name(&self) -> String {
        match self {
            AnySession::Native(s) => s.driver.impl_name(),
            AnySession::Checl(s) => s.lib.impl_name(),
        }
    }
}
