//! The supervised run: a CheCL workload driven to completion under an
//! adversarial [`FaultPlan`](osproc::FaultPlan) with no manual recovery
//! calls.
//!
//! This is the workload-side half of the self-healing supervisor; the
//! decision machinery (detector, Young/Daly interval controller, repair
//! ladder, accounting) lives in [`checl::supervisor`]. The loop here:
//!
//! 1. steps the program one op at a time, feeding heartbeats from the
//!    app node and the API proxy into the failure detector;
//! 2. checkpoints into a replicated [`DumpVault`] (local primary + NFS
//!    mirror, generation GC) whenever the controller's interval has
//!    elapsed — honouring Delayed triggers by waiting for the next
//!    sync point;
//! 3. on **proxy death** respawns the proxy and restores the object
//!    graph from the newest healthy replica (rolling the program back
//!    to the checkpointed pc);
//! 4. on **node crash** restarts the whole session from the vault on a
//!    healthy spare and re-seeds the spare's local replicas by
//!    scrubbing;
//! 5. escalates with a typed [`SupervisorError::Escalated`] when the
//!    per-incident repair ladder or the global failure-storm backstop
//!    is exhausted — never a panic, never silent corruption.

use crate::script::AppProgram;
use crate::session::{CheclSession, APP_SEGMENT};
use blcr::DumpVault;
use checl::cpr::{CheclCprError, RestoreTarget};
use checl::supervisor::{Supervisor, SupervisorConfig, SupervisorError, SupervisorReport};
use checl::CprPolicy;
use cldriver::VendorConfig;
use osproc::{BeatSource, Cluster, NodeId};
use simcore::codec::Codec;
use simcore::{telemetry, SimDuration, SimTime};

/// Everything a supervised run needs beyond the session itself.
#[derive(Clone, Debug)]
pub struct SuperviseSetup {
    /// Detector, repair ladder and retention knobs.
    pub config: SupervisorConfig,
    /// Snapshot policy — format, pipelining, commit hardening, trigger
    /// placement and the checkpoint [`IntervalPolicy`]
    /// (`policy.interval`).
    ///
    /// [`IntervalPolicy`]: checl::IntervalPolicy
    pub policy: CprPolicy,
    /// Vendor used for proxy respawns and spare-node restarts.
    pub vendor: VendorConfig,
    /// Device selection on restore.
    pub restore: RestoreTarget,
    /// Primary replica base (node-local fast storage), e.g.
    /// `/local/app`.
    pub primary_base: String,
    /// Mirror replica base on a crash-surviving mount, e.g. `/nfs/app`.
    pub mirror_base: String,
    /// Healthy nodes a node-crash failover may restart onto. When the
    /// FaultPlan names failure domains, a failover prefers a spare
    /// *outside* the failed node's domain — a rack-correlated outage
    /// must not land the replacement in the same blast radius.
    pub spares: Vec<NodeId>,
    /// Restore through [`DumpVault::verified_chain`] (each replica
    /// read back and hash-checked, corrupt ones skipped) instead of the
    /// free [`DumpVault::restore_chain`]. Costs one read per replica,
    /// so it is off by default; turn it on under brownout FaultPlans
    /// where silent replica corruption is live.
    pub quorum_restore: bool,
    /// Cap the post-failover re-seeding scrub at this many generations
    /// (newest first). `None` scrubs the whole vault. Under a degraded
    /// channel every scrub read pays the brownout tax, so capping keeps
    /// repair downtime bounded.
    pub scrub_budget: Option<usize>,
}

impl SuperviseSetup {
    /// A setup with the default supervisor knobs and sequential
    /// snapshots.
    pub fn new(vendor: VendorConfig, primary_base: &str, mirror_base: &str) -> SuperviseSetup {
        SuperviseSetup {
            config: SupervisorConfig::default(),
            policy: CprPolicy::sequential(),
            vendor,
            restore: RestoreTarget::default(),
            primary_base: primary_base.to_string(),
            mirror_base: mirror_base.to_string(),
            spares: Vec::new(),
            quorum_restore: false,
            scrub_budget: None,
        }
    }
}

fn escalate(repairs: u32, detail: impl Into<String>) -> SupervisorError {
    SupervisorError::Escalated {
        repairs,
        detail: detail.into(),
    }
}

/// Commit `path` into the vault under the writer's fencing epoch. A
/// fence (the epoch moved — a failover happened while this writer was
/// staging) surfaces as an ordinary commit failure: the staged file is
/// already gone, and the loop's incident path rolls the session back
/// to the generation the *current* writer committed.
fn vault_commit(
    vault: &mut DumpVault,
    cluster: &mut Cluster,
    session: &CheclSession,
    path: &str,
    epoch: u64,
) -> Result<(), CheclCprError> {
    match vault.commit_fenced(cluster, session.pid, path, epoch) {
        Ok(_) => Ok(()),
        Err(blcr::CommitError::Fs(e)) => Err(CheclCprError::Cpr(blcr::CprError::Fs(e))),
        Err(blcr::CommitError::Fenced { .. }) => Err(CheclCprError::Cpr(blcr::CprError::Fs(
            osproc::FsError::WriteFailed(path.to_string()),
        ))),
    }
}

/// Seal a parked live drain: drive the background writer to
/// completion, hand the sealed file to the vault, and charge the
/// supervisor for the *stall* window only. The drain time the
/// application outran is not an interruption — counting it would make
/// the Young/Daly controller adapt τ to a cost the app never paid.
fn seal_live(
    cluster: &mut Cluster,
    session: &mut CheclSession,
    vault: &mut DumpVault,
    sup: &mut Supervisor,
    pending: &mut Option<String>,
    epoch: u64,
) -> Result<(), CheclCprError> {
    let Some(path) = pending.take() else {
        return Ok(());
    };
    let drained = session.complete_live_drain(cluster)?;
    vault_commit(vault, cluster, session, &path, epoch)?;
    for retired in vault.take_retired_paths() {
        checl::invalidate_saves(&mut session.lib, &retired);
    }
    sup.advance(cluster.process(session.pid).clock);
    let stall = drained
        .map(|d| d.stall.total() + d.fork_stall)
        .unwrap_or(SimDuration::ZERO);
    sup.checkpoint_committed(stall, SimDuration::ZERO);
    Ok(())
}

/// Checkpoint the session into the vault's next generation and account
/// it with the supervisor. Progress is reported in the "since last
/// commit" frame the loop uses throughout.
///
/// Under a live policy the snapshot returns at the cut with the
/// payload still draining; the vault commit (which needs the sealed
/// file) and the supervisor's overhead charge are deferred to
/// [`seal_live`], which runs before the next checkpoint, at program
/// completion, or not at all if an incident rolls the session back
/// first.
fn commit_checkpoint(
    cluster: &mut Cluster,
    session: &mut CheclSession,
    vault: &mut DumpVault,
    sup: &mut Supervisor,
    policy: &CprPolicy,
    pending: &mut Option<String>,
    epoch: u64,
) -> Result<SimTime, CheclCprError> {
    // Seal the previous generation first: the engine would otherwise
    // force-complete the drain inside `snapshot` and the vault would
    // never learn about the sealed file.
    seal_live(cluster, session, vault, sup, pending, epoch)?;
    let before = cluster.process(session.pid).clock;
    let stage = vault.stage_path();
    let outcome = session.checkpoint_with_policy(cluster, &stage, policy)?;
    if policy.live {
        pending.replace(outcome.path);
        let after = cluster.process(session.pid).clock;
        sup.advance(after);
        return Ok(after);
    }
    vault_commit(vault, cluster, session, &outcome.path, epoch)?;
    // Committing may have GC'd older generations that incremental
    // buffer records still reference; re-dirty them so no later restore
    // chases a pruned base.
    for retired in vault.take_retired_paths() {
        checl::invalidate_saves(&mut session.lib, &retired);
    }
    let after = cluster.process(session.pid).clock;
    sup.advance(after);
    sup.checkpoint_committed(after.since(before), SimDuration::ZERO);
    Ok(after)
}

/// Reload the interpreter from the dump at `path` (the rollback half of
/// a proxy respawn — device state came back via the object graph, host
/// state must come from the same generation).
fn reload_program(
    cluster: &mut Cluster,
    session: &mut CheclSession,
    path: &str,
) -> Result<(), CheclCprError> {
    let bytes = cluster
        .read_file(session.pid, path)
        .map_err(|e| CheclCprError::Cpr(blcr::CprError::Fs(e)))?;
    let image = blcr::sniff_dump(&bytes)
        .map_err(|e| CheclCprError::Cpr(blcr::CprError::Corrupt(e)))?
        .into_image();
    let app = image.get(APP_SEGMENT).ok_or(CheclCprError::MissingState)?;
    session.program = AppProgram::from_bytes(app).map_err(CheclCprError::BadState)?;
    Ok(())
}

/// Run `session` to completion under supervision. Returns the finished
/// session and the supervisor's accounting, or a typed
/// [`SupervisorError::Escalated`] when repair is exhausted.
pub fn run_supervised(
    cluster: &mut Cluster,
    mut session: CheclSession,
    setup: &SuperviseSetup,
) -> Result<(CheclSession, SupervisorReport), SupervisorError> {
    let start = cluster.process(session.pid).clock;
    let mut sup = Supervisor::new(setup.config.clone(), setup.policy.interval, start);
    let mut vault = DumpVault::new(
        &setup.primary_base,
        &setup.mirror_base,
        setup.config.keep_generations,
    );
    let mut spares = setup.spares.clone();
    let mut node = cluster.process(session.pid).node;
    sup.monitor_mut().watch(BeatSource::Node(node), start);
    if let Some(proxy) = session.lib.proxy_pid() {
        sup.monitor_mut().watch(BeatSource::Proxy(proxy), start);
    }

    // Live-policy generation whose cut is taken but whose background
    // drain has not yet sealed into the vault.
    let mut pending_live: Option<String> = None;

    // Fencing epoch this writer holds; every failover advances the
    // vault's epoch so a commit staged before the failover (a healed
    // partition's stale supervisor) is refused.
    let mut epoch = vault.epoch();

    // `true` when the detector gave up on a partitioned node: the
    // process may well be alive on the far side, but the supervisor
    // cannot tell — it fences the old writer and fails over.
    let mut partition_fenced = false;

    // Generation 0: a supervised run must always have a restore point,
    // or the first failure is unrecoverable by construction.
    let mut commit_clock = commit_checkpoint(
        cluster,
        &mut session,
        &mut vault,
        &mut sup,
        &setup.policy,
        &mut pending_live,
        epoch,
    )
    .map_err(|e| escalate(0, format!("initial checkpoint: {e}")))?;

    loop {
        if session.program.is_done() {
            // Don't exit with a drain in flight: the last generation
            // must land in the vault before the report freezes.
            seal_live(
                cluster,
                &mut session,
                &mut vault,
                &mut sup,
                &mut pending_live,
                epoch,
            )
            .map_err(|e| escalate(sup.failures(), format!("final drain: {e}")))?;
            sup.advance(cluster.process(session.pid).clock);
            return Ok((session, sup.finish(true)));
        }

        // Deliver cluster faults that have come due at the app's clock.
        let now = cluster.process(session.pid).clock;
        let crashed = cluster.poll_faults(now);
        spares.retain(|s| !crashed.contains(s));
        let node_dead = crashed.contains(&node) || !cluster.process(session.pid).is_alive();
        if !node_dead {
            let (proxy_dies, pipe_breaks) = match cluster.faults_mut() {
                Some(plan) => (plan.proxy_death_due(now), plan.pipe_break_due(now)),
                None => (false, false),
            };
            if proxy_dies {
                if let Some(proxy) = session.lib.proxy_pid() {
                    cluster.kill(proxy);
                }
                session.lib.break_pipe();
            }
            if pipe_breaks {
                session.lib.break_pipe();
            }
        }

        if node_dead || partition_fenced {
            // ---- node-crash (or fenced-partition) incident: failover
            // to a spare ----
            let fenced = std::mem::take(&mut partition_fenced);
            sup.advance(now);
            if sup.storming() {
                return Err(escalate(sup.failures(), "failure storm: too many failures"));
            }
            // An in-flight drain dies with the node: its generation
            // never reached the vault, so the chain rolls back one
            // further. The stage temp on the dead node is unreachable
            // and stays orphaned.
            pending_live = None;
            let old_proxy = session.lib.proxy_pid();
            sup.failure_detected(BeatSource::Node(node), now.since(commit_clock));
            // Fence the old writer *before* the replacement starts: if
            // the node was partitioned rather than dead, its process is
            // still running over there and may try to commit the dump
            // it was staging once the partition heals. The epoch bump
            // turns that into a refused, deleted commit instead of a
            // split-brain double-commit.
            epoch = vault.advance_epoch();
            // A rack-correlated outage must not land the replacement in
            // the same blast radius: prefer a spare outside the failed
            // node's failure domain when the FaultPlan names one.
            let failed_domain = cluster
                .faults()
                .and_then(|p| p.domain_of(node))
                .map(str::to_string);
            let mut last_err = if fenced {
                format!("node {} partitioned from supervisor", node.0)
            } else {
                format!("node {} crashed", node.0)
            };
            session = loop {
                sup.sanction_repair(&last_err)?;
                let candidates: Vec<NodeId> =
                    spares.iter().copied().filter(|s| *s != node).collect();
                let pick = match &failed_domain {
                    Some(fd) => candidates
                        .iter()
                        .copied()
                        .find(|s| {
                            cluster.faults().and_then(|p| p.domain_of(*s)) != Some(fd.as_str())
                        })
                        .or_else(|| candidates.first().copied()),
                    None => candidates.first().copied(),
                };
                let Some(spare) = pick else {
                    return Err(escalate(sup.failures(), "no healthy spare node left"));
                };
                let chain = if setup.quorum_restore {
                    // Quorum read from the spare's vantage point: a
                    // short-lived probe process pays the verify reads.
                    let probe = cluster.spawn(spare);
                    let chain = vault.verified_chain(cluster, probe);
                    sup.advance(cluster.process(probe).clock);
                    cluster.kill(probe);
                    chain
                } else {
                    vault.restore_chain()
                };
                let mut restored: Option<CheclSession> = None;
                for path in &chain {
                    match CheclSession::restart(
                        cluster,
                        spare,
                        path,
                        setup.vendor.clone(),
                        setup.restore,
                    ) {
                        Ok(s) => {
                            restored = Some(s);
                            break;
                        }
                        Err(e) => last_err = format!("restart from {path}: {e}"),
                    }
                }
                match restored {
                    Some(s) => {
                        // Re-seed the spare's local replicas from the
                        // surviving mirrors; the scrub I/O is part of the
                        // repair and lands in downtime. Under a brownout
                        // the caller may cap how many generations the
                        // re-seed verifies (newest first) so repair
                        // downtime stays bounded.
                        let mut s = s;
                        match setup.scrub_budget {
                            Some(b) => {
                                vault.scrub_budgeted(cluster, s.pid, b);
                            }
                            None => {
                                vault.scrub(cluster, s.pid);
                            }
                        }
                        // A scrub can lose replicas for good (source
                        // unreadable): drop any buffer references into
                        // them before the session resumes.
                        for retired in vault.take_retired_paths() {
                            checl::invalidate_saves(&mut s.lib, &retired);
                        }
                        let took = cluster.process(s.pid).clock.since(SimTime::ZERO);
                        sup.repair_succeeded(took);
                        // The replacement cannot live in the cluster's
                        // past: push its clock up to the supervision
                        // cursor (restore + scrub costs included).
                        let p = cluster.process_mut(s.pid);
                        p.clock = p.clock.max(sup.now());
                        sup.monitor_mut().unwatch(BeatSource::Node(node));
                        if let Some(p) = old_proxy {
                            sup.monitor_mut().unwatch(BeatSource::Proxy(p));
                        }
                        node = spare;
                        let at = sup.now();
                        sup.monitor_mut().watch(BeatSource::Node(node), at);
                        if let Some(p) = s.lib.proxy_pid() {
                            sup.monitor_mut().watch(BeatSource::Proxy(p), at);
                        }
                        commit_clock = cluster.process(s.pid).clock;
                        break s;
                    }
                    None => sup.repair_failed(SimDuration::from_millis(1)),
                }
            };
            continue;
        }

        if session.lib.pipe_broken() || !session.lib.has_proxy() {
            // ---- proxy-death incident: respawn + rollback ----
            sup.advance(now);
            if sup.storming() {
                return Err(escalate(sup.failures(), "failure storm: too many failures"));
            }
            // The parked drain's cut refers to vendor handles of the
            // dead proxy: abort it (deleting the temp) before the
            // rollback rebuilds the object graph. The previous vault
            // generation is the restore target either way.
            if pending_live.take().is_some() {
                checl::abort_live_drain(&mut session.lib, cluster, session.pid);
            }
            let proxy_src = session.lib.proxy_pid().map(BeatSource::Proxy);
            if let Some(src) = proxy_src {
                sup.failure_detected(src, now.since(commit_clock));
            } else {
                sup.failure_detected(BeatSource::Node(node), now.since(commit_clock));
            }
            let mut last_err = String::from("api proxy died");
            loop {
                sup.sanction_repair(&last_err)?;
                let chain = if setup.quorum_restore {
                    vault.verified_chain(cluster, session.pid)
                } else {
                    vault.restore_chain()
                };
                let before = cluster.process(session.pid).clock;
                let mut ok = false;
                for path in &chain {
                    let respawned = checl::respawn_proxy_and_restore(
                        cluster,
                        &mut session.lib,
                        session.pid,
                        path,
                        setup.vendor.clone(),
                        setup.restore,
                    )
                    .and_then(|_| reload_program(cluster, &mut session, path));
                    match respawned {
                        Ok(()) => {
                            ok = true;
                            break;
                        }
                        Err(e) => last_err = format!("respawn from {path}: {e}"),
                    }
                }
                let after = cluster.process(session.pid).clock;
                if ok {
                    if let Some(src) = proxy_src {
                        sup.monitor_mut().unwatch(src);
                    }
                    sup.repair_succeeded(after.since(before));
                    let at = sup.now();
                    if let Some(p) = session.lib.proxy_pid() {
                        sup.monitor_mut().watch(BeatSource::Proxy(p), at);
                    }
                    commit_clock = after;
                    break;
                }
                sup.repair_failed(after.since(before).max(SimDuration::from_millis(1)));
            }
            continue;
        }

        // ---- healthy: beats, cadence, one op ----
        sup.advance(now);
        let (beats_lost, node_partitioned) = match cluster.faults_mut() {
            Some(plan) => (plan.heartbeats_lost(now), plan.partitioned(node, now)),
            None => (false, false),
        };
        if !beats_lost && !node_partitioned {
            sup.beat(BeatSource::Node(node));
            if let Some(p) = session.lib.proxy_pid() {
                sup.beat(BeatSource::Proxy(p));
            }
        } else {
            // Gray territory: the components are alive but their beats
            // are not arriving. Once the detector turns suspicious the
            // supervisor must distinguish slow-from-dead instead of
            // burning a restore on a live process.
            let sup_now = sup.now();
            let suspects = sup.monitor_mut().suspects(sup_now);
            if !suspects.is_empty() {
                if node_partitioned {
                    // Can't probe across a partition. Give the detector
                    // its verdict: fence the (possibly alive) writer and
                    // fail over outside the partition.
                    partition_fenced = true;
                    continue;
                }
                // Beats lost but the path to the node is up: a probe
                // (one heartbeat round-trip) proves the component
                // alive. Booked as supervisor-induced overhead, never
                // as an app failure — τ must not stretch over this.
                for src in suspects {
                    sup.false_positive(src, setup.config.heartbeat_every);
                }
            }
        }
        if sup.checkpoint_due(now.since(commit_clock)) {
            let at_sync_point = matches!(
                session.program.script.ops[session.program.pc as usize],
                crate::script::Op::Finish { .. }
            );
            let take_now = match setup.policy.trigger {
                checl::CheckpointMode::Immediate => true,
                checl::CheckpointMode::Delayed => at_sync_point,
            };
            if take_now {
                match commit_checkpoint(
                    cluster,
                    &mut session,
                    &mut vault,
                    &mut sup,
                    &setup.policy,
                    &mut pending_live,
                    epoch,
                ) {
                    Ok(t) => {
                        commit_clock = t;
                        continue;
                    }
                    Err(_) => {
                        // A checkpoint that cannot commit is an incident
                        // like any other: mark the proxy path broken and
                        // let the repair ladder roll the session back.
                        session.lib.break_pipe();
                        sup.advance(cluster.process(session.pid).clock);
                        continue;
                    }
                }
            }
        }

        let mut op_clock = cluster.process(session.pid).clock;
        let step = {
            let _track = telemetry::track_scope(telemetry::Track::process(session.pid.0 as u64));
            session.program.step(&mut session.lib, &mut op_clock)
        };
        cluster.process_mut(session.pid).clock = op_clock;
        match step {
            Ok(()) => {}
            Err(clspec::error::ClError::DeviceNotAvailable) => {
                // The proxy died under the op; the pc did not advance.
                session.lib.break_pipe();
            }
            Err(e) => return Err(escalate(sup.failures(), format!("unrecoverable: {e}"))),
        }
    }
}
