//! Signal-driven checkpointing (§III-C): SIGUSR1 triggers a checkpoint
//! either immediately or at the program's next synchronization point.

use checl::{CheckpointMode, CheclConfig, RestoreTarget};
use osproc::{Cluster, Signal};
use workloads::session::CprRunOutcome;
use workloads::{workload_by_name, CheclSession, NativeSession, StopCondition, WorkloadCfg};

fn quick() -> WorkloadCfg {
    WorkloadCfg {
        scale: 1.0 / 64.0,
        ..WorkloadCfg::default()
    }
}

fn launch(cluster: &mut Cluster, name: &str) -> CheclSession {
    let node = cluster.node_ids()[0];
    let w = workload_by_name(name).unwrap();
    CheclSession::launch(
        cluster,
        node,
        cldriver::vendor::nimbus(),
        CheclConfig::default(),
        w.script(&quick()),
    )
}

#[test]
fn immediate_mode_checkpoints_on_signal() {
    let mut cluster = Cluster::with_standard_nodes(1);
    let mut s = launch(&mut cluster, "MaxFlops");
    // Signal delivered before any op runs: checkpoint happens at once.
    cluster.signal(s.pid, Signal::Usr1);
    let outcome = s
        .run_with_cpr(&mut cluster, CheckpointMode::Immediate, "/ram/sig.ckpt")
        .unwrap();
    assert!(matches!(outcome, CprRunOutcome::Checkpointed(_)));
    // Nothing has executed yet.
    assert_eq!(s.program.pc, 0);
    // Continuing (no further signal) runs to completion.
    let outcome = s
        .run_with_cpr(&mut cluster, CheckpointMode::Immediate, "/ram/sig.ckpt")
        .unwrap();
    assert_eq!(outcome, CprRunOutcome::Done);
    assert!(s.program.is_done());
}

#[test]
fn delayed_mode_waits_for_finish_op() {
    let mut cluster = Cluster::with_standard_nodes(1);
    let mut s = launch(&mut cluster, "MaxFlops");
    cluster.signal(s.pid, Signal::Usr1);
    let outcome = s
        .run_with_cpr(&mut cluster, CheckpointMode::Delayed, "/ram/dly.ckpt")
        .unwrap();
    let report = match outcome {
        CprRunOutcome::Checkpointed(r) => r,
        other => panic!("expected checkpoint, got {other:?}"),
    };
    // The program ran all the way to its Finish op: every kernel was
    // launched first.
    let launches = s.program.script.kernel_launches() as u64;
    assert_eq!(s.program.kernels_launched, launches);
    assert!(!s.program.is_done());
    // The checkpoint was taken *at* the sync point, but the commands
    // in flight still have to drain — that wait is the sync phase and
    // it belongs to the application either way. The distinguishing
    // feature of delayed mode is placement, which we verify via pc.
    let _ = report;
}

#[test]
fn no_signal_means_no_checkpoint() {
    let mut cluster = Cluster::with_standard_nodes(1);
    let mut s = launch(&mut cluster, "oclHistogram");
    let outcome = s
        .run_with_cpr(&mut cluster, CheckpointMode::Immediate, "/ram/none.ckpt")
        .unwrap();
    assert_eq!(outcome, CprRunOutcome::Done);
    // No file was written.
    let node = cluster.node_ids()[0];
    assert!(cluster.file_size_on(node, "/ram/none.ckpt").is_none());
}

#[test]
fn signal_checkpoint_restart_preserves_results() {
    let golden = {
        let mut cluster = Cluster::with_standard_nodes(1);
        let node = cluster.node_ids()[0];
        let w = workload_by_name("Stencil2D").unwrap();
        let mut s = NativeSession::launch(
            &mut cluster,
            node,
            cldriver::vendor::nimbus(),
            w.script(&quick()),
        );
        s.run(&mut cluster, StopCondition::Completion).unwrap();
        s.program.checksums
    };

    let mut cluster = Cluster::with_standard_nodes(2);
    let nodes = cluster.node_ids();
    let mut s = launch(&mut cluster, "Stencil2D");
    // Let it get going, then deliver the signal mid-run.
    s.run(&mut cluster, StopCondition::AfterKernel(3)).unwrap();
    cluster.signal(s.pid, Signal::Usr1);
    let outcome = s
        .run_with_cpr(&mut cluster, CheckpointMode::Immediate, "/nfs/sig.ckpt")
        .unwrap();
    assert!(matches!(outcome, CprRunOutcome::Checkpointed(_)));
    s.kill(&mut cluster);

    let mut resumed = CheclSession::restart(
        &mut cluster,
        nodes[1],
        "/nfs/sig.ckpt",
        cldriver::vendor::nimbus(),
        RestoreTarget::default(),
    )
    .unwrap();
    resumed
        .run(&mut cluster, StopCondition::Completion)
        .unwrap();
    assert_eq!(resumed.program.checksums, golden);
}

#[test]
fn delayed_signal_after_last_finish_checkpoints_at_exit() {
    let mut cluster = Cluster::with_standard_nodes(1);
    let mut s = launch(&mut cluster, "oclVectorAdd");
    // Run past the last Finish, then signal: delayed mode has no sync
    // point left, so the checkpoint lands at program exit.
    let total = s.program.script.ops.len() as u64;
    s.run(&mut cluster, StopCondition::AfterOps(total - 1))
        .unwrap();
    cluster.signal(s.pid, Signal::Usr1);
    let outcome = s
        .run_with_cpr(&mut cluster, CheckpointMode::Delayed, "/ram/exit.ckpt")
        .unwrap();
    assert!(matches!(outcome, CprRunOutcome::Checkpointed(_)));
    // The checkpoint landed at the script's trailing Finish (its last
    // sync point) or at exit; either way the program can run out.
    let outcome = s
        .run_with_cpr(&mut cluster, CheckpointMode::Delayed, "/ram/exit2.ckpt")
        .unwrap();
    assert_eq!(outcome, CprRunOutcome::Done);
    assert!(s.program.is_done());
}
