//! Suite-wide transparency and CPR correctness tests.
//!
//! The paper's headline demonstration: "CheCL can properly execute all
//! the benchmark programs … without any modification and
//! recompilation" (§IV-A), and checkpointed programs resume with
//! correct results. We verify with per-buffer checksums on real data.

use checl::cpr::RestoreTarget;
use checl::CheclConfig;
use cldriver::vendor::{crimson, nimbus};
use clspec::error::ClError;
use clspec::types::DeviceType;
use osproc::Cluster;
use workloads::{
    all_workloads, workload_by_name, CheclSession, NativeSession, RunStatus, StopCondition,
    Workload, WorkloadCfg,
};

/// Small problem sizes keep the full-suite tests quick; shapes are
/// unaffected because the same scripts are generated for both runs.
fn quick_cfg() -> WorkloadCfg {
    WorkloadCfg {
        scale: 1.0 / 64.0,
        ..WorkloadCfg::default()
    }
}

fn native_checksums(w: &Workload, cfg: &WorkloadCfg) -> Vec<u64> {
    let mut cluster = Cluster::with_standard_nodes(1);
    let node = cluster.node_ids()[0];
    let mut s = NativeSession::launch(&mut cluster, node, nimbus(), w.script(cfg));
    let status = s.run(&mut cluster, StopCondition::Completion).unwrap();
    assert_eq!(status, RunStatus::Done);
    s.program.checksums
}

#[test]
fn all_workloads_run_natively() {
    let cfg = quick_cfg();
    for w in all_workloads() {
        let sums = native_checksums(&w, &cfg);
        // Every workload that reads back data produced checksums.
        if w.name != "KernelCompile" && w.name != "QueueDelay" && w.name != "BusSpeedDownload" {
            assert!(!sums.is_empty(), "{} produced no checksums", w.name);
        }
    }
}

#[test]
fn checl_is_transparent_for_every_workload() {
    // Identical checksums under CheCL — the application cannot tell.
    let cfg = quick_cfg();
    for w in all_workloads() {
        let golden = native_checksums(&w, &cfg);
        let mut cluster = Cluster::with_standard_nodes(1);
        let node = cluster.node_ids()[0];
        let mut s = CheclSession::launch(
            &mut cluster,
            node,
            nimbus(),
            CheclConfig::default(),
            w.script(&cfg),
        );
        let status = s.run(&mut cluster, StopCondition::Completion).unwrap();
        assert_eq!(status, RunStatus::Done, "{}", w.name);
        assert_eq!(
            s.program.checksums, golden,
            "{} diverged under CheCL",
            w.name
        );
    }
}

#[test]
fn checl_adds_overhead_but_not_too_much() {
    // Fig. 4's aggregate claim: CheCL costs some runtime (IPC + extra
    // copies) but stays within a small factor for compute-heavy
    // programs.
    let cfg = quick_cfg();
    let w = workload_by_name("oclMatrixMul").unwrap();
    let mut cn = Cluster::with_standard_nodes(1);
    let node = cn.node_ids()[0];
    let mut native = NativeSession::launch(&mut cn, node, nimbus(), w.script(&cfg));
    native.run(&mut cn, StopCondition::Completion).unwrap();
    let t_native = native.elapsed(&cn);

    let mut cc = Cluster::with_standard_nodes(1);
    let node = cc.node_ids()[0];
    let mut checl_run = CheclSession::launch(
        &mut cc,
        node,
        nimbus(),
        CheclConfig::default(),
        w.script(&cfg),
    );
    checl_run.run(&mut cc, StopCondition::Completion).unwrap();
    let t_checl = checl_run.elapsed(&cc);

    assert!(t_checl > t_native, "CheCL must cost something");
    assert!(
        t_checl.as_secs_f64() < t_native.as_secs_f64() * 3.0,
        "overhead out of range: native {t_native}, checl {t_checl}"
    );
}

#[test]
fn every_kernel_workload_survives_midrun_checkpoint() {
    // Checkpoint right after the first kernel launch (command in
    // flight, per the Fig. 5 protocol), kill everything, restart,
    // finish, and compare checksums with an uninterrupted run.
    let cfg = quick_cfg();
    for w in all_workloads() {
        let script = w.script(&cfg);
        if script.kernel_launches() == 0 {
            continue; // same exclusion as the paper's Fig. 5
        }
        let golden = native_checksums(&w, &cfg);

        let mut cluster = Cluster::with_standard_nodes(2);
        let nodes = cluster.node_ids();
        let mut s = CheclSession::launch(
            &mut cluster,
            nodes[0],
            nimbus(),
            CheclConfig::default(),
            script,
        );
        let status = s.run(&mut cluster, StopCondition::AfterKernel(1)).unwrap();
        assert_eq!(status, RunStatus::Paused, "{}", w.name);
        s.checkpoint(&mut cluster, "/nfs/suite.ckpt")
            .unwrap_or_else(|e| panic!("{}: checkpoint failed: {e}", w.name));
        s.kill(&mut cluster);

        let mut resumed = CheclSession::restart(
            &mut cluster,
            nodes[1],
            "/nfs/suite.ckpt",
            nimbus(),
            RestoreTarget::default(),
        )
        .unwrap_or_else(|e| panic!("{}: restart failed: {e}", w.name));
        let status = resumed
            .run(&mut cluster, StopCondition::Completion)
            .unwrap_or_else(|e| panic!("{}: resume failed: {e}", w.name));
        assert_eq!(status, RunStatus::Done, "{}", w.name);
        assert_eq!(
            resumed.program.checksums, golden,
            "{} diverged after checkpoint/restart",
            w.name
        );
    }
}

#[test]
fn cross_vendor_suite_spotcheck() {
    // A representative subset migrates Nimbus → Crimson mid-run and
    // still matches the native checksums (kernels are deterministic
    // and device-independent).
    let cfg = quick_cfg();
    for name in ["oclVectorAdd", "S3D", "MD", "oclScan", "mri-q_small"] {
        let w = workload_by_name(name).unwrap();
        let golden = native_checksums(&w, &cfg);
        let mut cluster = Cluster::with_standard_nodes(2);
        let nodes = cluster.node_ids();
        let mut s = CheclSession::launch(
            &mut cluster,
            nodes[0],
            nimbus(),
            CheclConfig::default(),
            w.script(&cfg),
        );
        s.run(&mut cluster, StopCondition::AfterKernel(1)).unwrap();
        let (mut resumed, report) = s
            .migrate(
                &mut cluster,
                nodes[1],
                crimson(),
                "/nfs/xv.ckpt",
                RestoreTarget::default(),
            )
            .unwrap();
        assert!(report.actual.as_secs_f64() > 0.0);
        resumed
            .run(&mut cluster, StopCondition::Completion)
            .unwrap();
        assert_eq!(resumed.program.checksums, golden, "{name} diverged");
    }
}

#[test]
fn sorting_networks_portability_failure_reproduced() {
    // §IV-A: oclSortingNetworks "can run on the CPU but not on the AMD
    // GPU" because of the 256 work-item group limit.
    let cfg = WorkloadCfg {
        scale: 1.0 / 8.0,
        ..WorkloadCfg::default()
    };
    let w = workload_by_name("oclSortingNetworks").unwrap();

    // AMD GPU: fails with CL_INVALID_WORK_GROUP_SIZE even natively.
    let mut cluster = Cluster::with_standard_nodes(1);
    let node = cluster.node_ids()[0];
    let mut s = NativeSession::launch(&mut cluster, node, crimson(), w.script(&cfg));
    let err = s.run(&mut cluster, StopCondition::Completion).unwrap_err();
    assert_eq!(err, ClError::InvalidWorkGroupSize);

    // AMD CPU device: runs fine.
    let cpu_cfg = WorkloadCfg {
        device_type: DeviceType::Cpu,
        ..cfg
    };
    let mut cluster = Cluster::with_standard_nodes(1);
    let node = cluster.node_ids()[0];
    let mut s = NativeSession::launch(&mut cluster, node, crimson(), w.script(&cpu_cfg));
    assert_eq!(
        s.run(&mut cluster, StopCondition::Completion).unwrap(),
        RunStatus::Done
    );
}

#[test]
fn amd_cpu_runs_suite_subset() {
    // "each program is executed on the CPU and the AMD GPU" (§IV-A).
    let cfg = WorkloadCfg {
        scale: 1.0 / 64.0,
        device_type: DeviceType::Cpu,
        ..WorkloadCfg::default()
    };
    for name in ["oclVectorAdd", "Triad", "Stencil2D", "oclReduction"] {
        let w = workload_by_name(name).unwrap();
        let mut cluster = Cluster::with_standard_nodes(1);
        let node = cluster.node_ids()[0];
        let mut s = CheclSession::launch(
            &mut cluster,
            node,
            crimson(),
            CheclConfig::default(),
            w.script(&cfg),
        );
        assert_eq!(
            s.run(&mut cluster, StopCondition::Completion).unwrap(),
            RunStatus::Done,
            "{name} failed on the CPU device"
        );
    }
}

#[test]
fn image_workload_survives_midrun_checkpoint() {
    // A hand-built application using images + samplers: the full
    // Fig. 2 object population (platform, device, context, queue, mem,
    // sampler, program, kernel, event) survives CPR.
    use workloads::{BufInit, Op, Script};
    let script = Script {
        ops: vec![
            Op::GetPlatform { out: 0 },
            Op::GetDevices {
                platform: 0,
                dtype: DeviceType::Gpu,
                out: 1,
                count: 1,
            },
            Op::CreateContext { device: 1, out: 2 },
            Op::CreateQueue {
                context: 2,
                device: 1,
                out: 3,
            },
            Op::CreateImage {
                context: 2,
                width: 32,
                height: 16,
                init: Some(BufInit::RandomF32 {
                    seed: 77,
                    lo: 0.0,
                    hi: 1.0,
                }),
                out: 4,
            },
            Op::CreateBuffer {
                context: 2,
                flags: clspec::types::MemFlags::READ_WRITE,
                size: 32 * 16 * 4,
                init: None,
                out: 5,
            },
            Op::CreateSampler { context: 2, out: 6 },
            Op::CreateProgram {
                name: "image_demo".into(),
                context: 2,
                out: 7,
            },
            Op::BuildProgram { prog: 7 },
            Op::CreateKernel {
                prog: 7,
                name: "image_scale".into(),
                out: 8,
            },
            Op::SetArgMem {
                kernel: 8,
                index: 0,
                buf: 4,
            },
            Op::SetArgSampler {
                kernel: 8,
                index: 1,
                sampler: 6,
            },
            Op::SetArgMem {
                kernel: 8,
                index: 2,
                buf: 5,
            },
            Op::SetArgU32 {
                kernel: 8,
                index: 3,
                value: 32,
            },
            Op::SetArgU32 {
                kernel: 8,
                index: 4,
                value: 16,
            },
            Op::Marker { queue: 3, out: 9 },
            Op::Launch {
                kernel: 8,
                queue: 3,
                global: [32, 16, 1],
                local: None,
            },
            Op::Finish { queue: 3 },
            Op::WaitEvent { event: 9 },
            Op::ReadImageChecksum { queue: 3, image: 4 },
            Op::ReadBufferChecksum {
                queue: 3,
                buf: 5,
                size: 32 * 16 * 4,
            },
        ],
    };

    // Golden run, uninterrupted under CheCL.
    let golden = {
        let mut cluster = Cluster::with_standard_nodes(1);
        let node = cluster.node_ids()[0];
        let mut s = CheclSession::launch(
            &mut cluster,
            node,
            nimbus(),
            CheclConfig::default(),
            script.clone(),
        );
        s.run(&mut cluster, StopCondition::Completion).unwrap();
        s.program.checksums
    };
    assert_eq!(golden.len(), 2);

    // Checkpoint mid-run (kernel in flight), migrate across vendors.
    let mut cluster = Cluster::with_standard_nodes(2);
    let nodes = cluster.node_ids();
    let mut s = CheclSession::launch(
        &mut cluster,
        nodes[0],
        nimbus(),
        CheclConfig::default(),
        script,
    );
    s.run(&mut cluster, StopCondition::AfterKernel(1)).unwrap();
    s.checkpoint(&mut cluster, "/nfs/img-suite.ckpt").unwrap();
    s.kill(&mut cluster);
    let mut resumed = CheclSession::restart(
        &mut cluster,
        nodes[1],
        "/nfs/img-suite.ckpt",
        crimson(),
        checl::RestoreTarget::default(),
    )
    .unwrap();
    resumed
        .run(&mut cluster, StopCondition::Completion)
        .unwrap();
    assert_eq!(resumed.program.checksums, golden);
}

#[test]
fn scripts_are_deterministic() {
    // The same workload + config must generate byte-identical scripts —
    // restart correctness depends on deterministic input regeneration.
    use simcore::codec::Codec;
    let cfg = quick_cfg();
    for w in all_workloads() {
        let a = w.script(&cfg).to_bytes();
        let b = w.script(&cfg).to_bytes();
        assert_eq!(a, b, "{} script not deterministic", w.name);
    }
}

#[test]
fn any_session_runs_both_ways() {
    use workloads::session::AnySession;
    let cfg = quick_cfg();
    let w = workload_by_name("oclVectorAdd").unwrap();
    let mut results = Vec::new();
    for native in [true, false] {
        let mut cluster = Cluster::with_standard_nodes(1);
        let node = cluster.node_ids()[0];
        let mut s = if native {
            AnySession::Native(Box::new(NativeSession::launch(
                &mut cluster,
                node,
                nimbus(),
                w.script(&cfg),
            )))
        } else {
            AnySession::Checl(Box::new(CheclSession::launch(
                &mut cluster,
                node,
                nimbus(),
                CheclConfig::default(),
                w.script(&cfg),
            )))
        };
        s.run(&mut cluster, StopCondition::Completion).unwrap();
        assert!(s.elapsed(&cluster).as_secs_f64() > 0.0);
        results.push((s.impl_name(), s.program().checksums.clone()));
    }
    assert_ne!(results[0].0, results[1].0);
    assert_eq!(results[0].1, results[1].1);
}
