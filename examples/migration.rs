//! Cross-node, cross-vendor process migration (§IV-C).
//!
//! ```text
//! cargo run --example migration
//! ```
//!
//! A Black-Scholes pricing job starts on a node with an NVIDIA-like
//! GPU, is migrated mid-run through the shared NFS mount to a node with
//! an AMD-like GPU, and finishes there — same results, different
//! vendor. The migration-cost model `Tm = αM + Tr + β` is evaluated
//! against the measured cost.

use checl::{CheclConfig, RestoreTarget};
use clspec::api::ClApi;
use osproc::Cluster;
use workloads::{workload_by_name, CheclSession, NativeSession, StopCondition, WorkloadCfg};

fn main() {
    let mut cluster = Cluster::with_standard_nodes(2);
    let nodes = cluster.node_ids();
    let cfg = WorkloadCfg {
        scale: 1.0 / 4.0,
        ..WorkloadCfg::default()
    };
    let workload = workload_by_name("oclBlackScholes").unwrap();

    // Golden result from an uninterrupted native run.
    let mut golden = NativeSession::launch(
        &mut cluster,
        nodes[0],
        cldriver::vendor::nimbus(),
        workload.script(&cfg),
    );
    golden.run(&mut cluster, StopCondition::Completion).unwrap();

    // Start the job under CheCL on the Nimbus node.
    let mut job = CheclSession::launch(
        &mut cluster,
        nodes[0],
        cldriver::vendor::nimbus(),
        CheclConfig::default(),
        workload.script(&cfg),
    );
    job.run(&mut cluster, StopCondition::AfterKernel(2))
        .unwrap();
    println!(
        "job running on node0 [{}], {} kernels done",
        job.lib.impl_name(),
        job.program.kernels_launched
    );

    // Migrate to the Crimson node through NFS.
    let (mut job, report) = job
        .migrate(
            &mut cluster,
            nodes[1],
            cldriver::vendor::crimson(),
            "/nfs/migration.ckpt",
            RestoreTarget::default(),
        )
        .unwrap();
    println!("migrated to node1 [{}]", job.lib.impl_name());
    println!("  checkpoint file : {}", report.checkpoint.file_size);
    println!("  actual cost     : {}", report.actual);
    println!("  model Tm=αM+Tr+β: {}", report.predicted);
    println!("  restore breakdown:");
    for (kind, d) in &report.restore.per_kind {
        println!(
            "    {:<10} {:>12}  (x{})",
            kind.short_name(),
            d.to_string(),
            report.restore.counts[kind]
        );
    }

    // Finish on the new vendor and verify.
    job.run(&mut cluster, StopCondition::Completion).unwrap();
    assert_eq!(job.program.checksums, golden.program.checksums);
    println!("✓ results after cross-vendor migration match the native run");
}
