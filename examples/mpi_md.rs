//! MPI molecular dynamics with coordinated CheCL checkpointing
//! (§IV-B, Fig. 6).
//!
//! ```text
//! cargo run --example mpi_md
//! ```
//!
//! Four MPI ranks spread over two nodes each run an MD force
//! computation on the GPU through CheCL. After a synchronised step, a
//! coordinated checkpoint aggregates per-rank local snapshots into a
//! global snapshot on the shared NFS mount. One rank is then killed and
//! recovered from its snapshot, and the job completes with the same
//! per-rank results.

use checl::{CheclConfig, RestoreTarget};
use mpisim::{coordinated_checkpoint, MpiWorld};
use osproc::Cluster;
use simcore::ByteSize;
use workloads::{workload_by_name, CheclSession, StopCondition, WorkloadCfg};

fn main() {
    let mut cluster = Cluster::with_standard_nodes(2);
    let nodes = cluster.node_ids();
    let world = MpiWorld::init(&mut cluster, &nodes, 4);
    let md = workload_by_name("MD").unwrap();
    let cfg = WorkloadCfg {
        scale: 2.0,
        ..WorkloadCfg::default()
    };

    // Each rank runs its share of the MD system under CheCL.
    let mut sessions: Vec<CheclSession> = (0..world.size())
        .map(|rank| {
            CheclSession::attach(
                &mut cluster,
                world.rank_pid(rank),
                cldriver::vendor::nimbus(),
                CheclConfig::default(),
                md.script(&cfg),
            )
        })
        .collect();

    // Step the simulation, then exchange halo data and synchronize.
    for s in &mut sessions {
        s.run(&mut cluster, StopCondition::AfterKernel(2)).unwrap();
        s.persist_program(&mut cluster);
    }
    world.allreduce(&mut cluster, ByteSize::kib(64));
    println!("4 ranks stepped and synchronized");

    // Coordinated global snapshot on NFS.
    let mut libs: Vec<_> = sessions.iter_mut().map(|s| &mut s.lib).collect();
    let mut idx = 0;
    let snapshot =
        coordinated_checkpoint(&mut cluster, &world, "/nfs/md-global", |c, pid, path| {
            let lib = &mut libs[idx];
            idx += 1;
            checl::checkpoint_checl(lib, c, pid, path).map(|r| r.file_size)
        })
        .unwrap();
    println!(
        "global snapshot: {} across {} ranks in {}",
        snapshot.total_size(),
        snapshot.sizes.len(),
        snapshot.elapsed
    );

    // Rank 2's node hiccups: kill and recover it from the snapshot.
    let victim = 2;
    let dead = sessions.remove(victim);
    dead.kill(&mut cluster);
    let recovered = CheclSession::restart(
        &mut cluster,
        nodes[0],
        &snapshot.files[victim],
        cldriver::vendor::nimbus(),
        RestoreTarget::default(),
    )
    .unwrap();
    sessions.insert(victim, recovered);
    println!("rank {victim} recovered from {}", snapshot.files[victim]);

    // Everyone finishes; all ranks computed the same MD system, so all
    // checksum logs agree.
    for (rank, s) in sessions.iter_mut().enumerate() {
        s.run(&mut cluster, StopCondition::Completion).unwrap();
        println!("rank {rank}: checksums {:x?}", s.program.checksums);
    }
    let first = sessions[0].program.checksums.clone();
    for s in &sessions {
        assert_eq!(s.program.checksums, first);
    }
    println!("✓ all ranks agree, including the recovered one");
}
