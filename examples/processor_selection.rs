//! Runtime processor selection (§IV-C): moving a running job between
//! the GPU and the CPU of the *same* machine through the RAM disk.
//!
//! ```text
//! cargo run --example processor_selection
//! ```
//!
//! "CheCL allows an OpenCL process to stop using the GPU at runtime by
//! recreating all OpenCL objects so as to use a CPU as a compute
//! device … use of the RAM disk can significantly reduce the cost of
//! changing the compute device from one to another."

use checl::{CheclConfig, RestoreTarget};
use clspec::types::DeviceType;
use osproc::Cluster;
use workloads::{workload_by_name, CheclSession, StopCondition, WorkloadCfg};

fn main() {
    let mut cluster = Cluster::with_standard_nodes(1);
    let node = cluster.node_ids()[0];
    let cfg = WorkloadCfg {
        scale: 1.0 / 4.0,
        ..WorkloadCfg::default()
    };
    let workload = workload_by_name("Stencil2D").unwrap();

    // Start on the Crimson GPU.
    let mut job = CheclSession::launch(
        &mut cluster,
        node,
        cldriver::vendor::crimson(),
        CheclConfig::default(),
        workload.script(&cfg),
    );
    job.run(&mut cluster, StopCondition::AfterKernel(4))
        .unwrap();
    println!(
        "phase 1: {} kernels on the GPU",
        job.program.kernels_launched
    );

    // The GPU is wanted by a higher-priority job: fall back to the CPU
    // via a RAM-disk checkpoint.
    let (mut job, to_cpu) = job
        .migrate(
            &mut cluster,
            node,
            cldriver::vendor::crimson(),
            "/ram/switch1.ckpt",
            RestoreTarget {
                device_type: Some(DeviceType::Cpu),
            },
        )
        .unwrap();
    println!(
        "switched GPU→CPU in {} (file {}, RAM disk)",
        to_cpu.actual, to_cpu.checkpoint.file_size
    );

    job.run(&mut cluster, StopCondition::AfterKernel(8))
        .unwrap();
    println!(
        "phase 2: {} kernels total, now on the CPU",
        job.program.kernels_launched
    );

    // GPU freed up again: switch back.
    let (mut job, to_gpu) = job
        .migrate(
            &mut cluster,
            node,
            cldriver::vendor::crimson(),
            "/ram/switch2.ckpt",
            RestoreTarget {
                device_type: Some(DeviceType::Gpu),
            },
        )
        .unwrap();
    println!("switched CPU→GPU in {}", to_gpu.actual);

    job.run(&mut cluster, StopCondition::Completion).unwrap();
    println!(
        "phase 3: finished on the GPU with checksums {:x?}",
        job.program.checksums
    );

    // Show why the RAM disk matters: predict the same switch via disk.
    let via_disk = checl::predict_migration_time(
        &job.lib,
        &cldriver::vendor::crimson(),
        osproc::FsKind::LocalDisk,
        to_cpu.checkpoint.file_size,
    );
    println!(
        "\nswitch cost via RAM disk: {} — via hard disk it would be ≈ {}",
        to_cpu.actual, via_disk
    );
}
