//! Quickstart: transparently checkpoint and restart an OpenCL
//! application.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The "application" is ordinary OpenCL host code (vector addition).
//! It is launched twice — once linked against the native vendor
//! library and once against CheCL — and produces identical results.
//! The CheCL run is then checkpointed mid-flight, its processes are
//! killed, and it resumes from the checkpoint file on the same node,
//! finishing with the same checksums.

use checl::{CheclConfig, RestoreTarget};
use clspec::api::ClApi;
use osproc::Cluster;
use workloads::{workload_by_name, CheclSession, NativeSession, StopCondition, WorkloadCfg};

fn main() {
    // A two-node cluster, each with /local, /ram and a shared /nfs.
    let mut cluster = Cluster::with_standard_nodes(2);
    let nodes = cluster.node_ids();
    let cfg = WorkloadCfg {
        scale: 1.0 / 8.0,
        ..WorkloadCfg::default()
    };
    let workload = workload_by_name("oclVectorAdd").expect("catalog entry");

    // --- 1. Run natively -------------------------------------------------
    let mut native = NativeSession::launch(
        &mut cluster,
        nodes[0],
        cldriver::vendor::nimbus(),
        workload.script(&cfg),
    );
    native.run(&mut cluster, StopCondition::Completion).unwrap();
    println!(
        "native   [{}]: {} (checksums {:x?})",
        native.driver.impl_name(),
        native.elapsed(&cluster),
        native.program.checksums,
    );
    let golden = native.program.checksums.clone();

    // A native OpenCL process cannot be checkpointed: the driver mapped
    // device regions into its address space.
    match blcr::checkpoint(&mut cluster, native.pid, "/local/native.ckpt") {
        Err(e) => println!("plain BLCR on the native process fails:   {e}"),
        Ok(_) => unreachable!("BLCR must refuse device-mapped processes"),
    }

    // --- 2. Same unmodified program under CheCL --------------------------
    let mut session = CheclSession::launch(
        &mut cluster,
        nodes[0],
        cldriver::vendor::nimbus(),
        CheclConfig::default(),
        workload.script(&cfg),
    );
    // Pause with the kernel still in flight...
    session
        .run(&mut cluster, StopCondition::AfterKernel(1))
        .unwrap();
    // ...and checkpoint. The application process is clean; only the API
    // proxy holds GPU state, and CheCL knows how to rebuild it.
    let report = session
        .checkpoint(&mut cluster, "/nfs/quickstart.ckpt")
        .unwrap();
    println!(
        "checkpoint: sync {} + preprocess {} + write {} + postprocess {} = {} ({} file)",
        report.sync,
        report.preprocess,
        report.write,
        report.postprocess,
        report.total(),
        report.file_size,
    );

    // Simulate a crash: application and proxy die, GPU state is lost.
    session.kill(&mut cluster);

    // --- 3. Restart on the *other* node ----------------------------------
    let mut resumed = CheclSession::restart(
        &mut cluster,
        nodes[1],
        "/nfs/quickstart.ckpt",
        cldriver::vendor::nimbus(),
        RestoreTarget::default(),
    )
    .unwrap();
    resumed
        .run(&mut cluster, StopCondition::Completion)
        .unwrap();
    println!(
        "restarted [{}] on {:?}: checksums {:x?}",
        resumed.lib.impl_name(),
        cluster.process(resumed.pid).node,
        resumed.program.checksums,
    );

    assert_eq!(resumed.program.checksums, golden);
    println!("✓ results identical to the uninterrupted native run");
}
