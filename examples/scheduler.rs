//! A dynamic job scheduler for a heterogeneous GPU cluster, built on
//! CheCL migration and the `Tm = αM + Tr + β` cost model (§IV-C).
//!
//! ```text
//! cargo run --example scheduler
//! ```
//!
//! Node 0 has a fast NVIDIA-like GPU, node 1 a slower (for this
//! compute-bound job mix) CPU-class device. Jobs arrive over time; when
//! a high-priority job claims the fast GPU, the scheduler decides —
//! using the migration-cost model — whether evicting and migrating the
//! running job pays off, exactly the policy loop the paper proposes
//! CheCL as an infrastructure for.

use checl::{CheclConfig, MigrationModel, RestoreTarget};
use clspec::api::ClApi;
use osproc::{Cluster, FsKind};
use simcore::SimDuration;
use workloads::{workload_by_name, CheclSession, StopCondition, WorkloadCfg};

fn main() {
    let mut cluster = Cluster::with_standard_nodes(2);
    let nodes = cluster.node_ids();
    let cfg = WorkloadCfg {
        scale: 2.0,
        ..WorkloadCfg::default()
    };

    // A long-running matrix job occupies the fast GPU on node 0.
    let batch = workload_by_name("oclMatrixMul").unwrap();
    let mut batch_job = CheclSession::launch(
        &mut cluster,
        nodes[0],
        cldriver::vendor::nimbus(),
        CheclConfig::default(),
        batch.script(&cfg),
    );
    batch_job
        .run(&mut cluster, StopCondition::AfterKernel(12))
        .unwrap();
    println!(
        "batch job on node0/{}: {} of {} kernels done",
        batch_job.lib.impl_name(),
        batch_job.program.kernels_launched,
        batch_job.program.script.kernel_launches(),
    );

    // An urgent job arrives and wants node 0's GPU. The batch job must
    // vacate either way; drain its queue first so the clock reflects
    // the work already banked on the device.
    batch_job.drain(&mut cluster);

    // Should the batch job be migrated to node 1 (Crimson), or killed
    // and re-run from scratch later?
    let file_estimate = simcore::calib::base_process_image() + simcore::ByteSize::mib(3); // its buffers
    let tr = checl::migrate::estimate_recompile_time(&batch_job.lib, &cldriver::vendor::crimson());
    let model = MigrationModel::for_medium(FsKind::Nfs);
    let migration_cost = model.predict(file_estimate, tr);
    // Restarting from scratch forfeits the finished work: estimate it
    // as the virtual time already spent computing.
    let rerun_cost = batch_job.elapsed(&cluster);
    println!("decision inputs:");
    println!("  predicted migration cost (NFS): {migration_cost}");
    println!("  cost of killing + re-running  : {rerun_cost}");

    let migrate = migration_cost < rerun_cost + SimDuration::from_millis(500);
    assert!(migrate, "with these sizes migration should win");
    println!("→ scheduler migrates the batch job to node1\n");

    let (mut batch_job, report) = batch_job
        .migrate(
            &mut cluster,
            nodes[1],
            cldriver::vendor::crimson(),
            "/nfs/sched.ckpt",
            RestoreTarget::default(),
        )
        .unwrap();
    println!(
        "migration done: actual {} vs predicted {} ({}% error)",
        report.actual,
        report.predicted,
        ((report.predicted.as_secs_f64() - report.actual.as_secs_f64()).abs()
            / report.actual.as_secs_f64()
            * 100.0)
            .round(),
    );

    // The urgent job gets the freed GPU.
    let urgent = workload_by_name("mri-q_small").unwrap();
    let mut urgent_job = CheclSession::launch(
        &mut cluster,
        nodes[0],
        cldriver::vendor::nimbus(),
        CheclConfig::default(),
        urgent.script(&cfg),
    );
    urgent_job
        .run(&mut cluster, StopCondition::Completion)
        .unwrap();
    println!(
        "urgent job finished on node0 in {}",
        urgent_job.elapsed(&cluster)
    );

    // Meanwhile the batch job completes on node 1.
    batch_job
        .run(&mut cluster, StopCondition::Completion)
        .unwrap();
    println!(
        "batch job finished on node1 [{}] with checksums {:x?}",
        batch_job.lib.impl_name(),
        batch_job.program.checksums
    );
    println!("✓ both jobs completed; no work was lost");
}
