#!/usr/bin/env python3
"""One guard over every committed bench golden.

Replaces the former per-bench scripts (`check_pipeline_golden.py`,
`check_migration_golden.py`, `check_supervisor_golden.py`) with a single
entry point and a per-bench invariant spec. Each bench names the
properties that are load-bearing — the ones a refactor must never
regress — and a tolerance (all comparisons are strict by default; a
bench that needs slack declares it here, visibly, instead of baking it
into ad-hoc code).

Usage:
    scripts/check_goldens.py [bench ...]

with bench names from SPECS (default: all). Each bench reads its
committed golden `results/BENCH_<figure>.json`; pass `name=path` to
point one at a different file.

Invariants guarded:

* pipeline   — on every multi-buffer/multi-GPU scenario the pipelined
               checkpoint engine beats sequential, with positive
               overlap savings;
* migration  — same property end-to-end across a vendor-switch
               migration;
* supervisor — the adaptive Young/Daly interval policy completes at
               every failure rate and beats both fixed baselines at
               >= 2 of them; the replica scrub repairs injected
               bit-rot without losing a generation;
* inspect    — the ledger-derived health report is internally
               consistent: every incident names the injected fault
               behind it, fault/incident reconciliation is 1:1, and
               availability degrades monotonically with failure rate;
* dedup      — the content-addressed chunk store earns its keep: on
               the slowly-mutating MD sweep every restore is
               checksum-identical to the non-dedup policies, the
               payload reduction at the slow mutation rate is >= 5x a
               full dump, and the ratio degrades monotonically as the
               mutation rate grows;
* obs        — the event ledger is free in virtual time (delta vs the
               bare run is exactly 0 ns in every regime) and every
               emission site is alive (incidents == faults ==
               restores, checkpoints and retunes positive);
* fleet      — the multi-tenant scheduler honors the des refactor's
               contract: scheduler work per event stays flat (and under
               a fixed budget) across a 100x job sweep ending at the
               10k-job cell, every preempted/cold-resumed/live-migrated
               tenant restores bit-exact, preemption generations
               reconcile 1:1, p99 latency stays bounded, and throughput
               grows monotonically with cluster width;
* gray       — gray faults degrade but never corrupt: every brownout /
               heartbeat-loss / partition / rack-crash supervision cell
               completes bit-exact (false positives booked as induced
               overhead, never as failures), the fleet backpressure
               ladder keeps completed + rejected == offered with
               drift-free SLO accounting and a demonstrably live
               reject rung, and the crash-point torture sweep restores
               100% of enumerated obs-event boundaries on all four
               engine paths;
* live       — the live copy-on-write checkpoint keeps its promise:
               every sweep point restores bit-exact against an
               uninterrupted baseline, the stall stays within 1.1x the
               pipelined D2H capture window (the file write is off the
               critical path), and the headline 4-buffer/4-MiB point
               stalls for <= 10% of the pipelined stop-the-world total.
"""

import json
import sys

ADAPTIVE = "daly-adaptive"


def fail(bench: str, msg: str) -> None:
    print(f"check_goldens[{bench}]: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(bench: str, path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        fail(bench, f"cannot read {path}: {e}")


def section_with(doc: dict, *columns: str):
    """First section whose header carries every named column."""
    for section in doc["sections"]:
        if all(c in section["columns"] for c in columns):
            return section
    return None


# ---------------------------------------------------------------------
# pipeline — checkpoint engine ablation
# ---------------------------------------------------------------------


def check_pipeline(doc: dict) -> str:
    checked = 0
    for section in doc["sections"]:
        cols = section["columns"]
        if "mode" not in cols or "total[s]" not in cols:
            continue  # the restart-equivalence section has no timings
        mode_i = cols.index("mode")
        total_i = cols.index("total[s]")
        saved_i = cols.index("saved[s]")
        key_is = [i for i, c in enumerate(cols) if c in ("bufs", "MiB/buf", "gpus")]
        totals: dict[tuple, dict[str, float]] = {}
        saved: dict[tuple, float] = {}
        for row in section["rows"]:
            key = tuple(row[i] for i in key_is)
            totals.setdefault(key, {})[row[mode_i]] = row[total_i]
            if row[mode_i] == "pipelined":
                saved[key] = row[saved_i]
        for key, by_mode in totals.items():
            if "sequential" not in by_mode or "pipelined" not in by_mode:
                fail("pipeline", f"scenario {key} is missing an engine row")
            multi_buffer = "bufs" not in [cols[i] for i in key_is] or key[0] > 1
            if multi_buffer:
                if not by_mode["pipelined"] < by_mode["sequential"]:
                    fail(
                        "pipeline",
                        f"scenario {key}: pipelined {by_mode['pipelined']}s is not "
                        f"strictly below sequential {by_mode['sequential']}s",
                    )
                if not saved.get(key, 0.0) > 0.0:
                    fail("pipeline", f"scenario {key}: overlap_saved is not positive")
                checked += 1
    if checked == 0:
        fail("pipeline", "no multi-buffer scenarios found — wrong file or schema drift")
    return f"{checked} scenarios, pipelined < sequential"


# ---------------------------------------------------------------------
# migration — fig8 engine sweep
# ---------------------------------------------------------------------


def check_migration(doc: dict) -> str:
    checked = 0
    for section in doc["sections"]:
        cols = section["columns"]
        if "mode" not in cols or "actual[s]" not in cols:
            continue  # the per-benchmark prediction sections have no engine sweep
        mode_i = cols.index("mode")
        actual_i = cols.index("actual[s]")
        saved_i = cols.index("saved[s]")
        bufs_i = cols.index("bufs")
        mib_i = cols.index("MiB/buf")
        actuals: dict[tuple, dict[str, float]] = {}
        saved: dict[tuple, float] = {}
        for row in section["rows"]:
            key = (row[bufs_i], row[mib_i])
            actuals.setdefault(key, {})[row[mode_i]] = row[actual_i]
            if row[mode_i] == "pipelined":
                saved[key] = row[saved_i]
        for key, by_mode in actuals.items():
            if "sequential" not in by_mode or "pipelined" not in by_mode:
                fail("migration", f"scenario {key} is missing an engine row")
            if key[0] > 1:
                if not by_mode["pipelined"] < by_mode["sequential"]:
                    fail(
                        "migration",
                        f"scenario {key}: pipelined migration {by_mode['pipelined']}s "
                        f"is not strictly below sequential {by_mode['sequential']}s",
                    )
                if not saved.get(key, 0.0) > 0.0:
                    fail("migration", f"scenario {key}: overlap_saved is not positive")
                checked += 1
    if checked == 0:
        fail("migration", "no multi-buffer migration scenarios found")
    return f"{checked} scenarios, pipelined < sequential"


# ---------------------------------------------------------------------
# supervisor — interval policy × failure rate
# ---------------------------------------------------------------------


def check_supervisor(doc: dict) -> str:
    regimes_won = 0
    regimes = 0
    scrubs = 0
    for section in doc["sections"]:
        cols = section["columns"]
        if "interval policy" in cols:
            policy_i = cols.index("interval policy")
            regime_i = cols.index("failure regime")
            done_i = cols.index("completed")
            total_i = cols.index("total overhead [s]")
            by_regime: dict[str, dict[str, object]] = {}
            for row in section["rows"]:
                by_regime.setdefault(row[regime_i], {})[row[policy_i]] = (
                    row[total_i] if row[done_i] == "yes" else None
                )
            for regime, by_policy in by_regime.items():
                if ADAPTIVE not in by_policy:
                    fail("supervisor", f"regime {regime}: no {ADAPTIVE} row")
                adaptive = by_policy.pop(ADAPTIVE)
                if adaptive is None:
                    fail("supervisor", f"regime {regime}: {ADAPTIVE} did not complete")
                if not by_policy:
                    fail("supervisor", f"regime {regime}: no fixed baselines")
                regimes += 1
                # An escalated (non-completing) baseline is an infinite
                # overhead: the adaptive policy beats it by definition.
                if all(base is None or adaptive < base for base in by_policy.values()):
                    regimes_won += 1
        elif "scrub repaired" in cols:
            scen_i = cols.index("scenario")
            rep_i = cols.index("scrub repaired")
            lost_i = cols.index("scrub lost")
            for row in section["rows"]:
                if row[scen_i] != "corrupt-primary":
                    continue
                if row[rep_i] != 1:
                    fail("supervisor", f"scrub repaired {row[rep_i]}, expected exactly 1")
                if row[lost_i] != 0:
                    fail("supervisor", f"scrub lost {row[lost_i]} generations, expected 0")
                scrubs += 1
    if regimes == 0:
        fail("supervisor", "no interval-policy sweep found — schema drift")
    if scrubs == 0:
        fail("supervisor", "no corrupt-primary scrub row found — schema drift")
    if regimes_won < 2:
        fail(
            "supervisor",
            f"{ADAPTIVE} beats both fixed baselines at only {regimes_won} of "
            f"{regimes} failure rates (need >= 2)",
        )
    return f"{ADAPTIVE} completes at all {regimes} rates, wins {regimes_won}; scrub repairs bit-rot"


# ---------------------------------------------------------------------
# inspect — ledger-derived health report
# ---------------------------------------------------------------------


def check_inspect(doc: dict) -> str:
    slo = section_with(doc, "availability", "incidents", "faults matched")
    if slo is None:
        fail("inspect", "no SLO section found — schema drift")
    cols = slo["columns"]
    avail_i = cols.index("availability")
    inc_i = cols.index("incidents")
    match_i = cols.index("faults matched")
    down_i = cols.index("downtime [s]")
    availabilities = []
    for row in slo["rows"]:
        if not 0.0 < row[avail_i] <= 100.0:
            fail("inspect", f"availability {row[avail_i]} out of (0, 100]")
        if row[inc_i] != row[match_i]:
            fail(
                "inspect",
                f"{row[0]}: {row[inc_i]} incidents but {row[match_i]} matched faults "
                f"— the 1:1 reconciliation broke",
            )
        if row[inc_i] > 0 and not row[down_i] > 0.0:
            fail("inspect", f"{row[0]}: incidents occurred but downtime is zero")
        availabilities.append(row[avail_i])
    if availabilities != sorted(availabilities, reverse=True):
        fail(
            "inspect",
            f"availability must degrade with failure rate, got {availabilities}",
        )

    prov = section_with(doc, "generation", "checksum", "retired")
    if prov is None or not prov["rows"]:
        fail("inspect", "no provenance rows — the generation table is empty")

    timeline = section_with(doc, "fault behind it", "resolved")
    if timeline is None:
        fail("inspect", "no incident-timeline section found")
    for row in timeline["rows"]:
        fault = row[timeline["columns"].index("fault behind it")]
        if fault == "?":
            fail("inspect", "an incident has no injected fault behind it")

    channels = section_with(doc, "channel", "ops")
    if channels is None or not channels["rows"]:
        fail("inspect", "no channel-utilization rows from the pipelined dump")

    dedup = section_with(doc, "generation", "chunks deduped", "dedup ratio")
    if dedup is None or len(dedup["rows"]) < 2:
        fail("inspect", "no per-generation dedup rows from the chunk store")
    dcols = dedup["columns"]
    deduped_i = dcols.index("chunks deduped")
    novel_i = dcols.index("chunks novel")
    ratio_i = dcols.index("dedup ratio")
    first = dedup["rows"][0]
    if first[deduped_i] != 0 or not first[novel_i] > 0:
        fail("inspect", "generation 0 must seed the store (all chunks novel)")
    for row in dedup["rows"][1:]:
        if not row[deduped_i] > row[novel_i]:
            fail(
                "inspect",
                f"generation {row[0]}: dedup hits ({row[deduped_i]}) do not dominate "
                f"novel chunks ({row[novel_i]}) on a slowly-mutating run",
            )
        if row[ratio_i] is not None and not row[ratio_i] > 1.0:
            fail("inspect", f"generation {row[0]}: dedup ratio {row[ratio_i]} <= 1")

    tenants = section_with(doc, "job", "preemptions", "policies", "SLO")
    if tenants is None or not tenants["rows"]:
        fail("inspect", "no per-tenant rows folded from the fleet ledger")
    tcols = tenants["columns"]
    t_pre_i = tcols.index("preemptions")
    t_mig_i = tcols.index("migrations")
    t_pol_i = tcols.index("policies")
    t_bit_i = tcols.index("bit-exact")
    for row in tenants["rows"]:
        if row[t_bit_i] != "yes":
            fail("inspect", f"{row[0]}: a disturbed tenant did not restore bit-exact")
        if row[t_pre_i] + row[t_mig_i] < 1:
            fail("inspect", f"{row[0]}: an undisturbed tenant leaked into the table")
        if row[t_pre_i] > 0 and not row[t_pol_i]:
            fail("inspect", f"{row[0]}: preempted but no checkpoint policy recorded")

    return (
        f"{len(slo['rows'])} regimes consistent, {len(prov['rows'])} generations, "
        f"{len(timeline['rows'])} incidents attributed, {len(channels['rows'])} channels, "
        f"{len(dedup['rows'])} dedup generations, {len(tenants['rows'])} disturbed tenants"
    )


# ---------------------------------------------------------------------
# dedup — chunk-store ablation on the mutating MD sweep
# ---------------------------------------------------------------------

SLOW_RATE = "2%"
MIN_SLOW_RATIO = 5.0


def check_dedup(doc: dict) -> str:
    sweep = section_with(doc, "mutation", "mode", "payload ratio", "checksum")
    if sweep is None:
        fail("dedup", "no policy-sweep section found — schema drift")
    cols = sweep["columns"]
    rate_i = cols.index("mutation")
    mode_i = cols.index("mode")
    ratio_i = cols.index("payload ratio")
    sum_i = cols.index("checksum")
    checksums: dict[str, dict[str, str]] = {}
    ratios: dict[str, float] = {}
    for row in sweep["rows"]:
        checksums.setdefault(row[rate_i], {})[row[mode_i]] = row[sum_i]
        if row[mode_i] == "dedup":
            if row[ratio_i] is None:
                fail("dedup", f"rate {row[rate_i]}: dedup row has no payload ratio")
            ratios[row[rate_i]] = row[ratio_i]
    if not checksums:
        fail("dedup", "sweep section has no rows")
    for rate, by_mode in checksums.items():
        for mode in ("full", "incremental", "dedup"):
            if mode not in by_mode:
                fail("dedup", f"rate {rate}: no {mode} row")
        if len(set(by_mode.values())) != 1:
            fail(
                "dedup",
                f"rate {rate}: restored checksums diverge across policies "
                f"({by_mode}) — the dedup path is not bit-exact",
            )
    if SLOW_RATE not in ratios:
        fail("dedup", f"no dedup row at the slow mutation rate {SLOW_RATE}")
    if not ratios[SLOW_RATE] >= MIN_SLOW_RATIO:
        fail(
            "dedup",
            f"payload reduction at {SLOW_RATE} mutation is {ratios[SLOW_RATE]}x, "
            f"below the promised {MIN_SLOW_RATIO}x",
        )
    ordered = [ratios[r] for r in ("0%", "2%", "25%") if r in ratios]
    if ordered != sorted(ordered, reverse=True):
        fail(
            "dedup",
            f"payload ratio must degrade as the mutation rate grows, got {ordered}",
        )
    return (
        f"{len(checksums)} rates bit-exact across policies, "
        f"{ratios[SLOW_RATE]:.1f}x payload reduction at {SLOW_RATE} mutation"
    )


# ---------------------------------------------------------------------
# live — copy-on-write live-checkpoint ablation
# ---------------------------------------------------------------------

# The live stall may not exceed the pipelined engine's D2H capture
# window by more than 10% at any sweep point: the claim is that the
# file write leaves the critical path, so the stall degenerates to (at
# most) a capture cost.
STALL_VS_PREPROC = 1.1
# At the headline point the stall must be <= 10% of the pipelined
# stop-the-world total.
HEADLINE = (4, 4)
STALL_VS_PIPELINED = 0.10


def check_live(doc: dict) -> str:
    sweep = section_with(doc, "stall[s]", "preproc[s]", "pipelined[s]", "bit_exact")
    if sweep is None:
        fail("live", "no stall-sweep section found — schema drift")
    cols = sweep["columns"]
    bufs_i = cols.index("bufs")
    mib_i = cols.index("MiB/buf")
    pipe_i = cols.index("pipelined[s]")
    pre_i = cols.index("preproc[s]")
    stall_i = cols.index("stall[s]")
    drain_i = cols.index("drain[s]")
    exact_i = cols.index("bit_exact")
    if not sweep["rows"]:
        fail("live", "sweep section has no rows")
    headline_seen = False
    for row in sweep["rows"]:
        key = (row[bufs_i], row[mib_i])
        if row[exact_i] != "yes":
            fail("live", f"scenario {key}: restore is not bit-exact")
        if not row[stall_i] <= STALL_VS_PREPROC * row[pre_i]:
            fail(
                "live",
                f"scenario {key}: stall {row[stall_i]}s exceeds "
                f"{STALL_VS_PREPROC}x the D2H preprocess window {row[pre_i]}s "
                f"— the dump is back on the critical path",
            )
        if not row[stall_i] < row[drain_i]:
            fail(
                "live",
                f"scenario {key}: stall {row[stall_i]}s is not below the "
                f"drain wall {row[drain_i]}s — nothing was overlapped",
            )
        if key == HEADLINE:
            headline_seen = True
            if not row[stall_i] <= STALL_VS_PIPELINED * row[pipe_i]:
                fail(
                    "live",
                    f"headline {key}: stall {row[stall_i]}s exceeds "
                    f"{STALL_VS_PIPELINED:.0%} of the pipelined "
                    f"stop-the-world total {row[pipe_i]}s",
                )
    if not headline_seen:
        fail("live", f"headline scenario {HEADLINE} missing from the sweep")
    return (
        f"{len(sweep['rows'])} scenarios bit-exact, stall <= "
        f"{STALL_VS_PREPROC}x preproc everywhere, headline stall <= "
        f"{STALL_VS_PIPELINED:.0%} of pipelined"
    )


# ---------------------------------------------------------------------
# obs — ledger overhead ablation
# ---------------------------------------------------------------------


def check_obs(doc: dict) -> str:
    census = section_with(doc, "delta vs bare [ns]", "events")
    if census is None:
        fail("obs", "no census section found — schema drift")
    cols = census["columns"]
    delta_i = cols.index("delta vs bare [ns]")
    events_i = cols.index("events")
    ckpt_i = cols.index("checkpoints")
    inc_i = cols.index("incidents")
    fault_i = cols.index("faults")
    restore_i = cols.index("restores")
    retune_i = cols.index("retunes")
    if not census["rows"]:
        fail("obs", "census has no rows")
    for row in census["rows"]:
        regime = row[0]
        if row[delta_i] != 0:
            fail("obs", f"{regime}: ledger cost {row[delta_i]} ns of virtual time")
        if not row[events_i] > 0:
            fail("obs", f"{regime}: empty ledger — emission sites are dead")
        if not row[ckpt_i] >= 1:
            fail("obs", f"{regime}: no checkpoint_committed events")
        if not (row[inc_i] == row[fault_i] == row[restore_i]):
            fail(
                "obs",
                f"{regime}: incidents/faults/restores diverge "
                f"({row[inc_i]}/{row[fault_i]}/{row[restore_i]})",
            )
        if not row[retune_i] >= 1:
            fail("obs", f"{regime}: the adaptive controller never retuned")
    return f"{len(census['rows'])} regimes, ledger free in virtual time, sites alive"


# ---------------------------------------------------------------------
# fleet — multi-tenant scheduler sweeps
# ---------------------------------------------------------------------

# The deterministic scheduler-work budget: ops/event must stay under
# this at every sweep cell, and the largest cell may exceed the
# smallest by at most OPS_FLATNESS (a linear scan anywhere in the event
# loop would blow straight through both).
OPS_BUDGET = 16.0
OPS_FLATNESS = 1.5
P99_BOUND_MS = 10_000.0


def check_fleet(doc: dict) -> str:
    sweep = section_with(doc, "jobs", "ops/event", "bit-exact", "generations")
    if sweep is None or not sweep["rows"]:
        fail("fleet", "no job-count sweep section found — schema drift")
    cols = sweep["columns"]
    jobs_i = cols.index("jobs")
    thr_i = cols.index("throughput [jobs/s]")
    p99_i = cols.index("p99 [ms]")
    pre_i = cols.index("preemptions")
    cold_i = cols.index("cold migr")
    live_i = cols.index("live migr")
    gen_i = cols.index("generations")
    ops_i = cols.index("ops/event")
    bit_i = cols.index("bit-exact")
    job_counts = [row[jobs_i] for row in sweep["rows"]]
    if job_counts != sorted(job_counts) or job_counts[-1] < 10_000:
        fail("fleet", f"sweep must grow to the 10k-job cell, got {job_counts}")
    ops = []
    for row in sweep["rows"]:
        jobs = row[jobs_i]
        if row[bit_i] != jobs:
            fail(
                "fleet",
                f"{jobs} jobs: only {row[bit_i]} verified bit-exact — a "
                f"preempted or migrated tenant diverged from its baseline",
            )
        if not row[thr_i] > 0.0:
            fail("fleet", f"{jobs} jobs: throughput {row[thr_i]} is not positive")
        if not row[p99_i] <= P99_BOUND_MS:
            fail("fleet", f"{jobs} jobs: p99 {row[p99_i]} ms blew the {P99_BOUND_MS} ms bound")
        if not row[ops_i] <= OPS_BUDGET:
            fail("fleet", f"{jobs} jobs: {row[ops_i]} sched ops/event over the {OPS_BUDGET} budget")
        if row[gen_i] != row[pre_i]:
            fail(
                "fleet",
                f"{jobs} jobs: {row[gen_i]} generations vs {row[pre_i]} preemptions "
                f"— every preemption writes exactly one generation",
            )
        ops.append(row[ops_i])
    if max(ops) > min(ops) * OPS_FLATNESS:
        fail(
            "fleet",
            f"ops/event is not flat across the sweep ({min(ops)} .. {max(ops)}): "
            f"a linear scan crept into the event loop",
        )
    big = [row for row in sweep["rows"] if row[jobs_i] >= 3000]
    for row in big:
        if row[pre_i] == 0 or row[cold_i] == 0 or row[live_i] == 0:
            fail(
                "fleet",
                f"{row[jobs_i]} jobs: preemption ({row[pre_i]}), cold migration "
                f"({row[cold_i]}) and live migration ({row[live_i]}) must all fire "
                f"at scale",
            )

    nodes = section_with(doc, "nodes", "slots", "throughput [jobs/s]")
    if nodes is None or len(nodes["rows"]) < 2:
        fail("fleet", "no node-count sweep section found — schema drift")
    ncols = nodes["columns"]
    n_i = ncols.index("nodes")
    nthr_i = ncols.index("throughput [jobs/s]")
    np50_i = ncols.index("p50 [ms]")
    nbit_i = ncols.index("bit-exact")
    widths = [row[n_i] for row in nodes["rows"]]
    if widths != sorted(widths):
        fail("fleet", f"node sweep out of order: {widths}")
    thr = [row[nthr_i] for row in nodes["rows"]]
    if thr != sorted(thr):
        fail(
            "fleet",
            f"throughput must grow monotonically with node count, got {thr}",
        )
    p50 = [row[np50_i] for row in nodes["rows"]]
    if p50 != sorted(p50, reverse=True):
        fail(
            "fleet",
            f"p50 latency must fall monotonically with node count, got {p50}",
        )
    for row in nodes["rows"]:
        if row[nbit_i] != 600:
            fail("fleet", f"{row[n_i]} nodes: only {row[nbit_i]}/600 bit-exact")

    return (
        f"{len(sweep['rows'])} sweep cells to {job_counts[-1]} jobs, "
        f"ops/event within {min(ops)}..{max(ops)} (budget {OPS_BUDGET}), "
        f"throughput monotone over {len(nodes['rows'])} cluster widths"
    )


# ---------------------------------------------------------------------
# gray — gray-failure & correlated-fault resilience ablation
# ---------------------------------------------------------------------


def check_gray(doc: dict) -> str:
    # Section 1: every gray-fault scenario completes bit-exact, the
    # heartbeat-loss cell books zero failures (a slow node is not a
    # dead node) with positive induced overhead, and the correlated
    # scenarios actually fail over.
    sup = section_with(doc, "scenario", "false positives", "induced [s]")
    if sup is None or not sup["rows"]:
        fail("gray", "no gray-fault supervision section found — schema drift")
    cols = sup["columns"]
    sc_i = cols.index("scenario")
    comp_i = cols.index("completed")
    fail_i = cols.index("failures")
    fp_i = cols.index("false positives")
    ind_i = cols.index("induced [s]")
    bit_i = cols.index("bit-exact")
    saw_heartbeat = saw_failover = False
    for row in sup["rows"]:
        name = row[sc_i]
        if row[comp_i] != "yes" or row[bit_i] != "yes":
            fail("gray", f"{name}: did not complete bit-exact under gray faults")
        if "heartbeat" in name:
            saw_heartbeat = True
            if row[fail_i] != 0:
                fail("gray", f"{name}: a slow node was booked as {row[fail_i]} failure(s)")
            if not row[fp_i] > 0 or not row[ind_i] > 0.0:
                fail("gray", f"{name}: detector stress left no false-positive bookkeeping")
        if "partition" in name or "rack" in name:
            saw_failover = True
            if not row[fail_i] >= 1:
                fail("gray", f"{name}: the correlated fault never triggered a failover")
    if not saw_heartbeat or not saw_failover:
        fail("gray", "missing heartbeat-loss or partition/rack scenario rows")

    # Section 2: the backpressure ladder keeps accounting drift-free —
    # completed + rejected == offered on every cell, every admitted job
    # completes, and the reject rung demonstrably fires somewhere.
    ladder = section_with(doc, "scenario", "offered", "rejected", "accounting")
    if ladder is None or not ladder["rows"]:
        fail("gray", "no backpressure ladder section found — schema drift")
    cols = ladder["columns"]
    sc_i = cols.index("scenario")
    off_i = cols.index("offered")
    comp_i = cols.index("completed")
    rej_i = cols.index("rejected")
    att_i = cols.index("SLO attained")
    miss_i = cols.index("SLO missed")
    bit_i = cols.index("bit-exact")
    acc_i = cols.index("accounting")
    rejected_total = 0
    for row in ladder["rows"]:
        name = row[sc_i]
        if row[comp_i] + row[rej_i] != row[off_i]:
            fail("gray", f"{name}: {row[comp_i]} completed + {row[rej_i]} rejected "
                         f"!= {row[off_i]} offered — an admitted job was stranded")
        if row[att_i] + row[miss_i] != row[comp_i]:
            fail("gray", f"{name}: SLO accounting drifted "
                         f"({row[att_i]} + {row[miss_i]} != {row[comp_i]})")
        if row[bit_i] != "yes" or row[acc_i] != "zero drift":
            fail("gray", f"{name}: degraded-mode verification failed")
        rejected_total += row[rej_i]
    if rejected_total == 0:
        fail("gray", "the typed admission-reject rung never fired in any cell")

    # Section 3: the torture sweep enumerated every obs-event boundary
    # and restored (or survived) 100% of them on every engine path.
    torture = section_with(doc, "engine path", "crash points", "restores")
    if torture is None:
        fail("gray", "no crash-point torture section found — schema drift")
    cols = torture["columns"]
    path_i = cols.index("engine path")
    pts_i = cols.index("crash points")
    sur_i = cols.index("survivors")
    res_i = cols.index("restores")
    kinds_i = cols.index("event kinds")
    paths = {row[path_i] for row in torture["rows"]}
    expected = {"sequential", "pipelined", "dedup", "live"}
    if paths != expected:
        fail("gray", f"torture sweep covers {sorted(paths)}, want {sorted(expected)}")
    total_points = 0
    for row in torture["rows"]:
        name = row[path_i]
        if row[sur_i] + row[res_i] != row[pts_i]:
            fail("gray", f"torture[{name}]: {row[sur_i]} survivors + {row[res_i]} "
                         f"restores != {row[pts_i]} crash points — a boundary was lost")
        if not row[res_i] > 0:
            fail("gray", f"torture[{name}]: no crash point actually tripped")
        if not row[kinds_i] >= 2:
            fail("gray", f"torture[{name}]: only {row[kinds_i]} event kind(s) at the "
                         f"boundaries — the sweep is not covering the sequence")
        total_points += row[pts_i]
    return (
        f"{len(sup['rows'])} gray scenarios bit-exact, ladder drift-free "
        f"({rejected_total} typed rejections), {total_points} crash points "
        f"restored across {len(paths)} engine paths"
    )


# ---------------------------------------------------------------------
# registry + entry point
# ---------------------------------------------------------------------

SPECS = {
    "pipeline": ("results/BENCH_ablation_pipeline.json", check_pipeline),
    "migration": ("results/BENCH_fig8_migration.json", check_migration),
    "supervisor": ("results/BENCH_ablation_supervisor.json", check_supervisor),
    "inspect": ("results/BENCH_checl_inspect.json", check_inspect),
    "dedup": ("results/BENCH_ablation_dedup.json", check_dedup),
    "live": ("results/BENCH_ablation_live.json", check_live),
    "obs": ("results/BENCH_ablation_obs.json", check_obs),
    "fleet": ("results/BENCH_fleet.json", check_fleet),
    "gray": ("results/BENCH_ablation_gray.json", check_gray),
}


def main() -> None:
    requested = sys.argv[1:] or list(SPECS)
    for arg in requested:
        bench, _, override = arg.partition("=")
        if bench not in SPECS:
            fail(bench, f"unknown bench (choose from {', '.join(SPECS)})")
        path, checker = SPECS[bench]
        summary = checker(load(bench, override or path))
        print(f"check_goldens[{bench}]: OK ({summary})")


if __name__ == "__main__":
    main()
