#!/usr/bin/env python3
"""Perf-regression guard over the fig8_migration golden.

For every multi-buffer scenario in the migration-engine section, the
pipelined dump's end-to-end migration time must be strictly below the
sequential dump's, and the reported overlap saving must be positive. A
regression in the engine's streamed data path or the channel scheduler
shows up here before it shows up in a plot.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_migration_golden: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "results/BENCH_fig8_migration.json"
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    checked = 0
    for section in doc["sections"]:
        cols = section["columns"]
        if "mode" not in cols or "actual[s]" not in cols:
            continue  # the per-benchmark prediction sections have no engine sweep
        mode_i = cols.index("mode")
        actual_i = cols.index("actual[s]")
        saved_i = cols.index("saved[s]")
        bufs_i = cols.index("bufs")
        mib_i = cols.index("MiB/buf")
        actuals: dict[tuple, dict[str, float]] = {}
        saved: dict[tuple, float] = {}
        for row in section["rows"]:
            key = (row[bufs_i], row[mib_i])
            actuals.setdefault(key, {})[row[mode_i]] = row[actual_i]
            if row[mode_i] == "pipelined":
                saved[key] = row[saved_i]
        for key, by_mode in actuals.items():
            if "sequential" not in by_mode or "pipelined" not in by_mode:
                fail(f"scenario {key} is missing an engine row")
            if key[0] > 1:
                if not by_mode["pipelined"] < by_mode["sequential"]:
                    fail(
                        f"scenario {key}: pipelined migration {by_mode['pipelined']}s "
                        f"is not strictly below sequential {by_mode['sequential']}s"
                    )
                if not saved.get(key, 0.0) > 0.0:
                    fail(f"scenario {key}: overlap_saved is not positive")
                checked += 1

    if checked == 0:
        fail("no multi-buffer migration scenarios found — wrong file or schema drift")
    print(f"check_migration_golden: OK ({checked} scenarios, pipelined < sequential)")


if __name__ == "__main__":
    main()
