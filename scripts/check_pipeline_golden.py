#!/usr/bin/env python3
"""Perf-regression guard over the ablation_pipeline golden.

For every scenario in the checkpoint-engine sections that has more than
one buffer (or any number of GPUs — each GPU contributes two buffers),
the pipelined engine's wall-clock total must be strictly below the
sequential engine's. A regression in the channel scheduler or the
streamed data path shows up here before it shows up in a plot.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_pipeline_golden: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "results/BENCH_ablation_pipeline.json"
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    checked = 0
    for section in doc["sections"]:
        cols = section["columns"]
        if "mode" not in cols or "total[s]" not in cols:
            continue  # the restart-equivalence section has no timings
        mode_i = cols.index("mode")
        total_i = cols.index("total[s]")
        saved_i = cols.index("saved[s]")
        # Scenario key = every column that is not a timing/size result.
        key_is = [
            i
            for i, c in enumerate(cols)
            if c in ("bufs", "MiB/buf", "gpus")
        ]
        totals: dict[tuple, dict[str, float]] = {}
        saved: dict[tuple, float] = {}
        for row in section["rows"]:
            key = tuple(row[i] for i in key_is)
            totals.setdefault(key, {})[row[mode_i]] = row[total_i]
            if row[mode_i] == "pipelined":
                saved[key] = row[saved_i]
        for key, by_mode in totals.items():
            if "sequential" not in by_mode or "pipelined" not in by_mode:
                fail(f"scenario {key} is missing an engine row")
            multi_buffer = "bufs" not in [cols[i] for i in key_is] or key[0] > 1
            if multi_buffer:
                if not by_mode["pipelined"] < by_mode["sequential"]:
                    fail(
                        f"scenario {key}: pipelined {by_mode['pipelined']}s is not "
                        f"strictly below sequential {by_mode['sequential']}s"
                    )
                if not saved.get(key, 0.0) > 0.0:
                    fail(f"scenario {key}: overlap_saved is not positive")
                checked += 1

    if checked == 0:
        fail("no multi-buffer scenarios found — wrong file or schema drift")
    print(f"check_pipeline_golden: OK ({checked} scenarios, pipelined < sequential)")


if __name__ == "__main__":
    main()
