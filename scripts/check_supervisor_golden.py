#!/usr/bin/env python3
"""Availability guard over the ablation_supervisor golden.

Two properties of the self-healing supervisor are load-bearing and must
never regress:

* the adaptive Young/Daly interval policy completes at **every** swept
  failure rate, and its total overhead (wasted work + checkpoint
  overhead + detection/repair downtime) beats **both** fixed baselines
  at two or more failure rates — a baseline that escalates instead of
  completing counts as beaten;
* the redundant-dump scrub detects the injected bit-rot and repairs it
  from the mirror without losing a generation.

A regression in the failure detector, the interval controller, the
repair ladder or the dump vault shows up here before it shows up in a
plot.
"""

import json
import sys

ADAPTIVE = "daly-adaptive"


def fail(msg: str) -> None:
    print(f"check_supervisor_golden: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "results/BENCH_ablation_supervisor.json"
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    regimes_won = 0
    regimes = 0
    scrubs = 0
    for section in doc["sections"]:
        cols = section["columns"]
        if "interval policy" in cols:
            policy_i = cols.index("interval policy")
            regime_i = cols.index("failure regime")
            done_i = cols.index("completed")
            total_i = cols.index("total overhead [s]")
            by_regime: dict[str, dict[str, object]] = {}
            for row in section["rows"]:
                by_regime.setdefault(row[regime_i], {})[row[policy_i]] = (
                    row[total_i] if row[done_i] == "yes" else None
                )
            for regime, by_policy in by_regime.items():
                if ADAPTIVE not in by_policy:
                    fail(f"regime {regime}: no {ADAPTIVE} row")
                adaptive = by_policy.pop(ADAPTIVE)
                if adaptive is None:
                    fail(f"regime {regime}: {ADAPTIVE} did not complete")
                if not by_policy:
                    fail(f"regime {regime}: no fixed baselines to compare against")
                regimes += 1
                # An escalated (non-completing) baseline is an infinite
                # overhead: the adaptive policy beats it by definition.
                if all(base is None or adaptive < base for base in by_policy.values()):
                    regimes_won += 1
        elif "scrub repaired" in cols:
            scen_i = cols.index("scenario")
            rep_i = cols.index("scrub repaired")
            lost_i = cols.index("scrub lost")
            for row in section["rows"]:
                if row[scen_i] != "corrupt-primary":
                    continue
                if row[rep_i] != 1:
                    fail(f"scrub repaired {row[rep_i]} replicas, expected exactly 1")
                if row[lost_i] != 0:
                    fail(f"scrub lost {row[lost_i]} generations, expected 0")
                scrubs += 1

    if regimes == 0:
        fail("no interval-policy sweep found — wrong file or schema drift")
    if scrubs == 0:
        fail("no corrupt-primary scrub row found — wrong file or schema drift")
    if regimes_won < 2:
        fail(
            f"{ADAPTIVE} beats both fixed baselines at only {regimes_won} of "
            f"{regimes} failure rates (need >= 2)"
        )
    print(
        f"check_supervisor_golden: OK ({ADAPTIVE} completes at all {regimes} "
        f"failure rates, wins {regimes_won}; scrub repairs bit-rot)"
    )


if __name__ == "__main__":
    main()
