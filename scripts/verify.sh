#!/usr/bin/env bash
# Full offline verification: format, lints, build, tests, and a smoke
# run of one figure harness with trace recording + validation.
#
# Usage: scripts/verify.sh [--quick]
#   --quick   skip clippy and the micro-bench smoke (CI uses the full run)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

echo "==> cargo fmt --check"
cargo fmt --all --check

if [[ "$QUICK" -eq 0 ]]; then
    echo "==> cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> smoke: fig5_checkpoint with trace recording"
cargo run -q --release -p checl-bench --bin fig5_checkpoint -- \
    --trace results/fig5.trace.json >/dev/null
# TraceSession::finish panics unless telemetry::validate accepts the
# trace, so reaching here means the export is structurally sound.
test -s results/fig5.trace.json
test -s results/BENCH_fig5_checkpoint.json

echo "==> smoke: fault-injection matrix (fixed seed, diffed against golden)"
cargo run -q --release -p checl-bench --bin ablation_faults -- \
    --trace /tmp/faults.trace.json >/dev/null
# Fault schedules are seeded and virtual-time-driven, so the regenerated
# JSON must be byte-identical to the committed golden.
git diff --exit-code -- results/BENCH_ablation_faults.json

echo "==> smoke: pipelined checkpoint engine (golden diff)"
cargo run -q --release -p checl-bench --bin ablation_pipeline >/dev/null
git diff --exit-code -- results/BENCH_ablation_pipeline.json

echo "==> smoke: migration engines (golden diff)"
# The bench itself asserts cross-vendor checksum equivalence between
# the sequential and pipelined dump engines (nimbus → crimson).
cargo run -q --release -p checl-bench --bin fig8_migration >/dev/null
git diff --exit-code -- results/BENCH_fig8_migration.json

echo "==> smoke: self-healing supervisor (golden diff)"
# Every supervised cell proves bit-exactness against a native run.
cargo run -q --release -p checl-bench --bin ablation_supervisor >/dev/null
git diff --exit-code -- results/BENCH_ablation_supervisor.json

echo "==> smoke: dedup chunk store ablation (golden diff)"
# Every cell restores its last generation and asserts checksum equality
# with an uninterrupted baseline before a row is written.
cargo run -q --release -p checl-bench --bin ablation_dedup >/dev/null
git diff --exit-code -- results/BENCH_ablation_dedup.json

echo "==> smoke: live copy-on-write checkpoint ablation (golden diff)"
# Every cell cuts mid-run, races the drain with further mutation, and
# asserts the restore is bit-exact against an uninterrupted baseline.
cargo run -q --release -p checl-bench --bin ablation_live >/dev/null
git diff --exit-code -- results/BENCH_ablation_live.json

echo "==> smoke: ledger health report + observability ablation (golden diff)"
# checl_inspect re-derives the supervisor's books from the event ledger
# alone (the binary asserts exact agreement); ablation_obs asserts the
# ledger costs zero virtual time. Both exports are seeded goldens.
cargo run -q --release -p checl-bench --bin checl_inspect >/dev/null
git diff --exit-code -- results/BENCH_checl_inspect.json results/checl_inspect.ledger.jsonl
cargo run -q --release -p checl-bench --bin ablation_obs >/dev/null
git diff --exit-code -- results/BENCH_ablation_obs.json

echo "==> smoke: gray-failure resilience + crash-point torture (golden diff)"
# Every gray-fault supervision cell asserts bit-exactness, the fleet
# ladder cells assert drift-free accounting, and the torture sweep
# replays the dump/drain/commit/GC sequence once per obs-event
# boundary and restores 100% of them before a row is written.
cargo run -q --release -p checl-bench --bin ablation_gray >/dev/null
git diff --exit-code -- results/BENCH_ablation_gray.json

if [[ "$QUICK" -eq 0 ]]; then
    echo "==> smoke: fleet scheduler sweep (golden diff, ~3 min)"
    # Sweeps 100 -> 10,000 admitted jobs; every cell verifies every
    # tenant bit-exact against an uninterrupted solo run, and the
    # scheduler's ops/event counter must stay flat across the sweep.
    cargo run -q --release -p checl-bench --bin fleet >/dev/null
    git diff --exit-code -- results/BENCH_fleet.json
fi

echo "==> golden invariants (perf, availability, reconciliation guards)"
# One spec per bench: pipelined < sequential (checkpoint + migration),
# the adaptive interval policy wins, the health report reconciles
# faults 1:1, the ledger stays free in virtual time, and the fleet
# sweep stays flat in ops/event with monotone node-count throughput.
python3 scripts/check_goldens.py pipeline migration supervisor inspect dedup live obs fleet gray

if [[ "$QUICK" -eq 0 ]]; then
    echo "==> smoke: micro-benches (codec filter)"
    cargo bench -q -p checl-bench -- codec >/dev/null
fi

echo "verify: OK"
