#!/usr/bin/env bash
# Full offline verification: format, lints, build, tests, and a smoke
# run of one figure harness with trace recording + validation.
#
# Usage: scripts/verify.sh [--quick]
#   --quick   skip clippy and the micro-bench smoke (CI uses the full run)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

echo "==> cargo fmt --check"
cargo fmt --all --check

if [[ "$QUICK" -eq 0 ]]; then
    echo "==> cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> smoke: fig5_checkpoint with trace recording"
cargo run -q --release -p checl-bench --bin fig5_checkpoint -- \
    --trace results/fig5.trace.json >/dev/null
# TraceSession::finish panics unless telemetry::validate accepts the
# trace, so reaching here means the export is structurally sound.
test -s results/fig5.trace.json
test -s results/BENCH_fig5_checkpoint.json

echo "==> smoke: fault-injection matrix (fixed seed, diffed against golden)"
cargo run -q --release -p checl-bench --bin ablation_faults -- \
    --trace /tmp/faults.trace.json >/dev/null
# Fault schedules are seeded and virtual-time-driven, so the regenerated
# JSON must be byte-identical to the committed golden.
git diff --exit-code -- results/BENCH_ablation_faults.json

echo "==> smoke: pipelined checkpoint engine (golden diff + perf guard)"
cargo run -q --release -p checl-bench --bin ablation_pipeline >/dev/null
git diff --exit-code -- results/BENCH_ablation_pipeline.json
# Perf-regression guard: on every multi-buffer/multi-GPU scenario the
# pipelined engine's wall-clock must stay strictly below sequential.
python3 scripts/check_pipeline_golden.py results/BENCH_ablation_pipeline.json

echo "==> smoke: migration engines (golden diff + perf guard)"
# The bench itself asserts cross-vendor checksum equivalence between
# the sequential and pipelined dump engines (nimbus → crimson).
cargo run -q --release -p checl-bench --bin fig8_migration >/dev/null
git diff --exit-code -- results/BENCH_fig8_migration.json
# Perf-regression guard: on every multi-buffer scenario the pipelined
# migration's end-to-end time must stay strictly below sequential.
python3 scripts/check_migration_golden.py results/BENCH_fig8_migration.json

echo "==> smoke: self-healing supervisor (golden diff + availability guard)"
# Every supervised cell proves bit-exactness against a native run; the
# guard then holds the headline: the adaptive interval policy completes
# at every failure rate and beats both fixed baselines at >= 2 of them.
cargo run -q --release -p checl-bench --bin ablation_supervisor >/dev/null
git diff --exit-code -- results/BENCH_ablation_supervisor.json
python3 scripts/check_supervisor_golden.py results/BENCH_ablation_supervisor.json

if [[ "$QUICK" -eq 0 ]]; then
    echo "==> smoke: micro-benches (codec filter)"
    cargo bench -q -p checl-bench -- codec >/dev/null
fi

echo "verify: OK"
