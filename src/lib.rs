//! # CheCL — transparent checkpointing and process migration of OpenCL
//! # applications (IPDPS 2011), reproduced in Rust
//!
//! This is the umbrella crate of the reproduction workspace. It
//! re-exports every layer so examples, integration tests and downstream
//! users can depend on one crate:
//!
//! | crate | role |
//! |-------|------|
//! | [`simcore`] | virtual clock, bandwidth models, Table I calibration, checkpoint codec |
//! | [`osproc`] | simulated OS/cluster: processes, filesystems, pipes, signals |
//! | [`clspec`] | the OpenCL API surface: handles, errors, requests, signature parser |
//! | [`cldriver`] | vendor drivers (Nimbus ≈ NVIDIA, Crimson ≈ AMD) |
//! | [`clkernels`] | kernel corpus + deterministic execution engine + cost model |
//! | [`blcr`] | BLCR-like conventional CPR (refuses device-mapped processes) |
//! | [`checl`] | **the paper's contribution**: API proxy, CheCL objects, CPR engine, migration |
//! | [`mpisim`] | MPI ranks and coordinated global snapshots |
//! | [`workloads`] | the 39-benchmark evaluation suite as checkpointable scripts |
//!
//! ## Quick start
//!
//! ```
//! use checl::{CheclConfig, RestoreTarget};
//! use osproc::Cluster;
//! use workloads::{workload_by_name, CheclSession, StopCondition, WorkloadCfg};
//!
//! let mut cluster = Cluster::with_standard_nodes(2);
//! let nodes = cluster.node_ids();
//! let cfg = WorkloadCfg { scale: 1.0 / 64.0, ..Default::default() };
//! let w = workload_by_name("oclVectorAdd").unwrap();
//!
//! // Run an unmodified OpenCL program under CheCL, checkpoint it with
//! // a kernel in flight, kill it, and resume it on another node.
//! let mut job = CheclSession::launch(
//!     &mut cluster, nodes[0], cldriver::vendor::nimbus(),
//!     CheclConfig::default(), w.script(&cfg));
//! job.run(&mut cluster, StopCondition::AfterKernel(1)).unwrap();
//! job.checkpoint(&mut cluster, "/nfs/job.ckpt").unwrap();
//! job.kill(&mut cluster);
//!
//! let mut job = CheclSession::restart(
//!     &mut cluster, nodes[1], "/nfs/job.ckpt",
//!     cldriver::vendor::nimbus(), RestoreTarget::default()).unwrap();
//! job.run(&mut cluster, StopCondition::Completion).unwrap();
//! assert!(!job.program.checksums.is_empty());
//! ```

pub use blcr;
pub use checl;
pub use cldriver;
pub use clkernels;
pub use clspec;
pub use mpisim;
pub use osproc;
pub use simcore;
pub use workloads;
