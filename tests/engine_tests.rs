//! Property tests for the unified checkpoint/restore engine
//! ([`checl::engine`]): every [`checl::CprPolicy`] combination restores
//! bit-identically, pipelining never costs wall-clock against the
//! sequential data path, a mid-dump fault during migration leaves the
//! previous checkpoint generation restorable, and a pipelined + robust
//! migration survives a transient disk fault across a vendor switch.

use blcr::RetryPolicy;
use checl::{CheclConfig, CprPolicy, RecoveryPolicy, RestoreTarget, SnapshotFormat};
use checl_repro as _;
use clspec::types::DeviceType;
use osproc::{Cluster, FaultPlan};
use simcore::qcheck::{qcheck, Gen};
use workloads::{BufInit, CheclSession, Op, Reg, Script, StopCondition};

const KIB: u64 = 1 << 10;

/// Single-device script: seeded buffers, a pause after creation, a
/// rewrite of half the buffers (dirtying them), a second pause — the
/// snapshot under test lands here — then a checksum per buffer.
fn dirty_script(sizes: &[u64]) -> (Script, u64, u64) {
    let mut ops = vec![
        Op::GetPlatform { out: 0 },
        Op::GetDevices {
            platform: 0,
            dtype: DeviceType::Gpu,
            out: 1,
            count: 1,
        },
        Op::CreateContext { device: 1, out: 2 },
        Op::CreateQueue {
            context: 2,
            device: 1,
            out: 3,
        },
    ];
    let buf0: Reg = 4;
    for (i, &size) in sizes.iter().enumerate() {
        ops.push(Op::CreateBuffer {
            context: 2,
            flags: clspec::types::MemFlags::READ_WRITE,
            size,
            init: Some(BufInit::RandomU32 {
                seed: 0xe9e + i as u64,
            }),
            out: buf0 + i as Reg,
        });
    }
    let stop_create = ops.len() as u64;
    for (i, &size) in sizes.iter().enumerate().take(sizes.len().div_ceil(2)) {
        ops.push(Op::WriteBuffer {
            queue: 3,
            buf: buf0 + i as Reg,
            size,
            init: BufInit::RandomU32 {
                seed: 0xd1a7 + i as u64,
            },
        });
    }
    let stop_dirty = ops.len() as u64;
    for (i, &size) in sizes.iter().enumerate() {
        ops.push(Op::ReadBufferChecksum {
            queue: 3,
            buf: buf0 + i as Reg,
            size,
        });
    }
    (Script { ops }, stop_create, stop_dirty)
}

/// Draw 2–5 buffer sizes of at least 512 KiB (the regime the pipelined
/// engine is built for — overlap must amortise its fixed framing and
/// commit overhead).
fn arbitrary_sizes(g: &mut Gen) -> Vec<u64> {
    (0..g.usize_in(2, 5))
        .map(|_| g.range(512, 2048) * KIB)
        .collect()
}

/// Draw one point of the policy lattice: format × incremental ×
/// pipelined × recovery (with and without read-back verification).
fn arbitrary_policy(g: &mut Gen) -> CprPolicy {
    let mut policy = CprPolicy {
        format: if g.bool() {
            SnapshotFormat::Streamed
        } else {
            SnapshotFormat::Sequential
        },
        ..CprPolicy::default()
    };
    policy = policy.incremental(g.bool());
    if g.bool() {
        policy.pipelined = true;
    }
    if g.bool() {
        policy = policy.with_recovery(RecoveryPolicy {
            retry: RetryPolicy {
                verify: g.bool(),
                ..RetryPolicy::default()
            },
            fallback_targets: Vec::new(),
        });
    }
    if g.bool() {
        policy = policy.delayed();
    }
    policy
}

/// Resume `path` and replay the rest of the script; the restart side
/// always goes through the sniffing entry point, so sequential and
/// streamed dumps are told apart by the file itself.
fn resumed_checksums(cluster: &mut Cluster, node: osproc::NodeId, path: &str) -> Vec<u64> {
    let mut s = CheclSession::restart_pipelined(
        cluster,
        node,
        path,
        cldriver::vendor::nimbus(),
        RestoreTarget::default(),
    )
    .expect("restart failed");
    s.run(cluster, StopCondition::Completion).unwrap();
    let sums = s.program.checksums.clone();
    s.kill(cluster);
    sums
}

/// Every point of the policy lattice snapshots to a file that resumes
/// to a checksum-identical run — format, incremental payloads,
/// pipelining and commit hardening never change restored bytes.
#[test]
fn every_policy_combination_restores_bit_identical() {
    qcheck("every_policy_combination_restores_bit_identical", 16, |g| {
        let sizes = arbitrary_sizes(g);
        let policy = arbitrary_policy(g);
        let (script, stop_create, stop_dirty) = dirty_script(&sizes);
        let mut cluster = Cluster::with_standard_nodes(1);
        let node = cluster.node_ids()[0];
        let mut s = CheclSession::launch(
            &mut cluster,
            node,
            cldriver::vendor::nimbus(),
            CheclConfig::default(),
            script,
        );
        s.run(&mut cluster, StopCondition::AfterOps(stop_create))
            .unwrap();
        // Baseline generation: incremental policies reference the clean
        // half of the buffers from this file.
        s.checkpoint(&mut cluster, "/nfs/engine-base.ckpt").unwrap();
        s.run(&mut cluster, StopCondition::AfterOps(stop_dirty))
            .unwrap();
        let outcome = s
            .checkpoint_with_policy(&mut cluster, "/nfs/engine-under-test.ckpt", &policy)
            .unwrap_or_else(|e| panic!("snapshot failed under {policy:?}: {e}"));
        assert_eq!(outcome.path, "/nfs/engine-under-test.ckpt");
        assert_eq!(outcome.recovery.is_some(), policy.recovery.is_some());
        // The undisturbed session finishes; its checksum log is golden.
        s.run(&mut cluster, StopCondition::Completion).unwrap();
        let golden = s.program.checksums.clone();
        s.kill(&mut cluster);
        let sums = resumed_checksums(&mut cluster, node, &outcome.path);
        assert_eq!(sums, golden, "restore diverged under {policy:?}");
    });
}

/// The overlapped data path is a pure optimisation: for the same
/// session state a pipelined snapshot's wall-clock never exceeds the
/// sequential snapshot's.
#[test]
fn pipelined_never_exceeds_sequential_wall_clock() {
    qcheck("pipelined_never_exceeds_sequential_wall_clock", 16, |g| {
        let sizes = arbitrary_sizes(g);
        let (script, _stop_create, stop_dirty) = dirty_script(&sizes);
        let mut cluster = Cluster::with_standard_nodes(1);
        let node = cluster.node_ids()[0];
        let mut s = CheclSession::launch(
            &mut cluster,
            node,
            cldriver::vendor::nimbus(),
            CheclConfig::default(),
            script,
        );
        s.run(&mut cluster, StopCondition::AfterOps(stop_dirty))
            .unwrap();
        let seq = s
            .checkpoint_with_policy(
                &mut cluster,
                "/local/engine-seq.ckpt",
                &CprPolicy::sequential(),
            )
            .unwrap();
        let pipe = s
            .checkpoint_with_policy(
                &mut cluster,
                "/local/engine-pipe.ckpt",
                &CprPolicy::pipelined(),
            )
            .unwrap();
        assert!(
            pipe.report.total() <= seq.report.total(),
            "pipelined {:?} exceeded sequential {:?} on {} buffers",
            pipe.report.total(),
            seq.report.total(),
            sizes.len()
        );
        s.kill(&mut cluster);
    });
}

/// A fault injected mid-dump during migration must not orphan the job:
/// the migration reports the error with the source generation intact,
/// and restarting from the previous checkpoint reproduces the
/// undisturbed run exactly.
#[test]
fn failed_migration_leaves_previous_generation_restorable() {
    qcheck(
        "failed_migration_leaves_previous_generation_restorable",
        8,
        |g| {
            let sizes = arbitrary_sizes(g);
            let (script, stop_create, stop_dirty) = dirty_script(&sizes);
            // Golden: the same program, undisturbed, to completion.
            let golden = {
                let mut cluster = Cluster::with_standard_nodes(1);
                let node = cluster.node_ids()[0];
                let mut s = CheclSession::launch(
                    &mut cluster,
                    node,
                    cldriver::vendor::nimbus(),
                    CheclConfig::default(),
                    script.clone(),
                );
                s.run(&mut cluster, StopCondition::Completion).unwrap();
                let sums = s.program.checksums.clone();
                s.kill(&mut cluster);
                sums
            };
            let mut cluster = Cluster::with_standard_nodes(2);
            let nodes = cluster.node_ids();
            let mut s = CheclSession::launch(
                &mut cluster,
                nodes[0],
                cldriver::vendor::nimbus(),
                CheclConfig::default(),
                script,
            );
            s.run(&mut cluster, StopCondition::AfterOps(stop_create))
                .unwrap();
            s.checkpoint(&mut cluster, "/nfs/engine-gen1.ckpt").unwrap();
            s.run(&mut cluster, StopCondition::AfterOps(stop_dirty))
                .unwrap();
            // The migration dump dies mid-write (hard failure or short
            // write, fault-plan-seeded); no recovery policy, so the error
            // must propagate out of the migration.
            let seed = g.u64();
            let plan = if g.bool() {
                FaultPlan::new(seed).fail_next_writes(1)
            } else {
                FaultPlan::new(seed).short_next_writes(1)
            }
            .only_paths_containing("/nfs/engine-mig");
            cluster.install_faults(plan);
            let failed = s.migrate_with_policy(
                &mut cluster,
                nodes[1],
                cldriver::vendor::crimson(),
                "/nfs/engine-mig.ckpt",
                RestoreTarget::default(),
                &CprPolicy::pipelined(),
            );
            assert!(failed.is_err(), "mid-dump fault must fail the migration");
            // The generation-1 file is untouched and still restores the
            // exact bytes of the undisturbed run.
            let sums = resumed_checksums(&mut cluster, nodes[0], "/nfs/engine-gen1.ckpt");
            assert_eq!(
                sums, golden,
                "previous generation diverged after failed migration"
            );
        },
    );
}

/// The PR's acceptance scenario: a pipelined + robust migration from
/// the Tesla platform to the Radeon platform (randomly onto its GPU or
/// its CPU device) completes bit-identically even though the first
/// dump write fails transiently.
#[test]
fn robust_pipelined_migration_survives_transient_fault_across_vendors() {
    qcheck(
        "robust_pipelined_migration_survives_transient_fault_across_vendors",
        6,
        |g| {
            let sizes = arbitrary_sizes(g);
            let (script, _stop_create, stop_dirty) = dirty_script(&sizes);
            let golden = {
                let mut cluster = Cluster::with_standard_nodes(1);
                let node = cluster.node_ids()[0];
                let mut s = CheclSession::launch(
                    &mut cluster,
                    node,
                    cldriver::vendor::nimbus(),
                    CheclConfig::default(),
                    script.clone(),
                );
                s.run(&mut cluster, StopCondition::Completion).unwrap();
                let sums = s.program.checksums.clone();
                s.kill(&mut cluster);
                sums
            };
            let mut cluster = Cluster::with_standard_nodes(2);
            let nodes = cluster.node_ids();
            let mut s = CheclSession::launch(
                &mut cluster,
                nodes[0],
                cldriver::vendor::nimbus(),
                CheclConfig::default(),
                script,
            );
            s.run(&mut cluster, StopCondition::AfterOps(stop_dirty))
                .unwrap();
            cluster.install_faults(FaultPlan::new(g.u64()).fail_next_writes(1));
            let policy = CprPolicy::pipelined().with_recovery(RecoveryPolicy {
                retry: RetryPolicy::default(),
                fallback_targets: Vec::new(),
            });
            let device_type = if g.bool() {
                Some(DeviceType::Cpu)
            } else {
                None
            };
            let (mut resumed, report) = s
                .migrate_with_policy(
                    &mut cluster,
                    nodes[1],
                    cldriver::vendor::crimson(),
                    "/nfs/engine-robust-mig.ckpt",
                    RestoreTarget { device_type },
                    &policy,
                )
                .expect("robust migration must survive one transient fault");
            let recovery = report.recovery.expect("recovery accounting present");
            assert!(
                recovery.attempts >= 2,
                "the transient fault must have cost a retry"
            );
            resumed
                .run(&mut cluster, StopCondition::Completion)
                .unwrap();
            assert_eq!(
                resumed.program.checksums, golden,
                "cross-vendor migration diverged onto {device_type:?}"
            );
            resumed.kill(&mut cluster);
        },
    );
}
