//! Fault-injection system tests: whatever a seeded [`FaultPlan`]
//! throws at a CheCL application, the run terminates, replays
//! bit-for-bit under the same seed, and — when a checkpoint was
//! committed — recovers the exact buffer contents of an undisturbed
//! run.

use blcr::RetryPolicy;
use checl_repro as _;
use osproc::{Cluster, FaultPlan, InjectedFault, Pid};
use simcore::qcheck::{qcheck, Gen};
use simcore::{SimDuration, SimTime};
use workloads::{workload_by_name, CheclSession, NativeSession, StopCondition, WorkloadCfg};

fn quick() -> WorkloadCfg {
    WorkloadCfg {
        scale: 1.0 / 64.0,
        ..WorkloadCfg::default()
    }
}

fn launch(cluster: &mut Cluster) -> CheclSession {
    let node = cluster.node_ids()[0];
    let w = workload_by_name("oclVectorAdd").unwrap();
    CheclSession::launch(
        cluster,
        node,
        cldriver::vendor::nimbus(),
        checl::CheclConfig::default(),
        w.script(&quick()),
    )
}

/// Final checksums of the same program run natively, undisturbed.
fn golden_checksums() -> Vec<u64> {
    let mut cluster = Cluster::with_standard_nodes(1);
    let node = cluster.node_ids()[0];
    let w = workload_by_name("oclVectorAdd").unwrap();
    let mut s = NativeSession::launch(
        &mut cluster,
        node,
        cldriver::vendor::nimbus(),
        w.script(&quick()),
    );
    s.run(&mut cluster, StopCondition::Completion).unwrap();
    s.program.checksums
}

/// Draw an adversarial fault plan: random probabilistic write mangling,
/// scripted one-shot faults, NFS outage windows and scheduled process
/// faults, all from the generator's stream.
fn arbitrary_plan(g: &mut Gen, origin: SimTime) -> FaultPlan {
    let mut plan = FaultPlan::new(g.u64());
    if g.bool() {
        plan = plan.with_write_fail_prob(g.f32_in(0.0, 0.6) as f64);
    }
    if g.bool() {
        plan = plan.with_short_write_prob(g.f32_in(0.0, 0.4) as f64);
    }
    if g.bool() {
        plan = plan.with_corrupt_write_prob(g.f32_in(0.0, 0.4) as f64);
    }
    plan = plan
        .fail_next_writes(g.range(0, 3) as u32)
        .short_next_writes(g.range(0, 2) as u32)
        .corrupt_next_writes(g.range(0, 2) as u32);
    if g.bool() {
        let from = origin + SimDuration::from_millis(g.range(0, 40));
        plan = plan.schedule_nfs_outage(from, from + SimDuration::from_millis(g.range(1, 200)));
    }
    for _ in 0..g.usize_in(0, 3) {
        plan = plan.schedule_proxy_death(origin + SimDuration::from_millis(g.range(0, 30)));
    }
    for _ in 0..g.usize_in(0, 3) {
        plan = plan.schedule_pipe_break(origin + SimDuration::from_millis(g.range(0, 30)));
    }
    plan
}

/// Run the gauntlet: checkpoint under the plan, then run to completion
/// with recovery enabled. Both steps may fail — what matters is that
/// they *return*. Yields the fault log, the final program checksums
/// (empty when the run failed) and the final clock.
fn gauntlet(plan: FaultPlan) -> (Vec<InjectedFault>, Vec<u64>, SimTime) {
    let mut cluster = Cluster::with_standard_nodes(2);
    let mut session = launch(&mut cluster);
    session
        .run(&mut cluster, StopCondition::AfterKernel(1))
        .unwrap();
    // The safety net is written before faults arm, so recovery always
    // has a good file to fall back on.
    session.checkpoint(&mut cluster, "/local/net.ckpt").unwrap();
    cluster.install_faults(plan);
    let _ = session.checkpoint_with_recovery(
        &mut cluster,
        &["/nfs/g.ckpt", "/local/g.ckpt"],
        &RetryPolicy::default(),
    );
    let vendor = cldriver::vendor::nimbus();
    let outcome = session.run_with_recovery(
        &mut cluster,
        StopCondition::Completion,
        "/local/net.ckpt",
        &vendor,
        6,
    );
    let checksums = match outcome {
        Ok(_) => session.program.checksums.clone(),
        Err(_) => Vec::new(),
    };
    let clock = cluster.process(session.pid).clock;
    (
        cluster.take_faults().unwrap().log().to_vec(),
        checksums,
        clock,
    )
}

/// Any seeded fault plan — probabilistic mangling, scripted bursts,
/// outage windows, process faults — leaves the run terminating
/// normally: every fault either recovers or surfaces as a typed error.
#[test]
fn any_fault_plan_terminates() {
    qcheck("any_fault_plan_terminates", 24, |g| {
        let plan = arbitrary_plan(g, SimTime::ZERO);
        let (_log, _sums, _clock) = gauntlet(plan);
    });
}

/// The same seed injects the same faults at the same virtual times and
/// ends in the same state — fault runs are replayable.
#[test]
fn same_seed_replays_bit_for_bit() {
    qcheck("same_seed_replays_bit_for_bit", 12, |g| {
        let seed = g.u64();
        let mk = |seed: u64| {
            let mut inner = Gen::new(seed);
            arbitrary_plan(&mut inner, SimTime::ZERO)
        };
        let (log_a, sums_a, clock_a) = gauntlet(mk(seed));
        let (log_b, sums_b, clock_b) = gauntlet(mk(seed));
        assert_eq!(log_a, log_b, "fault logs must replay identically");
        assert_eq!(sums_a, sums_b, "results must replay identically");
        assert_eq!(clock_a, clock_b, "virtual time must replay identically");
    });
}

/// A run that loses its API proxy at least once and recovers from a
/// committed checkpoint finishes with buffer contents bit-exact to an
/// undisturbed run.
#[test]
fn recovered_run_is_bit_exact() {
    let golden = golden_checksums();
    qcheck("recovered_run_is_bit_exact", 12, |g| {
        let mut cluster = Cluster::with_standard_nodes(1);
        let mut session = launch(&mut cluster);
        session
            .run(&mut cluster, StopCondition::AfterKernel(1))
            .unwrap();
        session.checkpoint(&mut cluster, "/local/r.ckpt").unwrap();
        let now = cluster.process(session.pid).clock;
        // At least one proxy death due immediately; maybe more later.
        let mut plan = FaultPlan::new(g.u64()).schedule_proxy_death(now);
        for _ in 0..g.usize_in(0, 2) {
            plan = plan.schedule_proxy_death(now + SimDuration::from_millis(g.range(1, 20)));
        }
        cluster.install_faults(plan);
        let vendor = cldriver::vendor::nimbus();
        let report = session
            .run_with_recovery(
                &mut cluster,
                StopCondition::Completion,
                "/local/r.ckpt",
                &vendor,
                8,
            )
            .expect("recovery from a committed checkpoint must succeed");
        assert!(report.respawns >= 1, "the scheduled death must have fired");
        assert_eq!(
            session.program.checksums, golden,
            "recovered contents must match the undisturbed run"
        );
    });
}

// ---------------------------------------------------------------------
// Degraded-host restore: errors, never panics
// ---------------------------------------------------------------------

/// Restarting on a host whose OpenCL installation enumerates no
/// platforms (and hence no devices) is a typed error, not an underflow
/// panic in the object-recreation path.
#[test]
fn restore_on_headless_host_errors() {
    let mut cluster = Cluster::with_standard_nodes(2);
    let mut session = launch(&mut cluster);
    session
        .run(&mut cluster, StopCondition::AfterKernel(1))
        .unwrap();
    session.checkpoint(&mut cluster, "/nfs/h.ckpt").unwrap();
    let peer = cluster.node_ids()[1];
    let err = match checl::restart_checl_process(
        &mut cluster,
        peer,
        "/nfs/h.ckpt",
        cldriver::vendor::headless(),
        checl::RestoreTarget::default(),
    ) {
        Err(e) => e,
        Ok(_) => panic!("restore on a headless host must fail"),
    };
    match err {
        checl::CheclCprError::NoSuchDevice { available, .. } => assert_eq!(available, 0),
        other => panic!("expected NoSuchDevice, got {other}"),
    }
}

/// Requesting a device type the restore host cannot offer (CPU restore
/// on a GPU-only box) also surfaces as [`NoSuchDevice`].
///
/// [`NoSuchDevice`]: checl::CheclCprError::NoSuchDevice
#[test]
fn restore_with_unavailable_device_type_errors() {
    let mut cluster = Cluster::with_standard_nodes(2);
    let mut session = launch(&mut cluster);
    session
        .run(&mut cluster, StopCondition::AfterKernel(1))
        .unwrap();
    session.checkpoint(&mut cluster, "/nfs/t.ckpt").unwrap();
    let peer = cluster.node_ids()[1];
    let err = match checl::restart_checl_process(
        &mut cluster,
        peer,
        "/nfs/t.ckpt",
        cldriver::vendor::nimbus(), // GPU-only vendor
        checl::RestoreTarget {
            device_type: Some(clspec::types::DeviceType::Cpu),
        },
    ) {
        Err(e) => e,
        Ok(_) => panic!("CPU restore on a GPU-only host must fail"),
    };
    match err {
        checl::CheclCprError::NoSuchDevice { available, .. } => assert_eq!(available, 0),
        other => panic!("expected NoSuchDevice, got {other}"),
    }
}

/// A restart that fails on a degraded host must not leak a half-born
/// process: the spawned pid is reaped.
#[test]
fn failed_restore_reaps_the_process() {
    let mut cluster = Cluster::with_standard_nodes(2);
    let mut session = launch(&mut cluster);
    session
        .run(&mut cluster, StopCondition::AfterKernel(1))
        .unwrap();
    session.checkpoint(&mut cluster, "/nfs/p.ckpt").unwrap();
    let live = |c: &Cluster| -> Vec<Pid> {
        c.pids()
            .into_iter()
            .filter(|p| c.process(*p).is_alive())
            .collect()
    };
    let before = live(&cluster);
    let peer = cluster.node_ids()[1];
    assert!(checl::restart_checl_process(
        &mut cluster,
        peer,
        "/nfs/p.ckpt",
        cldriver::vendor::headless(),
        checl::RestoreTarget::default(),
    )
    .is_err());
    assert_eq!(
        live(&cluster),
        before,
        "no live process may remain from the failed restart"
    );
}
