//! Fleet-scheduler properties: deterministic replay and bit-exact
//! preemption at every checkpoint-policy lattice point.

use checl_repro as _;

use checl::cpr::RestoreTarget;
use checl::CheclConfig;
use osproc::Cluster;
use simcore::qcheck::{qcheck, Gen};
use simcore::SimDuration;
use workloads::{workload_by_name, CheclSession, StopCondition, WorkloadCfg, YieldPoint};

fn mix(g: &mut Gen, jobs: usize) -> Vec<fleet::JobSpec> {
    fleet::default_job_mix(jobs, g.u64(), SimDuration::from_micros(g.range(100, 2000)))
}

/// The whole fleet schedule — placements, preemptions, migrations,
/// latencies, scheduler-op counts — replays bit-identically under its
/// seed: there is no hidden nondeterminism in the event loop.
#[test]
fn fleet_schedule_replays_bit_identically() {
    qcheck("fleet_schedule_replays_bit_identically", 3, |g| {
        let cfg = fleet::FleetConfig {
            nodes: g.usize_in(2, 4),
            slots_per_node: 2,
            check_bit_exact: true,
            ..fleet::FleetConfig::default()
        };
        let jobs = g.usize_in(12, 25);
        let specs = mix(g, jobs);
        let a = fleet::run_fleet(&cfg, specs.clone());
        let b = fleet::run_fleet(&cfg, specs);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.preemptions, b.preemptions);
        assert_eq!(a.migrations_cold, b.migrations_cold);
        assert_eq!(a.migrations_live, b.migrations_live);
        assert_eq!(a.generations, b.generations);
        assert_eq!(a.sched_events, b.sched_events);
        assert_eq!(a.sched_ops, b.sched_ops);
        assert_eq!(a.slo_attained, b.slo_attained);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.latency, y.latency);
            assert_eq!(x.preemptions, y.preemptions);
            assert_eq!(x.migrations, y.migrations);
            assert_eq!(x.generations, y.generations);
            assert_eq!(x.node, y.node);
            assert_eq!(x.bit_exact, Some(true));
        }
    });
}

/// A tenant preempted mid-run — checkpointed, killed, and later
/// resumed on a *different* node — finishes with checksums identical
/// to an uninterrupted solo run, at **every** policy lattice point the
/// fleet's preemption rotation uses (sequential, pipelined,
/// pipelined+incremental, pipelined+dedup).
#[test]
fn preemption_is_bit_exact_at_every_lattice_point() {
    qcheck("preemption_is_bit_exact_at_every_lattice_point", 3, |g| {
        let workload = *g.pick(&fleet::MIX_WORKLOADS);
        let scale = *g.pick(&[0.01f64, 0.025, 0.06]);
        let cfg = WorkloadCfg {
            device_mem: simcore::calib::tesla_c1060_memory(),
            scale,
            device_type: clspec::types::DeviceType::Gpu,
        };
        let script = workload_by_name(workload).unwrap().script(&cfg);
        let quantum = SimDuration::from_micros(g.range(100, 1000));
        let cuts = g.usize_in(1, 4);

        // The reference: the same script, never interrupted.
        let expected = {
            let mut cluster = Cluster::with_standard_nodes(1);
            let node = cluster.node_ids()[0];
            let mut s = CheclSession::launch(
                &mut cluster,
                node,
                cldriver::vendor::nimbus(),
                CheclConfig::default(),
                script.clone(),
            );
            s.run(&mut cluster, StopCondition::Completion).unwrap();
            s.program.checksums.clone()
        };

        for policy in fleet::preempt_policies() {
            let mut cluster = Cluster::with_standard_nodes(2);
            let nodes = cluster.node_ids();
            let mut s = CheclSession::launch(
                &mut cluster,
                nodes[0],
                cldriver::vendor::nimbus(),
                CheclConfig::default(),
                script.clone(),
            );
            // Advance to a yield point partway through the script.
            let mut done = false;
            for _ in 0..cuts {
                if s.run_step(&mut cluster, quantum).unwrap() == YieldPoint::Done {
                    done = true;
                    break;
                }
            }
            if !done {
                // Preempt: dump under this lattice point, kill the
                // process, resume from the dump on the *other* node.
                let path = format!("/nfs/latt-{}.ckpt", policy.label());
                s.checkpoint_with_policy(&mut cluster, &path, &policy)
                    .unwrap();
                s.kill(&mut cluster);
                s = CheclSession::restart_pipelined(
                    &mut cluster,
                    nodes[1],
                    &path,
                    cldriver::vendor::nimbus(),
                    RestoreTarget::default(),
                )
                .unwrap();
                s.run(&mut cluster, StopCondition::Completion).unwrap();
            }
            assert_eq!(
                s.program.checksums,
                expected,
                "{workload} @ {scale}: policy {} diverged from the \
                 uninterrupted baseline",
                policy.label(),
            );
        }
    });
}
