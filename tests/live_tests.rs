//! Property tests for the live copy-on-write checkpoint mode
//! ([`checl::CprPolicy::live`]): a live cut restores bit-identically
//! to its quiesce point no matter how the application mutates buffers
//! while the background drain is in flight, at every point of the
//! policy lattice; a mid-drain fault leaves the previous generation
//! restorable; and the live stall never exceeds the stop-the-world
//! sequential total for the same session state.

use checl::{CheclConfig, CprPolicy, RestoreTarget, SnapshotFormat};
use checl_repro as _;
use clspec::types::DeviceType;
use osproc::{Cluster, FaultPlan};
use simcore::qcheck::{qcheck, Gen};
use workloads::{BufInit, CheclSession, Op, Reg, Script, StopCondition};

const KIB: u64 = 1 << 10;

/// Single-device script shaped for a mid-run cut: seeded buffers, a
/// first mutation wave (the cut lands after it), then a *post-cut*
/// wave that rewrites every buffer — whole-buffer writes on the second
/// half, prefix writes on the first half — so a live drain is always
/// racing concurrent mutation. Checksums of every buffer close it out.
fn live_script(sizes: &[u64]) -> (Script, u64, u64) {
    let mut ops = vec![
        Op::GetPlatform { out: 0 },
        Op::GetDevices {
            platform: 0,
            dtype: DeviceType::Gpu,
            out: 1,
            count: 1,
        },
        Op::CreateContext { device: 1, out: 2 },
        Op::CreateQueue {
            context: 2,
            device: 1,
            out: 3,
        },
    ];
    let buf0: Reg = 4;
    for (i, &size) in sizes.iter().enumerate() {
        ops.push(Op::CreateBuffer {
            context: 2,
            flags: clspec::types::MemFlags::READ_WRITE,
            size,
            init: Some(BufInit::RandomU32 {
                seed: 0x11fe + i as u64,
            }),
            out: buf0 + i as Reg,
        });
    }
    let stop_create = ops.len() as u64;
    let half = sizes.len().div_ceil(2);
    for (i, &size) in sizes.iter().enumerate().take(half) {
        ops.push(Op::WriteBuffer {
            queue: 3,
            buf: buf0 + i as Reg,
            size,
            init: BufInit::RandomU32 {
                seed: 0xd1a7 + i as u64,
            },
        });
    }
    let stop_cut = ops.len() as u64;
    // Post-cut wave: these ops race the background drain and must
    // trigger copy-on-write forks of the not-yet-drained cut bytes.
    for (i, &size) in sizes.iter().enumerate() {
        let write = if i < half { (size / 2).max(4) } else { size };
        ops.push(Op::WriteBuffer {
            queue: 3,
            buf: buf0 + i as Reg,
            size: write,
            init: BufInit::RandomU32 {
                seed: 0xc0c0 + i as u64,
            },
        });
    }
    for (i, &size) in sizes.iter().enumerate() {
        ops.push(Op::ReadBufferChecksum {
            queue: 3,
            buf: buf0 + i as Reg,
            size,
        });
    }
    (Script { ops }, stop_create, stop_cut)
}

/// Draw 2–5 buffer sizes of at least 256 KiB (several 64 KiB COW
/// grains each, so forks exercise partial coverage).
fn arbitrary_sizes(g: &mut Gen) -> Vec<u64> {
    (0..g.usize_in(2, 5))
        .map(|_| g.range(256, 1024) * KIB)
        .collect()
}

/// Draw one live point of the policy lattice: format × incremental ×
/// pipelined × dedup × trigger, all with the live axis on.
fn arbitrary_live_policy(g: &mut Gen) -> CprPolicy {
    let mut policy = CprPolicy {
        format: if g.bool() {
            SnapshotFormat::Streamed
        } else {
            SnapshotFormat::Sequential
        },
        ..CprPolicy::default()
    };
    policy = policy.incremental(g.bool());
    if g.bool() {
        policy.pipelined = true;
    }
    policy = policy.dedup(g.bool());
    if g.bool() {
        policy = policy.delayed();
    }
    policy.live(true)
}

fn launch(cluster: &mut Cluster, node: osproc::NodeId, script: Script) -> CheclSession {
    CheclSession::launch(
        cluster,
        node,
        cldriver::vendor::nimbus(),
        CheclConfig::default(),
        script,
    )
}

fn resumed_checksums(cluster: &mut Cluster, node: osproc::NodeId, path: &str) -> Vec<u64> {
    let mut s = CheclSession::restart_pipelined(
        cluster,
        node,
        path,
        cldriver::vendor::nimbus(),
        RestoreTarget::default(),
    )
    .expect("restart failed");
    s.run(cluster, StopCondition::Completion).unwrap();
    let sums = s.program.checksums.clone();
    s.kill(cluster);
    sums
}

/// At every live point of the policy lattice, a cut taken mid-run
/// restores bit-identically to its quiesce point even though every
/// buffer is overwritten while the drain is still in flight — and the
/// cut itself never perturbs the application's own results.
#[test]
fn live_restores_bit_identical_under_concurrent_mutation() {
    qcheck(
        "live_restores_bit_identical_under_concurrent_mutation",
        16,
        |g| {
            let sizes = arbitrary_sizes(g);
            let policy = arbitrary_live_policy(g);
            let (script, stop_create, stop_cut) = live_script(&sizes);
            // Golden: the same program, never checkpointed.
            let golden = {
                let mut cluster = Cluster::with_standard_nodes(1);
                let node = cluster.node_ids()[0];
                let mut s = launch(&mut cluster, node, script.clone());
                s.run(&mut cluster, StopCondition::Completion).unwrap();
                let sums = s.program.checksums.clone();
                s.kill(&mut cluster);
                sums
            };
            let mut cluster = Cluster::with_standard_nodes(1);
            let node = cluster.node_ids()[0];
            let mut s = launch(&mut cluster, node, script);
            s.run(&mut cluster, StopCondition::AfterOps(stop_create))
                .unwrap();
            // Base generation for the incremental lattice points.
            s.checkpoint(&mut cluster, "/nfs/live-base.ckpt").unwrap();
            s.run(&mut cluster, StopCondition::AfterOps(stop_cut))
                .unwrap();
            let outcome = s
                .checkpoint_with_policy(&mut cluster, "/nfs/live-cut.ckpt", &policy)
                .unwrap_or_else(|e| panic!("live snapshot failed under {policy:?}: {e}"));
            // The cut returns before the payload hits the disk.
            assert_eq!(
                outcome.report.write,
                simcore::SimDuration::ZERO,
                "a live cut must not charge the write phase to the stall"
            );
            // Concurrent mutation: every buffer is overwritten while
            // the drain races it.
            s.run(&mut cluster, StopCondition::Completion).unwrap();
            let own = s.program.checksums.clone();
            assert_eq!(own, golden, "the live cut perturbed the run ({policy:?})");
            let drained = s
                .complete_live_drain(&mut cluster)
                .unwrap_or_else(|e| panic!("drain failed under {policy:?}: {e}"))
                .expect("a live drain was parked");
            assert_eq!(drained.path, "/nfs/live-cut.ckpt");
            s.kill(&mut cluster);
            let sums = resumed_checksums(&mut cluster, node, &drained.path);
            assert_eq!(sums, golden, "live restore diverged under {policy:?}");
        },
    );
}

/// A fault that kills the background drain mid-flight must not orphan
/// the job: the seal fails loudly, the sealed previous generation
/// still restores the exact bytes of the undisturbed run, and the
/// half-written temp never shadows the committed path.
#[test]
fn failed_drain_leaves_previous_generation_restorable() {
    qcheck(
        "failed_drain_leaves_previous_generation_restorable",
        8,
        |g| {
            let sizes = arbitrary_sizes(g);
            let (script, _stop_create, stop_cut) = live_script(&sizes);
            let golden = {
                let mut cluster = Cluster::with_standard_nodes(1);
                let node = cluster.node_ids()[0];
                let mut s = launch(&mut cluster, node, script.clone());
                s.run(&mut cluster, StopCondition::Completion).unwrap();
                let sums = s.program.checksums.clone();
                s.kill(&mut cluster);
                sums
            };
            let mut cluster = Cluster::with_standard_nodes(1);
            let node = cluster.node_ids()[0];
            let mut s = launch(&mut cluster, node, script);
            s.run(&mut cluster, StopCondition::AfterOps(stop_cut))
                .unwrap();
            // Generation 1: a sealed live checkpoint (cut + full drain).
            let policy = CprPolicy::pipelined().live(true);
            s.checkpoint_with_policy(&mut cluster, "/nfs/live-gen1.ckpt", &policy)
                .unwrap();
            s.complete_live_drain(&mut cluster)
                .unwrap()
                .expect("generation 1 drain parked");
            // Generation 2 cuts, then its drain dies on the temp file
            // (hard failure or short write, fault-plan-seeded).
            s.checkpoint_with_policy(&mut cluster, "/nfs/live-gen2.ckpt", &policy)
                .unwrap();
            s.run(&mut cluster, StopCondition::Completion).unwrap();
            let seed = g.u64();
            let plan = if g.bool() {
                FaultPlan::new(seed).fail_next_writes(1)
            } else {
                FaultPlan::new(seed).short_next_writes(1)
            }
            .only_paths_containing("/nfs/live-gen2");
            cluster.install_faults(plan);
            let failed = s.complete_live_drain(&mut cluster);
            assert!(failed.is_err(), "mid-drain fault must fail the seal");
            s.kill(&mut cluster);
            // The committed path was never created by the aborted drain…
            assert!(
                cluster.peek_file_on(node, "/nfs/live-gen2.ckpt").is_none(),
                "an aborted drain must not publish its target path"
            );
            // …and generation 1 still restores the undisturbed bytes.
            let sums = resumed_checksums(&mut cluster, node, "/nfs/live-gen1.ckpt");
            assert_eq!(
                sums, golden,
                "previous generation diverged after failed drain"
            );
        },
    );
}

/// The live mode is a pure stall optimisation: for the same session
/// state, the cut's interruption (quiesce + stamping + every COW fork
/// the drain later charges) never exceeds the stop-the-world
/// sequential snapshot's total.
#[test]
fn live_stall_never_exceeds_sequential_total() {
    qcheck("live_stall_never_exceeds_sequential_total", 16, |g| {
        let sizes = arbitrary_sizes(g);
        let (script, _stop_create, stop_cut) = live_script(&sizes);
        let mut cluster = Cluster::with_standard_nodes(1);
        let node = cluster.node_ids()[0];
        let mut s = launch(&mut cluster, node, script);
        s.run(&mut cluster, StopCondition::AfterOps(stop_cut))
            .unwrap();
        let seq = s
            .checkpoint_with_policy(
                &mut cluster,
                "/local/live-seq.ckpt",
                &CprPolicy::sequential(),
            )
            .unwrap();
        s.checkpoint_with_policy(
            &mut cluster,
            "/local/live-live.ckpt",
            &CprPolicy::pipelined().live(true),
        )
        .unwrap();
        // Mutate everything while the drain runs, then seal.
        s.run(&mut cluster, StopCondition::Completion).unwrap();
        let drained = s
            .complete_live_drain(&mut cluster)
            .unwrap()
            .expect("a live drain was parked");
        let stall = drained.stall.total() + drained.fork_stall;
        assert!(
            stall <= seq.report.total(),
            "live stall {:?} exceeded sequential total {:?} on {} buffers",
            stall,
            seq.report.total(),
            sizes.len()
        );
        s.kill(&mut cluster);
    });
}
