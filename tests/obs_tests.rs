//! Properties of the observability plane ([`simcore::obs`] +
//! [`checl::obs`]): the ledger is a pure observer (bit-exact under
//! seeded replay, with and without fault plans), the provenance graph
//! verifies against on-disk bytes at every policy lattice point and
//! fails loudly on out-of-band corruption, the SLO ledger reproduces
//! the supervisor's accounting exactly, and percentile digests merge
//! order-insensitively.

use checl::obs::{reconcile_faults, verify_all, verify_lineage, LineageError};
use checl::supervisor::{SupervisorError, SupervisorReport};
use checl::{CheclConfig, CprPolicy, IntervalPolicy, RecoveryPolicy, SnapshotFormat};
use checl_repro as _;
use clspec::types::DeviceType;
use osproc::{Cluster, FaultPlan, NodeId};
use simcore::obs::{self, Ledger, ProvenanceGraph, SloSummary};
use simcore::qcheck::{qcheck, Gen};
use simcore::telemetry::Histogram;
use simcore::{SimDuration, SimTime};
use workloads::{
    run_supervised, workload_by_name, BufInit, CheclSession, Op, Reg, Script, StopCondition,
    SuperviseSetup, WorkloadCfg,
};

const KIB: u64 = 1 << 10;

// ---------------------------------------------------------------------
// Shared fixtures (mirrors tests/engine_tests.rs and supervisor_tests)
// ---------------------------------------------------------------------

/// Single-device script with a clean half and a dirty half, so
/// incremental policies produce a real base edge.
fn dirty_script(sizes: &[u64]) -> (Script, u64, u64) {
    let mut ops = vec![
        Op::GetPlatform { out: 0 },
        Op::GetDevices {
            platform: 0,
            dtype: DeviceType::Gpu,
            out: 1,
            count: 1,
        },
        Op::CreateContext { device: 1, out: 2 },
        Op::CreateQueue {
            context: 2,
            device: 1,
            out: 3,
        },
    ];
    let buf0: Reg = 4;
    for (i, &size) in sizes.iter().enumerate() {
        ops.push(Op::CreateBuffer {
            context: 2,
            flags: clspec::types::MemFlags::READ_WRITE,
            size,
            init: Some(BufInit::RandomU32 {
                seed: 0x0b5 + i as u64,
            }),
            out: buf0 + i as Reg,
        });
    }
    let stop_create = ops.len() as u64;
    for (i, &size) in sizes.iter().enumerate().take(sizes.len().div_ceil(2)) {
        ops.push(Op::WriteBuffer {
            queue: 3,
            buf: buf0 + i as Reg,
            size,
            init: BufInit::RandomU32 {
                seed: 0x0b5d + i as u64,
            },
        });
    }
    let stop_dirty = ops.len() as u64;
    for (i, &size) in sizes.iter().enumerate() {
        ops.push(Op::ReadBufferChecksum {
            queue: 3,
            buf: buf0 + i as Reg,
            size,
        });
    }
    (Script { ops }, stop_create, stop_dirty)
}

/// One point of the policy lattice: format × incremental × pipelined ×
/// recovery × trigger.
fn arbitrary_policy(g: &mut Gen) -> CprPolicy {
    let mut policy = CprPolicy {
        format: if g.bool() {
            SnapshotFormat::Streamed
        } else {
            SnapshotFormat::Sequential
        },
        ..CprPolicy::default()
    };
    policy = policy.incremental(g.bool());
    if g.bool() {
        policy.pipelined = true;
    }
    if g.bool() {
        policy = policy.with_recovery(RecoveryPolicy {
            retry: blcr::RetryPolicy {
                verify: g.bool(),
                ..blcr::RetryPolicy::default()
            },
            fallback_targets: Vec::new(),
        });
    }
    policy
}

fn quick() -> WorkloadCfg {
    WorkloadCfg {
        scale: 1.0 / 64.0,
        ..WorkloadCfg::default()
    }
}

fn launch_on(cluster: &mut Cluster, node: NodeId) -> CheclSession {
    let w = workload_by_name("oclVectorAdd").unwrap();
    CheclSession::launch(
        cluster,
        node,
        cldriver::vendor::nimbus(),
        checl::CheclConfig::default(),
        w.script(&quick()),
    )
}

fn supervise_setup(spares: Vec<NodeId>) -> SuperviseSetup {
    let mut setup = SuperviseSetup::new(cldriver::vendor::nimbus(), "/local/obs", "/nfs/obs");
    setup.spares = spares;
    setup.config.min_interval = SimDuration::from_millis(5);
    setup.config.max_interval = SimDuration::from_secs(2);
    setup.config.initial_mtbf = SimDuration::from_millis(200);
    setup.config.max_failures = 24;
    setup.policy = CprPolicy::sequential()
        .with_interval(IntervalPolicy::DalyAdaptive)
        .with_recovery(RecoveryPolicy {
            retry: blcr::RetryPolicy::default(),
            fallback_targets: Vec::new(),
        });
    setup
}

/// Run the supervised workload under `plan` (if any) with the ledger
/// recording; returns the ledger and the report when it completed.
fn recorded_supervised_run(plan: Option<FaultPlan>) -> (Ledger, Option<SupervisorReport>) {
    let mut cluster = Cluster::with_standard_nodes(3);
    let nodes = cluster.node_ids();
    let session = launch_on(&mut cluster, nodes[0]);
    if let Some(plan) = plan {
        cluster.install_faults(plan);
    }
    let setup = supervise_setup(vec![nodes[1], nodes[2]]);
    obs::start_recording();
    let report = match run_supervised(&mut cluster, session, &setup) {
        Ok((_s, report)) => Some(report),
        Err(SupervisorError::Escalated { .. }) => None,
    };
    (obs::stop_recording().unwrap(), report)
}

/// A recurring proxy-death plan in the regime the supervisor rides out.
fn arbitrary_proxy_plan(g: &mut Gen) -> FaultPlan {
    FaultPlan::new(g.u64()).with_proxy_death_rate(SimDuration::from_millis(g.range(40, 200)))
}

// ---------------------------------------------------------------------
// Ledger determinism
// ---------------------------------------------------------------------

/// The ledger is part of the deterministic state: two seeded replays of
/// the same fault plan export byte-identical JSONL — and so does a
/// fault-free pair.
#[test]
fn ledger_bit_exact_under_seed_replay() {
    qcheck("ledger_bit_exact_under_seed_replay", 6, |g| {
        let plan = g.bool().then(|| arbitrary_proxy_plan(g));
        let (first, _) = recorded_supervised_run(plan.clone());
        let (second, _) = recorded_supervised_run(plan);
        let a = first.to_jsonl();
        assert!(!a.is_empty(), "a supervised run always commits gen 0");
        assert_eq!(a, second.to_jsonl(), "replay diverged");
        // And the export round-trips losslessly.
        let parsed = Ledger::from_jsonl(&a).unwrap();
        assert_eq!(parsed.to_jsonl(), a);
    });
}

// ---------------------------------------------------------------------
// Provenance verification across the policy lattice
// ---------------------------------------------------------------------

/// Every policy lattice point commits dumps whose recorded lineage
/// verifies against the bytes on disk — and an out-of-band corruption
/// of any file in the chain fails the walk loudly.
#[test]
fn lineage_verifies_at_every_policy_point() {
    qcheck("lineage_verifies_at_every_policy_point", 12, |g| {
        let sizes: Vec<u64> = (0..g.usize_in(2, 5))
            .map(|_| g.range(64, 512) * KIB)
            .collect();
        let policy = arbitrary_policy(g);
        let (script, stop_create, stop_dirty) = dirty_script(&sizes);
        let mut cluster = Cluster::with_standard_nodes(1);
        let node = cluster.node_ids()[0];
        let mut s = CheclSession::launch(
            &mut cluster,
            node,
            cldriver::vendor::nimbus(),
            CheclConfig::default(),
            script,
        );
        s.run(&mut cluster, StopCondition::AfterOps(stop_create))
            .unwrap();
        obs::start_recording();
        s.checkpoint(&mut cluster, "/nfs/obs-base.ckpt").unwrap();
        s.run(&mut cluster, StopCondition::AfterOps(stop_dirty))
            .unwrap();
        let outcome = s
            .checkpoint_with_policy(&mut cluster, "/nfs/obs-head.ckpt", &policy)
            .unwrap_or_else(|e| panic!("snapshot failed under {policy:?}: {e}"));
        let ledger = obs::stop_recording().unwrap();
        let graph = ProvenanceGraph::from_ledger(&ledger);

        let head = graph.node(&outcome.path).expect("head has provenance");
        assert_eq!(head.policy, policy.label());
        let report = verify_lineage(&cluster, node, &graph, &outcome.path)
            .unwrap_or_else(|e| panic!("lineage failed under {policy:?}: {e}"));
        assert!(report.bytes_verified > 0);
        if policy.incremental {
            assert!(
                report.checked.contains(&"/nfs/obs-base.ckpt".to_string()),
                "incremental head must lean on the base generation"
            );
        }
        verify_all(&cluster, node, &graph).unwrap();

        // Corrupt one lineage file behind everyone's back: the walk
        // must fail with a typed, path-naming error.
        let victim = report.checked[g.usize_in(0, report.checked.len())].clone();
        let mut bytes = cluster.peek_file_on(node, &victim).unwrap().to_vec();
        // Flip inside the leading framed region — the sequential
        // format's trailing zero padding is outside any checksum.
        let flip = g.usize_in(8, bytes.len().min(1024));
        bytes[flip] ^= 0xff;
        cluster.write_file(s.pid, &victim, bytes).unwrap();
        let err = verify_lineage(&cluster, node, &graph, &outcome.path)
            .expect_err("corruption must not verify");
        match &err {
            LineageError::Corrupt { path, .. } | LineageError::ChecksumMismatch { path, .. } => {
                assert_eq!(path, &victim)
            }
            other => panic!("unexpected lineage error {other}"),
        }
        s.kill(&mut cluster);
    });
}

// ---------------------------------------------------------------------
// SLO accounting reconciles with the supervisor's books
// ---------------------------------------------------------------------

/// The SLO summary derived from the ledger alone reproduces the
/// supervisor's accounting *exactly* — downtime, wasted work,
/// checkpoint overhead, counts — and every injected process fault
/// reconciles 1:1 with an incident.
#[test]
fn slo_ledger_matches_supervisor_report() {
    qcheck("slo_ledger_matches_supervisor_report", 6, |g| {
        let plan = arbitrary_proxy_plan(g);
        let (ledger, report) = recorded_supervised_run(Some(plan));
        let Some(report) = report else {
            return; // escalated: determinism is covered above
        };
        let slo = SloSummary::from_ledger(&ledger, report.wall_clock);
        assert_eq!(slo.downtime, report.downtime, "downtime must be exact");
        assert_eq!(slo.wasted, report.wasted_work, "wasted work must be exact");
        assert_eq!(
            slo.overhead, report.checkpoint_overhead,
            "checkpoint overhead must be exact"
        );
        assert_eq!(slo.checkpoints, report.checkpoints as u64);
        assert_eq!(slo.incidents, report.failures as u64);
        assert_eq!(slo.repairs, report.repairs as u64);
        assert_eq!(slo.retunes, report.interval_history.len() as u64 - 1);
        assert!(slo.availability() <= 1.0 && slo.availability() > 0.0);

        let rec = reconcile_faults(&ledger);
        assert!(
            rec.unmatched_incidents.is_empty(),
            "incident with no fault behind it: {:?}",
            rec.unmatched_incidents
        );
        // A fault may land after the program's last op (nothing left to
        // disturb), so unmatched *faults* at the very tail are legal;
        // every incident, though, traces back to an injected fault.
        assert_eq!(rec.matched.len(), report.failures as usize);
    });
}

// ---------------------------------------------------------------------
// Digest merging
// ---------------------------------------------------------------------

/// `Histogram::merge` is order-insensitive: any shuffle of parts
/// produces the same digest, identical to the one-pass histogram, and
/// quantiles agree.
#[test]
fn histogram_merge_is_order_insensitive() {
    qcheck("histogram_merge_is_order_insensitive", 32, |g| {
        let parts: Vec<Vec<u64>> = (0..g.usize_in(1, 5))
            .map(|_| {
                (0..g.usize_in(0, 40))
                    .map(|_| g.range(0, 1 << 20))
                    .collect()
            })
            .collect();
        let mut whole = Histogram::default();
        for v in parts.iter().flatten() {
            whole.observe(*v);
        }
        let digests: Vec<Histogram> = parts
            .iter()
            .map(|p| {
                let mut h = Histogram::default();
                for &v in p {
                    h.observe(v);
                }
                h
            })
            .collect();
        let mut forward = Histogram::default();
        for d in &digests {
            forward.merge(d);
        }
        let mut backward = Histogram::default();
        for d in digests.iter().rev() {
            backward.merge(d);
        }
        assert_eq!(forward, whole);
        assert_eq!(backward, whole);
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(forward.percentile(p), backward.percentile(p));
        }
        if parts.iter().all(|p| p.is_empty()) {
            assert_eq!(forward.percentile(0.5), None);
            assert_eq!(forward.mean(), 0.0);
        } else {
            let lo = *parts.iter().flatten().min().unwrap();
            let hi = *parts.iter().flatten().max().unwrap();
            let p50 = forward.percentile(0.5).unwrap();
            assert!(p50 >= lo && p50 <= hi, "p50 {p50} outside [{lo}, {hi}]");
        }
    });
}

// ---------------------------------------------------------------------
// Ledger query plumbing on a real run
// ---------------------------------------------------------------------

/// Window/kind/component queries agree with a manual scan, and events
/// arrive in virtual-time order with stable IDs.
#[test]
fn ledger_queries_are_consistent() {
    let plan = FaultPlan::new(7).with_proxy_death_rate(SimDuration::from_millis(60));
    let (ledger, _) = recorded_supervised_run(Some(plan));
    assert!(!ledger.is_empty());
    let sorted = ledger.sorted();
    for pair in sorted.windows(2) {
        assert!(
            (pair[0].t, pair[0].id) <= (pair[1].t, pair[1].id),
            "sorted() must order by (t, id)"
        );
    }
    let mid = sorted[sorted.len() / 2].t;
    let early = ledger.query(None, None, Some((SimTime::ZERO, mid)));
    assert!(early.iter().all(|e| e.t <= mid));
    let ckpts = ledger.query(Some("checkpoint_committed"), None, None);
    assert!(!ckpts.is_empty());
    let manual = ledger
        .events()
        .iter()
        .filter(|e| e.kind.name() == "checkpoint_committed")
        .count();
    assert_eq!(ckpts.len(), manual);
    // Digest over commit costs: quantiles are within observed range.
    let costs = ledger.digest(|e| match &e.kind {
        obs::EventKind::CheckpointCommitted { cost_ns, .. } => Some(*cost_ns),
        _ => None,
    });
    assert_eq!(costs.count, ckpts.len() as u64);
    let p99 = costs.percentile(0.99).unwrap();
    assert!(p99 >= costs.min && p99 <= costs.max);
}
