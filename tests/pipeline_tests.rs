//! Property tests for the overlapped (pipelined) checkpoint engine:
//! pipelining never costs wall-clock versus the sequential §III-C
//! procedure, streamed files restart to bit-identical sessions, the
//! channel scheduler never double-books a resource, and a disk fault
//! mid-stream leaves the previous checkpoint generation restorable.

use checl_repro as _;
use osproc::{Cluster, FaultPlan};
use simcore::channels::ChannelSet;
use simcore::qcheck::{qcheck, Gen};
use simcore::{SimDuration, SimTime};
use workloads::{BufInit, CheclSession, Op, Reg, Script, StopCondition};

const KIB: u64 = 1 << 10;

/// A single-device script with `bufs` seeded buffers of the given
/// sizes, a checkpoint stop point, then a checksum read per buffer.
fn buffer_script(sizes: &[u64]) -> (Script, u64) {
    let mut ops = vec![
        Op::GetPlatform { out: 0 },
        Op::GetDevices {
            platform: 0,
            dtype: clspec::types::DeviceType::Gpu,
            out: 1,
            count: 1,
        },
        Op::CreateContext { device: 1, out: 2 },
        Op::CreateQueue {
            context: 2,
            device: 1,
            out: 3,
        },
    ];
    for (i, &size) in sizes.iter().enumerate() {
        ops.push(Op::CreateBuffer {
            context: 2,
            flags: clspec::types::MemFlags::READ_WRITE,
            size,
            init: Some(BufInit::RandomU32 {
                seed: 0xace0 + i as u64,
            }),
            out: 4 + i as Reg,
        });
    }
    let stop = ops.len() as u64;
    for (i, &size) in sizes.iter().enumerate() {
        ops.push(Op::ReadBufferChecksum {
            queue: 3,
            buf: 4 + i as Reg,
            size,
        });
    }
    (Script { ops }, stop)
}

/// Draw 2–6 buffer sizes of at least 512 KiB (the regime the pipelined
/// engine is built for — overlap must amortise its fixed framing and
/// commit overhead).
fn arbitrary_sizes(g: &mut Gen) -> Vec<u64> {
    (0..g.usize_in(2, 6))
        .map(|_| g.range(512 * KIB, 4096 * KIB))
        .collect()
}

/// Launch, run to the stop point, and hand back session + cluster.
fn session_at_stop(sizes: &[u64]) -> (Cluster, CheclSession, u64) {
    let (script, stop) = buffer_script(sizes);
    let mut cluster = Cluster::with_standard_nodes(1);
    let node = cluster.node_ids()[0];
    let s = CheclSession::launch(
        &mut cluster,
        node,
        cldriver::vendor::nimbus(),
        checl::CheclConfig::default(),
        script,
    );
    (cluster, s, stop)
}

/// (a) On every seeded multi-buffer workload the pipelined engine's
/// wall-clock never exceeds the sequential engine's.
#[test]
fn pipelined_never_slower_than_sequential() {
    qcheck("pipelined_never_slower", 30, |g| {
        let sizes = arbitrary_sizes(g);
        let (mut cluster, mut s, stop) = session_at_stop(&sizes);
        s.run(&mut cluster, StopCondition::AfterOps(stop)).unwrap();
        let seq = s.checkpoint(&mut cluster, "/local/q-seq.ckpt").unwrap();
        let pipe = s
            .checkpoint_pipelined(&mut cluster, "/local/q-pipe.ckpt")
            .unwrap();
        assert!(
            pipe.total() <= seq.total(),
            "pipelined {:?} > sequential {:?} on sizes {sizes:?}",
            pipe.total(),
            seq.total()
        );
        assert!(pipe.overlap_saved > SimDuration::ZERO);
        // The serialized-equivalent accounting says the same thing:
        // busy time is conserved, only the schedule differs.
        assert_eq!(pipe.total() + pipe.overlap_saved, pipe.serialized_total());
    });
}

/// (b) A pipelined checkpoint file restarts to a session whose replayed
/// checksums are identical to one restarted from a sequential dump of
/// the same moment.
#[test]
fn pipelined_file_restarts_bit_identical() {
    qcheck("pipelined_restart_identical", 20, |g| {
        let sizes = arbitrary_sizes(g);
        let (mut cluster, mut s, stop) = session_at_stop(&sizes);
        let node = cluster.node_ids()[0];
        s.run(&mut cluster, StopCondition::AfterOps(stop)).unwrap();
        s.checkpoint(&mut cluster, "/local/q-seq.ckpt").unwrap();
        s.checkpoint_pipelined(&mut cluster, "/local/q-pipe.ckpt")
            .unwrap();
        s.kill(&mut cluster);

        let mut from_seq = CheclSession::restart(
            &mut cluster,
            node,
            "/local/q-seq.ckpt",
            cldriver::vendor::nimbus(),
            checl::RestoreTarget::default(),
        )
        .unwrap();
        from_seq
            .run(&mut cluster, StopCondition::Completion)
            .unwrap();
        let mut from_pipe = CheclSession::restart_pipelined(
            &mut cluster,
            node,
            "/local/q-pipe.ckpt",
            cldriver::vendor::nimbus(),
            checl::RestoreTarget::default(),
        )
        .unwrap();
        from_pipe
            .run(&mut cluster, StopCondition::Completion)
            .unwrap();
        assert_eq!(
            from_seq.program.checksums, from_pipe.program.checksums,
            "file kinds diverged on sizes {sizes:?}"
        );
        from_seq.kill(&mut cluster);
        from_pipe.kill(&mut cluster);
    });
}

/// (c) The channel scheduler never overlaps two placements on the same
/// channel, for any interleaving of ready times and costs.
#[test]
fn same_channel_work_never_overlaps() {
    qcheck("channel_no_overlap", 200, |g| {
        let origin = SimTime::ZERO + SimDuration::from_nanos(g.range(0, 1_000_000));
        let mut set = ChannelSet::new(origin);
        let names = ["pcie.dev0", "pcie.dev1", "disk.local", "ipc"];
        let mut placed = Vec::new();
        for i in 0..g.usize_in(2, 40) {
            let ch = set.channel(names[g.usize_in(0, names.len() - 1)]);
            let ready = origin + SimDuration::from_nanos(g.range(0, 5_000_000));
            let cost = SimDuration::from_nanos(g.range(0, 2_000_000));
            placed.push(set.place(ch, ready, cost, &format!("op{i}")));
        }
        for (i, a) in set.placements().iter().enumerate() {
            for b in &set.placements()[i + 1..] {
                if a.channel == b.channel {
                    // Two intervals on one channel may touch but never
                    // intersect.
                    assert!(
                        a.end <= b.start || b.end <= a.start,
                        "overlap on shared channel: {a:?} vs {b:?}"
                    );
                }
            }
        }
        // `overlap_saved` is clamped: idle gaps (late ready times) can
        // make wall-clock exceed busy time, but never make "saved"
        // negative.
        assert!(set.total_busy() >= set.overlap_saved());
        assert_eq!(placed.len(), set.placements().len());
    });
}

/// (d) A disk fault striking mid-stream aborts the pipelined checkpoint
/// but leaves the previous generation fully restorable — the tmp+rename
/// commit point is unchanged from the sequential engine.
#[test]
fn mid_stream_fault_leaves_previous_generation_restorable() {
    qcheck("mid_stream_fault_rollback", 20, |g| {
        let sizes = arbitrary_sizes(g);
        let (mut cluster, mut s, stop) = session_at_stop(&sizes);
        let node = cluster.node_ids()[0];
        s.run(&mut cluster, StopCondition::AfterOps(stop)).unwrap();
        // Generation 0 commits before faults arm; alternate its format
        // so rollback is proven onto both file kinds.
        let gen0_pipelined = g.bool();
        if gen0_pipelined {
            s.checkpoint_pipelined(&mut cluster, "/local/q-gen0.ckpt")
        } else {
            s.checkpoint(&mut cluster, "/local/q-gen0.ckpt")
        }
        .unwrap();

        // Arm detectable write faults (hard failures and short writes —
        // both are caught in-line, failures by the append itself and
        // short writes by the stream writer's size probe). They can
        // strike the header frame, any chunk append, or the sealing
        // trailer.
        let mut plan = FaultPlan::new(g.u64())
            .with_write_fail_prob(g.f32_in(0.0, 0.5) as f64)
            .with_short_write_prob(g.f32_in(0.0, 0.4) as f64);
        if g.bool() {
            plan = plan.fail_next_writes(1);
        }
        cluster.install_faults(plan);
        let res = s.checkpoint_pipelined(&mut cluster, "/local/q-gen1.ckpt");
        cluster.take_faults();
        // Either the stream committed and is itself restorable, or the
        // abort left no gen-1 file — never a torn half-commit.
        let restore_from = if res.is_ok() {
            assert!(cluster.file_size_on(node, "/local/q-gen1.ckpt").is_some());
            "/local/q-gen1.ckpt"
        } else {
            assert!(
                cluster.file_size_on(node, "/local/q-gen1.ckpt").is_none(),
                "aborted checkpoint must not leave a committed gen-1 file"
            );
            "/local/q-gen0.ckpt"
        };
        s.kill(&mut cluster);

        let mut revived = CheclSession::restart_pipelined(
            &mut cluster,
            node,
            restore_from,
            cldriver::vendor::nimbus(),
            checl::RestoreTarget::default(),
        )
        .unwrap();
        revived
            .run(&mut cluster, StopCondition::Completion)
            .unwrap();
        assert_eq!(
            revived.program.checksums.len(),
            sizes.len(),
            "revived run must replay every checksum read"
        );
        revived.kill(&mut cluster);
    });
}
