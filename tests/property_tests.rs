//! Property-based tests over the core invariants.

use checl_repro as _;
use proptest::prelude::*;
use simcore::codec::Codec;

// ---------------------------------------------------------------------
// Codec invariants
// ---------------------------------------------------------------------

proptest! {
    /// Any MemImage round-trips through the checkpoint codec.
    #[test]
    fn memimage_roundtrip(segments in proptest::collection::btree_map(
        "[a-z]{1,12}", proptest::collection::vec(any::<u8>(), 0..512), 0..6)
    ) {
        let mut img = osproc::MemImage::new();
        for (name, data) in &segments {
            img.put(name, data.clone());
        }
        let back = osproc::MemImage::from_bytes(&img.to_bytes()).unwrap();
        prop_assert_eq!(back, img);
    }

    /// Any checkpoint file round-trips; any single-byte corruption of
    /// the frame region is detected (never silently accepted as
    /// different data).
    #[test]
    fn checkpoint_file_integrity(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        pid in any::<u32>(),
        flip in any::<u8>(),
    ) {
        let mut img = osproc::MemImage::new();
        img.put("seg", data);
        let ck = blcr::CheckpointFile {
            source_pid: pid,
            source_host: "pc0".into(),
            image: img,
        };
        let bytes = ck.to_file_bytes();
        prop_assert_eq!(blcr::CheckpointFile::from_file_bytes(&bytes).unwrap(), ck.clone());

        // Corrupt one byte inside the frame (skip the trailing zero
        // padding, which is not covered by the checksum).
        let frame_len = 8 + u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
        let pos = 8 + (flip as usize % (frame_len - 8));
        let mut bad = bytes.clone();
        bad[pos] ^= 0x55;
        match blcr::CheckpointFile::from_file_bytes(&bad) {
            Err(_) => {}
            Ok(parsed) => prop_assert_eq!(parsed, ck),
        }
    }

    /// The generic codec rejects truncation of any encoded stream
    /// rather than panicking or looping.
    #[test]
    fn truncation_always_errors(
        values in proptest::collection::vec(any::<u64>(), 1..20),
        cut in any::<u16>(),
    ) {
        let bytes = values.to_bytes();
        let cut = (cut as usize) % bytes.len();
        if cut < bytes.len() {
            prop_assert!(Vec::<u64>::from_bytes(&bytes[..cut]).is_err());
        }
    }
}

// ---------------------------------------------------------------------
// Signature parser invariants
// ---------------------------------------------------------------------

fn arb_param() -> impl Strategy<Value = (String, clspec::sig::ParamKind)> {
    use clspec::sig::ParamKind;
    prop_oneof![
        "[a-z][a-z0-9_]{0,8}".prop_map(|n| {
            (format!("__global float* {n}"), ParamKind::GlobalPtr)
        }),
        "[a-z][a-z0-9_]{0,8}".prop_map(|n| {
            (format!("__constant float* {n}"), ParamKind::ConstantPtr)
        }),
        "[a-z][a-z0-9_]{0,8}".prop_map(|n| {
            (format!("__local float* {n}"), ParamKind::LocalPtr)
        }),
        "[a-z][a-z0-9_]{0,8}".prop_map(|n| (format!("image2d_t {n}"), ParamKind::Image2d)),
        "[a-z][a-z0-9_]{0,8}".prop_map(|n| (format!("sampler_t {n}"), ParamKind::Sampler)),
        "[a-z][a-z0-9_]{0,8}".prop_map(|n| {
            (format!("const uint {n}"), ParamKind::Scalar("uint".into()))
        }),
        "[a-z][a-z0-9_]{0,8}".prop_map(|n| {
            (format!("float {n}"), ParamKind::Scalar("float".into()))
        }),
    ]
}

proptest! {
    /// For any synthesized kernel declaration, the parser recovers the
    /// kernel name, arity and per-parameter classification exactly.
    #[test]
    fn parser_recovers_synthesized_signatures(
        kname in "[a-z][a-z0-9_]{0,12}",
        params in proptest::collection::vec(arb_param(), 0..8),
    ) {
        let list: Vec<String> = params.iter().map(|(d, _)| d.clone()).collect();
        let src = format!(
            "// synthesized\n__kernel void {kname}({}) {{ /* body */ }}\n",
            list.join(", ")
        );
        let sigs = clspec::sig::parse_kernel_sigs(&src).unwrap();
        prop_assert_eq!(sigs.len(), 1);
        prop_assert_eq!(&sigs[0].name, &kname);
        prop_assert_eq!(sigs[0].params.len(), params.len());
        for (got, (_, want)) in sigs[0].params.iter().zip(&params) {
            prop_assert_eq!(&got.kind, want);
        }
        // And the signature round-trips through the codec (it is part
        // of the CheCL database).
        let sig = sigs[0].clone();
        prop_assert_eq!(
            clspec::sig::KernelSig::from_bytes(&sig.to_bytes()).unwrap(),
            sig
        );
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total_on_garbage(src in ".{0,300}") {
        let _ = clspec::sig::parse_kernel_sigs(&src);
        let _ = clspec::sig::parse_struct_defs(&src);
    }
}

// ---------------------------------------------------------------------
// Kernel engine invariants
// ---------------------------------------------------------------------

fn u32s_to_bytes(v: &[u32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn bytes_to_u32s(b: &[u8]) -> Vec<u32> {
    b.chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

proptest! {
    /// radix_sort agrees with the standard library sort on any input.
    #[test]
    fn radix_sort_correct(mut keys in proptest::collection::vec(any::<u32>(), 1..300)) {
        let n = keys.len() as u32;
        let mut args = vec![
            clkernels::ArgData::Buffer(u32s_to_bytes(&keys)),
            clkernels::ArgData::Scalar(n.to_le_bytes().to_vec()),
        ];
        clkernels::execute("radix_sort", [n as u64, 1, 1], &mut args).unwrap();
        keys.sort_unstable();
        prop_assert_eq!(bytes_to_u32s(args[0].buffer().unwrap()), keys);
    }

    /// The full bitonic schedule sorts any power-of-two input.
    #[test]
    fn bitonic_schedule_correct(seed in any::<u64>(), log_n in 2u32..9) {
        let n = 1usize << log_n;
        let mut rng = simcore::SplitMix64::new(seed);
        let keys: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
        let mut buf = clkernels::ArgData::Buffer(u32s_to_bytes(&keys));
        for stage in 0..log_n {
            for pass in (0..=stage).rev() {
                let mut args = vec![
                    buf.clone(),
                    clkernels::ArgData::Scalar((n as u32).to_le_bytes().to_vec()),
                    clkernels::ArgData::Scalar(stage.to_le_bytes().to_vec()),
                    clkernels::ArgData::Scalar(pass.to_le_bytes().to_vec()),
                ];
                clkernels::execute("bitonic_sort", [n as u64, 1, 1], &mut args).unwrap();
                buf = args.swap_remove(0);
            }
        }
        let mut expected = keys;
        expected.sort_unstable();
        prop_assert_eq!(bytes_to_u32s(buf.buffer().unwrap()), expected);
    }

    /// Exclusive scan and reduction are consistent:
    /// scan[n-1] + input[n-1] == reduce(input).
    #[test]
    fn scan_reduce_consistent(values in proptest::collection::vec(0.0f32..10.0, 1..200)) {
        let n = values.len() as u32;
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut scan_args = vec![
            clkernels::ArgData::Buffer(bytes.clone()),
            clkernels::ArgData::Buffer(vec![0u8; bytes.len()]),
            clkernels::ArgData::Local(64),
            clkernels::ArgData::Scalar(n.to_le_bytes().to_vec()),
        ];
        clkernels::execute("scan_exclusive", [n as u64, 1, 1], &mut scan_args).unwrap();
        let mut red_args = vec![
            clkernels::ArgData::Buffer(bytes),
            clkernels::ArgData::Buffer(vec![0u8; 4]),
            clkernels::ArgData::Local(64),
            clkernels::ArgData::Scalar(n.to_le_bytes().to_vec()),
        ];
        clkernels::execute("reduce_sum", [n as u64, 1, 1], &mut red_args).unwrap();

        let scan_out = scan_args[1].buffer().unwrap();
        let last_scan = f32::from_le_bytes(
            scan_out[(n as usize - 1) * 4..(n as usize) * 4].try_into().unwrap(),
        );
        let total = f32::from_le_bytes(red_args[1].buffer().unwrap()[..4].try_into().unwrap());
        let expected = last_scan + values[values.len() - 1];
        prop_assert!((total - expected).abs() <= total.abs().max(1.0) * 1e-4);
    }
}

// ---------------------------------------------------------------------
// CheCL end-to-end invariant
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Arbitrary buffer contents survive checkpoint + cross-vendor
    /// restart bit-exactly, whatever the bytes are.
    #[test]
    fn arbitrary_buffers_survive_cpr(data in proptest::collection::vec(any::<u8>(), 64..512)) {
        use checl::{CheclConfig, RestoreTarget};
        use clspec::types::{DeviceType, MemFlags, QueueProps};
        use clspec::Ocl;
        use osproc::Cluster;

        let size = (data.len() & !3) as u64;
        let data = data[..size as usize].to_vec();

        let mut cluster = Cluster::with_standard_nodes(2);
        let nodes = cluster.node_ids();
        let app = cluster.spawn(nodes[0]);
        let mut booted = checl::boot_checl(
            &mut cluster, app, cldriver::vendor::nimbus(), CheclConfig::default());
        let mut now = cluster.process(app).clock;
        let mut ocl = Ocl::new(&mut booted.lib, &mut now);
        let p = ocl.get_platform_ids().unwrap();
        let d = ocl.get_device_ids(p[0], DeviceType::Gpu).unwrap();
        let ctx = ocl.create_context(&d).unwrap();
        // The application keeps this CheCL queue handle across the
        // checkpoint — handles are stable, only the wrapped vendor
        // handles change.
        let q = ocl.create_command_queue(ctx, d[0], QueueProps::default()).unwrap();
        let buf = ocl
            .create_buffer(ctx, MemFlags::READ_WRITE | MemFlags::COPY_HOST_PTR, size, Some(data.clone()))
            .unwrap();
        let _ = ocl;
        cluster.process_mut(app).clock = now;

        checl::checkpoint_checl(&mut booted.lib, &mut cluster, app, "/nfs/prop.ckpt").unwrap();
        checl::boot::kill_proxy(&mut cluster, &mut booted.lib);
        cluster.kill(app);

        let (mut lib2, pid2, _) = checl::cpr::restart_checl_process(
            &mut cluster,
            nodes[1],
            "/nfs/prop.ckpt",
            cldriver::vendor::crimson(),
            RestoreTarget::default(),
        )
        .unwrap();
        let mut now2 = cluster.process(pid2).clock;
        let mut ocl2 = Ocl::new(&mut lib2, &mut now2);
        let (back, _) = ocl2.enqueue_read_buffer(q, buf, true, 0, size, &[]).unwrap();
        prop_assert_eq!(back, data);
    }
}
