//! Property-based tests over the core invariants, driven by the
//! dependency-free `simcore::qcheck` harness.

use checl_repro as _;
use simcore::codec::Codec;
use simcore::qcheck::{qcheck, Gen};

// ---------------------------------------------------------------------
// Codec invariants
// ---------------------------------------------------------------------

/// Any MemImage round-trips through the checkpoint codec.
#[test]
fn memimage_roundtrip() {
    qcheck("memimage_roundtrip", 64, |g| {
        let mut img = osproc::MemImage::new();
        for _ in 0..g.usize_in(0, 6) {
            let name = g.ident(1, 12);
            let len = g.usize_in(0, 512);
            img.put(&name, g.bytes(len));
        }
        let back = osproc::MemImage::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(back, img);
    });
}

/// Any checkpoint file round-trips; any single-byte corruption of
/// the frame region is detected (never silently accepted as
/// different data).
#[test]
fn checkpoint_file_integrity() {
    qcheck("checkpoint_file_integrity", 64, |g| {
        let len = g.usize_in(1, 256);
        let data = g.bytes(len);
        let pid = g.u32();
        let flip = g.byte();
        let mut img = osproc::MemImage::new();
        img.put("seg", data);
        let ck = blcr::CheckpointFile {
            source_pid: pid,
            source_host: "pc0".into(),
            image: img,
        };
        let bytes = ck.to_file_bytes();
        assert_eq!(
            blcr::CheckpointFile::from_file_bytes(&bytes).unwrap(),
            ck.clone()
        );

        // Corrupt one byte inside the frame (skip the trailing zero
        // padding, which is not covered by the checksum).
        let frame_len = 8 + u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
        let pos = 8 + (flip as usize % (frame_len - 8));
        let mut bad = bytes.clone();
        bad[pos] ^= 0x55;
        match blcr::CheckpointFile::from_file_bytes(&bad) {
            Err(_) => {}
            Ok(parsed) => assert_eq!(parsed, ck),
        }
    });
}

/// The generic codec rejects truncation of any encoded stream
/// rather than panicking or looping.
#[test]
fn truncation_always_errors() {
    qcheck("truncation_always_errors", 64, |g| {
        let values: Vec<u64> = (0..g.usize_in(1, 20)).map(|_| g.u64()).collect();
        let bytes = values.to_bytes();
        let cut = g.usize_in(0, bytes.len());
        if cut < bytes.len() {
            assert!(Vec::<u64>::from_bytes(&bytes[..cut]).is_err());
        }
    });
}

// ---------------------------------------------------------------------
// Signature parser invariants
// ---------------------------------------------------------------------

fn gen_param(g: &mut Gen) -> (String, clspec::sig::ParamKind) {
    use clspec::sig::ParamKind;
    let n = g.ident(1, 9);
    match g.range(0, 7) {
        0 => (format!("__global float* {n}"), ParamKind::GlobalPtr),
        1 => (format!("__constant float* {n}"), ParamKind::ConstantPtr),
        2 => (format!("__local float* {n}"), ParamKind::LocalPtr),
        3 => (format!("image2d_t {n}"), ParamKind::Image2d),
        4 => (format!("sampler_t {n}"), ParamKind::Sampler),
        5 => (format!("const uint {n}"), ParamKind::Scalar("uint".into())),
        _ => (format!("float {n}"), ParamKind::Scalar("float".into())),
    }
}

/// For any synthesized kernel declaration, the parser recovers the
/// kernel name, arity and per-parameter classification exactly.
#[test]
fn parser_recovers_synthesized_signatures() {
    qcheck("parser_recovers_synthesized_signatures", 64, |g| {
        let kname = g.ident(1, 13);
        let params: Vec<(String, clspec::sig::ParamKind)> =
            (0..g.usize_in(0, 8)).map(|_| gen_param(g)).collect();
        let list: Vec<String> = params.iter().map(|(d, _)| d.clone()).collect();
        let src = format!(
            "// synthesized\n__kernel void {kname}({}) {{ /* body */ }}\n",
            list.join(", ")
        );
        let sigs = clspec::sig::parse_kernel_sigs(&src).unwrap();
        assert_eq!(sigs.len(), 1);
        assert_eq!(&sigs[0].name, &kname);
        assert_eq!(sigs[0].params.len(), params.len());
        for (got, (_, want)) in sigs[0].params.iter().zip(&params) {
            assert_eq!(&got.kind, want);
        }
        // And the signature round-trips through the codec (it is part
        // of the CheCL database).
        let sig = sigs[0].clone();
        assert_eq!(
            clspec::sig::KernelSig::from_bytes(&sig.to_bytes()).unwrap(),
            sig
        );
    });
}

/// The parser never panics on arbitrary input.
#[test]
fn parser_total_on_garbage() {
    qcheck("parser_total_on_garbage", 96, |g| {
        // A mix of arbitrary bytes forced into UTF-8 and random ASCII
        // punctuation soup that resembles broken source.
        let src = if g.bool() {
            let len = g.usize_in(0, 300);
            String::from_utf8_lossy(&g.bytes(len)).into_owned()
        } else {
            const SOUP: &[u8] = b"__kernel void (){};*,/ \n\tconst uint float image2d_t";
            let len = g.usize_in(0, 300);
            (0..len)
                .map(|_| SOUP[g.usize_in(0, SOUP.len())] as char)
                .collect()
        };
        let _ = clspec::sig::parse_kernel_sigs(&src);
        let _ = clspec::sig::parse_struct_defs(&src);
    });
}

// ---------------------------------------------------------------------
// Kernel engine invariants
// ---------------------------------------------------------------------

fn u32s_to_bytes(v: &[u32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn bytes_to_u32s(b: &[u8]) -> Vec<u32> {
    b.chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// radix_sort agrees with the standard library sort on any input.
#[test]
fn radix_sort_correct() {
    qcheck("radix_sort_correct", 48, |g| {
        let mut keys: Vec<u32> = (0..g.usize_in(1, 300)).map(|_| g.u32()).collect();
        let n = keys.len() as u32;
        let mut args = vec![
            clkernels::ArgData::Buffer(u32s_to_bytes(&keys)),
            clkernels::ArgData::Scalar(n.to_le_bytes().to_vec()),
        ];
        clkernels::execute("radix_sort", [n as u64, 1, 1], &mut args).unwrap();
        keys.sort_unstable();
        assert_eq!(bytes_to_u32s(args[0].buffer().unwrap()), keys);
    });
}

/// The full bitonic schedule sorts any power-of-two input.
#[test]
fn bitonic_schedule_correct() {
    qcheck("bitonic_schedule_correct", 32, |g| {
        let log_n = g.range(2, 9) as u32;
        let n = 1usize << log_n;
        let keys: Vec<u32> = (0..n).map(|_| g.u32()).collect();
        let mut buf = clkernels::ArgData::Buffer(u32s_to_bytes(&keys));
        for stage in 0..log_n {
            for pass in (0..=stage).rev() {
                let mut args = vec![
                    buf.clone(),
                    clkernels::ArgData::Scalar((n as u32).to_le_bytes().to_vec()),
                    clkernels::ArgData::Scalar(stage.to_le_bytes().to_vec()),
                    clkernels::ArgData::Scalar(pass.to_le_bytes().to_vec()),
                ];
                clkernels::execute("bitonic_sort", [n as u64, 1, 1], &mut args).unwrap();
                buf = args.swap_remove(0);
            }
        }
        let mut expected = keys;
        expected.sort_unstable();
        assert_eq!(bytes_to_u32s(buf.buffer().unwrap()), expected);
    });
}

/// Exclusive scan and reduction are consistent:
/// scan[n-1] + input[n-1] == reduce(input).
#[test]
fn scan_reduce_consistent() {
    qcheck("scan_reduce_consistent", 48, |g| {
        let values: Vec<f32> = (0..g.usize_in(1, 200))
            .map(|_| g.f32_in(0.0, 10.0))
            .collect();
        let n = values.len() as u32;
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut scan_args = vec![
            clkernels::ArgData::Buffer(bytes.clone()),
            clkernels::ArgData::Buffer(vec![0u8; bytes.len()]),
            clkernels::ArgData::Local(64),
            clkernels::ArgData::Scalar(n.to_le_bytes().to_vec()),
        ];
        clkernels::execute("scan_exclusive", [n as u64, 1, 1], &mut scan_args).unwrap();
        let mut red_args = vec![
            clkernels::ArgData::Buffer(bytes),
            clkernels::ArgData::Buffer(vec![0u8; 4]),
            clkernels::ArgData::Local(64),
            clkernels::ArgData::Scalar(n.to_le_bytes().to_vec()),
        ];
        clkernels::execute("reduce_sum", [n as u64, 1, 1], &mut red_args).unwrap();

        let scan_out = scan_args[1].buffer().unwrap();
        let last_scan = f32::from_le_bytes(
            scan_out[(n as usize - 1) * 4..(n as usize) * 4]
                .try_into()
                .unwrap(),
        );
        let total = f32::from_le_bytes(red_args[1].buffer().unwrap()[..4].try_into().unwrap());
        let expected = last_scan + values[values.len() - 1];
        assert!((total - expected).abs() <= total.abs().max(1.0) * 1e-4);
    });
}

// ---------------------------------------------------------------------
// CheCL end-to-end invariant
// ---------------------------------------------------------------------

/// Arbitrary buffer contents survive checkpoint + cross-vendor
/// restart bit-exactly, whatever the bytes are.
#[test]
fn arbitrary_buffers_survive_cpr() {
    qcheck("arbitrary_buffers_survive_cpr", 12, |g| {
        use checl::{CheclConfig, RestoreTarget};
        use clspec::types::{DeviceType, MemFlags, QueueProps};
        use clspec::Ocl;
        use osproc::Cluster;

        let len = g.usize_in(64, 512);
        let raw = g.bytes(len);
        let size = (raw.len() & !3) as u64;
        let data = raw[..size as usize].to_vec();

        let mut cluster = Cluster::with_standard_nodes(2);
        let nodes = cluster.node_ids();
        let app = cluster.spawn(nodes[0]);
        let mut booted = checl::boot_checl(
            &mut cluster,
            app,
            cldriver::vendor::nimbus(),
            CheclConfig::default(),
        );
        let mut now = cluster.process(app).clock;
        let mut ocl = Ocl::new(&mut booted.lib, &mut now);
        let p = ocl.get_platform_ids().unwrap();
        let d = ocl.get_device_ids(p[0], DeviceType::Gpu).unwrap();
        let ctx = ocl.create_context(&d).unwrap();
        // The application keeps this CheCL queue handle across the
        // checkpoint — handles are stable, only the wrapped vendor
        // handles change.
        let q = ocl
            .create_command_queue(ctx, d[0], QueueProps::default())
            .unwrap();
        let buf = ocl
            .create_buffer(
                ctx,
                MemFlags::READ_WRITE | MemFlags::COPY_HOST_PTR,
                size,
                Some(data.clone()),
            )
            .unwrap();
        let _ = ocl;
        cluster.process_mut(app).clock = now;

        checl::checkpoint_checl(&mut booted.lib, &mut cluster, app, "/nfs/prop.ckpt").unwrap();
        checl::boot::kill_proxy(&mut cluster, &mut booted.lib);
        cluster.kill(app);

        let (mut lib2, pid2, _) = checl::cpr::restart_checl_process(
            &mut cluster,
            nodes[1],
            "/nfs/prop.ckpt",
            cldriver::vendor::crimson(),
            RestoreTarget::default(),
        )
        .unwrap();
        let mut now2 = cluster.process(pid2).clock;
        let mut ocl2 = Ocl::new(&mut lib2, &mut now2);
        let (back, _) = ocl2
            .enqueue_read_buffer(q, buf, true, 0, size, &[])
            .unwrap();
        assert_eq!(back, data);
    });
}
