//! Self-healing supervisor system tests: a [`run_supervised`] workload
//! under an arbitrary seeded [`FaultPlan`] — proxy deaths, pipe breaks,
//! node crashes (scripted and recurring), write mangling, NFS outages —
//! either completes with buffer contents bit-exact to an undisturbed
//! run or returns a typed [`SupervisorError::Escalated`]. It never
//! panics, never hangs, never silently corrupts, and the whole ordeal
//! replays bit-for-bit under the same seed.

use checl::supervisor::{SupervisorError, SupervisorReport};
use checl::{CprPolicy, IntervalPolicy, RecoveryPolicy};
use checl_repro as _;
use osproc::{Cluster, FaultPlan, InjectedFault, NodeId};
use simcore::qcheck::{qcheck, Gen};
use simcore::{SimDuration, SimTime};
use workloads::{
    run_supervised, workload_by_name, CheclSession, NativeSession, PolicyRunOutcome, StopCondition,
    SuperviseSetup, WorkloadCfg,
};

fn quick() -> WorkloadCfg {
    WorkloadCfg {
        scale: 1.0 / 64.0,
        ..WorkloadCfg::default()
    }
}

fn launch_on(cluster: &mut Cluster, node: NodeId) -> CheclSession {
    let w = workload_by_name("oclVectorAdd").unwrap();
    CheclSession::launch(
        cluster,
        node,
        cldriver::vendor::nimbus(),
        checl::CheclConfig::default(),
        w.script(&quick()),
    )
}

/// Final checksums of the same program run natively, undisturbed.
fn golden_checksums() -> Vec<u64> {
    let mut cluster = Cluster::with_standard_nodes(1);
    let node = cluster.node_ids()[0];
    let w = workload_by_name("oclVectorAdd").unwrap();
    let mut s = NativeSession::launch(
        &mut cluster,
        node,
        cldriver::vendor::nimbus(),
        w.script(&quick()),
    );
    s.run(&mut cluster, StopCondition::Completion).unwrap();
    s.program.checksums
}

/// A supervised setup sized for the 1/64-scale workload: short
/// intervals so checkpoints land mid-run, a tight MTBF prior, and a
/// failure-storm backstop low enough to keep adversarial cases quick.
fn test_setup(spares: Vec<NodeId>) -> SuperviseSetup {
    let mut setup = SuperviseSetup::new(cldriver::vendor::nimbus(), "/local/sup", "/nfs/sup");
    setup.spares = spares;
    setup.config.min_interval = SimDuration::from_millis(5);
    setup.config.max_interval = SimDuration::from_secs(2);
    setup.config.initial_mtbf = SimDuration::from_millis(200);
    setup.config.max_failures = 24;
    setup.policy = CprPolicy::sequential()
        .with_interval(IntervalPolicy::DalyAdaptive)
        .with_recovery(RecoveryPolicy {
            retry: blcr::RetryPolicy::default(),
            fallback_targets: Vec::new(),
        });
    setup
}

/// Draw an adversarial plan for a supervised run: everything the fault
/// tests throw, plus recurring proxy-death and node-crash rates over
/// every node in the cluster (spares included — the supervisor must
/// survive its failover targets dying too).
fn arbitrary_supervised_plan(g: &mut Gen, origin: SimTime, nodes: &[NodeId]) -> FaultPlan {
    let mut plan = FaultPlan::new(g.u64());
    if g.bool() {
        plan = plan.with_write_fail_prob(g.f32_in(0.0, 0.2) as f64);
    }
    plan = plan
        .fail_next_writes(g.range(0, 2) as u32)
        .corrupt_next_writes(g.range(0, 2) as u32);
    if g.bool() {
        let from = origin + SimDuration::from_millis(g.range(0, 40));
        plan = plan.schedule_nfs_outage(from, from + SimDuration::from_millis(g.range(1, 100)));
    }
    for _ in 0..g.usize_in(0, 2) {
        plan = plan.schedule_proxy_death(origin + SimDuration::from_millis(g.range(0, 40)));
    }
    if g.bool() {
        plan = plan.with_proxy_death_rate(SimDuration::from_millis(g.range(20, 200)));
    }
    if g.bool() {
        plan = plan.with_node_crash_rate(SimDuration::from_millis(g.range(50, 400)), nodes);
    }
    if g.bool() {
        let victim = nodes[g.usize_in(0, nodes.len() - 1)];
        plan = plan.schedule_node_crash(origin + SimDuration::from_millis(g.range(0, 60)), victim);
    }
    plan
}

/// Run the supervised gauntlet from a fresh generator: 3-node cluster,
/// app on node 0, the other two as spares, adversarial plan over all
/// three. Returns the fault log, the final checksums (`None` when the
/// run escalated) and the report.
#[allow(clippy::type_complexity)]
fn supervised_gauntlet(
    g: &mut Gen,
) -> (
    Vec<InjectedFault>,
    Option<Vec<u64>>,
    Option<SupervisorReport>,
) {
    let mut cluster = Cluster::with_standard_nodes(3);
    let nodes = cluster.node_ids();
    let session = launch_on(&mut cluster, nodes[0]);
    let origin = cluster.process(session.pid).clock;
    let plan = arbitrary_supervised_plan(g, origin, &nodes);
    cluster.install_faults(plan);
    let setup = test_setup(vec![nodes[1], nodes[2]]);
    let (sums, report) = match run_supervised(&mut cluster, session, &setup) {
        Ok((s, report)) => (Some(s.program.checksums.clone()), Some(report)),
        Err(SupervisorError::Escalated { .. }) => (None, None),
    };
    let log = cluster.take_faults().unwrap().log().to_vec();
    (log, sums, report)
}

/// An undisturbed supervised run completes, checkpoints on cadence, and
/// its buffers match the native run bit for bit.
#[test]
fn supervised_clean_run_matches_native() {
    let golden = golden_checksums();
    let mut cluster = Cluster::with_standard_nodes(2);
    let nodes = cluster.node_ids();
    let session = launch_on(&mut cluster, nodes[0]);
    let setup = test_setup(vec![nodes[1]]);
    let (s, report) =
        run_supervised(&mut cluster, session, &setup).expect("a clean run must complete");
    assert!(report.completed);
    assert_eq!(report.failures, 0, "no faults were installed");
    assert!(report.checkpoints >= 1, "generation 0 is always committed");
    assert!(
        !report.interval_history.is_empty(),
        "the adaptive controller must have put an interval in force"
    );
    assert_eq!(s.program.checksums, golden);
}

/// A proxy killed mid-run is detected and repaired automatically — no
/// manual recovery calls — and the result is still bit-exact.
#[test]
fn supervised_run_heals_proxy_death_bit_exact() {
    let golden = golden_checksums();
    let mut cluster = Cluster::with_standard_nodes(2);
    let nodes = cluster.node_ids();
    let session = launch_on(&mut cluster, nodes[0]);
    let origin = cluster.process(session.pid).clock;
    cluster.install_faults(
        FaultPlan::new(7).schedule_proxy_death(origin + SimDuration::from_millis(3)),
    );
    let setup = test_setup(vec![nodes[1]]);
    let (s, report) =
        run_supervised(&mut cluster, session, &setup).expect("one proxy death must be survivable");
    assert!(report.completed);
    assert!(report.failures >= 1, "the scheduled death must have fired");
    assert!(report.repairs >= 1, "the repair ladder must have run");
    assert!(
        report.downtime > SimDuration::ZERO,
        "detection and repair take time"
    );
    assert_eq!(s.program.checksums, golden);
}

/// A node crash fails the session over to a healthy spare from the NFS
/// mirror replica, re-seeds local replicas by scrubbing, and finishes
/// bit-exact.
#[test]
fn supervised_run_fails_over_to_a_spare_node() {
    let golden = golden_checksums();
    let mut cluster = Cluster::with_standard_nodes(3);
    let nodes = cluster.node_ids();
    let session = launch_on(&mut cluster, nodes[0]);
    let origin = cluster.process(session.pid).clock;
    cluster.install_faults(
        FaultPlan::new(11).schedule_node_crash(origin + SimDuration::from_millis(4), nodes[0]),
    );
    let setup = test_setup(vec![nodes[1], nodes[2]]);
    let (s, report) =
        run_supervised(&mut cluster, session, &setup).expect("failover to a spare must succeed");
    assert!(report.completed);
    assert!(report.failures >= 1);
    assert_ne!(
        cluster.process(s.pid).node,
        nodes[0],
        "the session must have moved off the crashed node"
    );
    assert_eq!(s.program.checksums, golden);
}

/// With no spare to fail over to, a node crash exhausts repair and
/// surfaces as the typed escalation — not a panic, not a hang.
#[test]
fn exhausted_repair_escalates_with_a_typed_error() {
    let mut cluster = Cluster::with_standard_nodes(1);
    let nodes = cluster.node_ids();
    let session = launch_on(&mut cluster, nodes[0]);
    let origin = cluster.process(session.pid).clock;
    cluster.install_faults(
        FaultPlan::new(13).schedule_node_crash(origin + SimDuration::from_millis(2), nodes[0]),
    );
    let setup = test_setup(Vec::new());
    match run_supervised(&mut cluster, session, &setup) {
        Err(SupervisorError::Escalated { detail, .. }) => {
            assert!(
                detail.contains("spare"),
                "escalation must say why: {detail}"
            );
        }
        Ok(_) => panic!("a crash with no spare cannot complete"),
    }
}

/// The acceptance property: under *any* seeded plan the supervised run
/// either completes bit-identical to the fault-free golden or returns
/// the typed escalation. No third outcome exists.
#[test]
fn supervised_gauntlet_completes_or_escalates() {
    let golden = golden_checksums();
    qcheck("supervised_gauntlet_completes_or_escalates", 16, |g| {
        let (_log, sums, report) = supervised_gauntlet(g);
        match (sums, report) {
            (Some(sums), Some(report)) => {
                assert!(report.completed);
                assert_eq!(sums, golden, "a completed supervised run must be bit-exact");
            }
            (None, None) => {} // typed escalation — acceptable by contract
            other => panic!("checksums and report must agree: {other:?}"),
        }
    });
}

/// The same seed drives the same detections, repairs, failovers and
/// checkpoints at the same virtual times — supervised runs replay
/// bit-for-bit.
#[test]
fn supervised_replay_is_deterministic() {
    qcheck("supervised_replay_is_deterministic", 8, |g| {
        let seed = g.u64();
        let run = |seed: u64| {
            let mut inner = Gen::new(seed);
            supervised_gauntlet(&mut inner)
        };
        let (log_a, sums_a, report_a) = run(seed);
        let (log_b, sums_b, report_b) = run(seed);
        assert_eq!(log_a, log_b, "fault logs must replay identically");
        assert_eq!(sums_a, sums_b, "results must replay identically");
        assert_eq!(report_a, report_b, "accounting must replay identically");
    });
}

/// Satellite property: a `CheckpointMode::Delayed` snapshot taken while
/// faults fire inside the delay window still restores bit-identically.
/// The trigger arms immediately after launch; write bursts and an NFS
/// outage land on the commit at the next sync point; commit hardening
/// rides them out or fails typed — and every committed snapshot
/// restores to the golden result.
#[test]
fn delayed_checkpoint_under_faults_restores_bit_exact() {
    let golden = golden_checksums();
    qcheck(
        "delayed_checkpoint_under_faults_restores_bit_exact",
        12,
        |g| {
            let mut cluster = Cluster::with_standard_nodes(2);
            let node = cluster.node_ids()[0];
            let mut session = launch_on(&mut cluster, node);
            // Arm the delayed trigger before the first op: the whole run up
            // to the next sync point is the delay window.
            cluster.signal(session.pid, osproc::Signal::Usr1);
            let origin = cluster.process(session.pid).clock;
            let mut plan = FaultPlan::new(g.u64())
                .fail_next_writes(g.range(0, 2) as u32)
                .short_next_writes(g.range(0, 1) as u32)
                .corrupt_next_writes(g.range(0, 1) as u32);
            if g.bool() {
                let from = origin + SimDuration::from_micros(g.range(0, 2_000));
                plan =
                    plan.schedule_nfs_outage(from, from + SimDuration::from_millis(g.range(1, 50)));
            }
            cluster.install_faults(plan);
            let policy = CprPolicy::sequential()
                .delayed()
                .with_recovery(RecoveryPolicy {
                    retry: blcr::RetryPolicy::default(),
                    fallback_targets: vec!["/local/d.fb.ckpt".into()],
                });
            let snap = match session.run_with_cpr_policy(&mut cluster, &policy, "/nfs/d.ckpt") {
                Ok(PolicyRunOutcome::Checkpointed(snap)) => snap,
                Ok(PolicyRunOutcome::Done) => panic!("an armed trigger cannot end in Done"),
                // Hardening exhausted under this draw — a typed error, and
                // nothing to restore. The property holds vacuously.
                Err(_) => return,
            };
            // The delayed trigger must have fired at a sync point (or at
            // exit with queues drained) — never mid-command.
            let program = &session.program;
            assert!(
                program.is_done()
                    || matches!(
                        program.script.ops[program.pc as usize],
                        workloads::Op::Finish { .. }
                    ),
                "Delayed must commit at a sync point"
            );
            cluster.take_faults();
            let mut restored = CheclSession::restart(
                &mut cluster,
                node,
                &snap.path,
                cldriver::vendor::nimbus(),
                checl::RestoreTarget::default(),
            )
            .expect("a committed delayed snapshot must restore");
            restored
                .run(&mut cluster, StopCondition::Completion)
                .unwrap();
            assert_eq!(
                restored.program.checksums, golden,
                "restore from a delay-window snapshot must be bit-exact"
            );
        },
    );
}
