//! Cross-crate system scenarios: the paper's end-to-end stories.

use checl::{CheclConfig, RestoreTarget};
use checl_repro as _;
use osproc::Cluster;
use simcore::SimDuration;
use workloads::{workload_by_name, CheclSession, NativeSession, StopCondition, WorkloadCfg};

fn quick() -> WorkloadCfg {
    WorkloadCfg {
        scale: 1.0 / 64.0,
        ..WorkloadCfg::default()
    }
}

/// §II: a conventional CPR system fails on a native OpenCL process but
/// succeeds on the same program under CheCL.
#[test]
fn blcr_fails_native_succeeds_under_checl() {
    let mut cluster = Cluster::with_standard_nodes(1);
    let node = cluster.node_ids()[0];
    let w = workload_by_name("oclVectorAdd").unwrap();

    let mut native = NativeSession::launch(
        &mut cluster,
        node,
        cldriver::vendor::nimbus(),
        w.script(&quick()),
    );
    native
        .run(&mut cluster, StopCondition::AfterKernel(1))
        .unwrap();
    assert!(matches!(
        blcr::checkpoint(&mut cluster, native.pid, "/local/native.ckpt"),
        Err(blcr::CprError::DeviceMapped { .. })
    ));

    let mut shim = CheclSession::launch(
        &mut cluster,
        node,
        cldriver::vendor::nimbus(),
        CheclConfig::default(),
        w.script(&quick()),
    );
    shim.run(&mut cluster, StopCondition::AfterKernel(1))
        .unwrap();
    shim.checkpoint(&mut cluster, "/local/checl.ckpt").unwrap();
}

/// §V: DMTCP checkpoints process trees, so it fails while the API proxy
/// lives; the paper's workaround (kill the proxy first, refork after)
/// works end to end, including object restoration.
#[test]
fn dmtcp_workflow_with_proxy_kill_and_refork() {
    let mut cluster = Cluster::with_standard_nodes(1);
    let node = cluster.node_ids()[0];
    let w = workload_by_name("oclReduction").unwrap();
    let mut s = CheclSession::launch(
        &mut cluster,
        node,
        cldriver::vendor::nimbus(),
        CheclConfig::default(),
        w.script(&quick()),
    );
    s.run(&mut cluster, StopCondition::AfterKernel(1)).unwrap();

    // Stock DMTCP chokes on the tree: the proxy maps devices.
    assert!(matches!(
        blcr::dmtcp_checkpoint(&mut cluster, s.pid, "/local/tree.ckpt"),
        Err(blcr::CprError::ChildDeviceMapped { .. })
    ));

    // Paper workaround. First drain + save device data while the proxy
    // is still alive (CheCL's preprocess), then kill the proxy, then
    // let DMTCP dump the now-clean tree.
    s.drain(&mut cluster);
    // Use the regular CheCL checkpoint to capture buffers + state...
    s.persist_program(&mut cluster);
    checl::checkpoint_checl(&mut s.lib, &mut cluster, s.pid, "/local/pre.ckpt").unwrap();
    // ...then kill the proxy and let the DMTCP-style tree dump succeed.
    checl::boot::kill_proxy(&mut cluster, &mut s.lib);
    blcr::dmtcp_checkpoint(&mut cluster, s.pid, "/local/tree.ckpt").unwrap();

    // "Restarted right after checkpointing": refork the proxy, restore
    // objects, and keep running in place.
    checl::boot::refork_proxy(&mut cluster, &mut s.lib, s.pid, cldriver::vendor::nimbus());
    let mut now = cluster.process(s.pid).clock;
    checl::restore_checl(&mut s.lib, &mut now, RestoreTarget::default()).unwrap();
    cluster.process_mut(s.pid).clock = now;
    s.run(&mut cluster, StopCondition::Completion).unwrap();
    assert!(!s.program.checksums.is_empty());
}

/// The init overhead appears once per process: CheCL costs ~80 ms at
/// load time (§IV-A), visible as the clock delta right after launch.
#[test]
fn init_overhead_is_once_per_process() {
    let mut cluster = Cluster::with_standard_nodes(1);
    let node = cluster.node_ids()[0];
    let w = workload_by_name("QueueDelay").unwrap();
    let native = NativeSession::launch(
        &mut cluster,
        node,
        cldriver::vendor::nimbus(),
        w.script(&quick()),
    );
    let t_native0 = native.elapsed(&cluster);
    let checl_run = CheclSession::launch(
        &mut cluster,
        node,
        cldriver::vendor::nimbus(),
        CheclConfig::default(),
        w.script(&quick()),
    );
    let t_checl0 = checl_run.elapsed(&cluster);
    assert_eq!(t_native0, SimDuration::ZERO);
    assert_eq!(t_checl0, simcore::calib::checl_init_overhead());
}

/// Two independent jobs on one cluster don't interfere: separate
/// processes, proxies and object databases.
#[test]
fn concurrent_jobs_are_isolated() {
    let mut cluster = Cluster::with_standard_nodes(1);
    let node = cluster.node_ids()[0];
    let w1 = workload_by_name("oclHistogram").unwrap();
    let w2 = workload_by_name("FFT").unwrap();
    let mut a = CheclSession::launch(
        &mut cluster,
        node,
        cldriver::vendor::nimbus(),
        CheclConfig::default(),
        w1.script(&quick()),
    );
    let mut b = CheclSession::launch(
        &mut cluster,
        node,
        cldriver::vendor::crimson(),
        CheclConfig::default(),
        w2.script(&quick()),
    );
    // Interleave.
    a.run(&mut cluster, StopCondition::AfterKernel(1)).unwrap();
    b.run(&mut cluster, StopCondition::AfterKernel(1)).unwrap();
    a.run(&mut cluster, StopCondition::Completion).unwrap();
    b.run(&mut cluster, StopCondition::Completion).unwrap();
    assert_ne!(a.lib.proxy_pid(), b.lib.proxy_pid());
    assert!(!a.program.checksums.is_empty());
    assert!(!b.program.checksums.is_empty());
}

/// Checkpoint files are host-independent (§IV-C): the same file
/// restarts on any node that can read it, regardless of where it was
/// written.
#[test]
fn checkpoint_files_are_host_independent() {
    let mut cluster = Cluster::with_standard_nodes(3);
    let nodes = cluster.node_ids();
    let w = workload_by_name("oclDotProduct").unwrap();
    let mut s = CheclSession::launch(
        &mut cluster,
        nodes[0],
        cldriver::vendor::nimbus(),
        CheclConfig::default(),
        w.script(&quick()),
    );
    s.run(&mut cluster, StopCondition::AfterKernel(1)).unwrap();
    s.checkpoint(&mut cluster, "/nfs/anynode.ckpt").unwrap();
    s.kill(&mut cluster);

    // Restart on node 1, then checkpoint again and hop to node 2.
    let mut s = CheclSession::restart(
        &mut cluster,
        nodes[1],
        "/nfs/anynode.ckpt",
        cldriver::vendor::nimbus(),
        RestoreTarget::default(),
    )
    .unwrap();
    s.checkpoint(&mut cluster, "/nfs/hop2.ckpt").unwrap();
    s.kill(&mut cluster);
    let mut s = CheclSession::restart(
        &mut cluster,
        nodes[2],
        "/nfs/hop2.ckpt",
        cldriver::vendor::crimson(),
        RestoreTarget::default(),
    )
    .unwrap();
    s.run(&mut cluster, StopCondition::Completion).unwrap();
    assert!(!s.program.checksums.is_empty());
}

/// Repeated checkpoint/restart cycles keep producing correct results
/// (no state leaks between generations).
#[test]
fn many_generations_of_restart() {
    let cfg = quick();
    let w = workload_by_name("Stencil2D").unwrap();
    let golden = {
        let mut cluster = Cluster::with_standard_nodes(1);
        let node = cluster.node_ids()[0];
        let mut s = NativeSession::launch(
            &mut cluster,
            node,
            cldriver::vendor::nimbus(),
            w.script(&cfg),
        );
        s.run(&mut cluster, StopCondition::Completion).unwrap();
        s.program.checksums
    };

    let mut cluster = Cluster::with_standard_nodes(2);
    let nodes = cluster.node_ids();
    let mut s = CheclSession::launch(
        &mut cluster,
        nodes[0],
        cldriver::vendor::nimbus(),
        CheclConfig::default(),
        w.script(&cfg),
    );
    let mut kernel_target = 2;
    for gen in 0..5 {
        if s.run(&mut cluster, StopCondition::AfterKernel(kernel_target))
            .unwrap()
            == workloads::RunStatus::Done
        {
            break;
        }
        let path = format!("/nfs/gen{gen}.ckpt");
        s.checkpoint(&mut cluster, &path).unwrap();
        s.kill(&mut cluster);
        let vendor = if gen % 2 == 0 {
            cldriver::vendor::crimson()
        } else {
            cldriver::vendor::nimbus()
        };
        s = CheclSession::restart(
            &mut cluster,
            nodes[gen % 2],
            &path,
            vendor,
            RestoreTarget::default(),
        )
        .unwrap();
        kernel_target += 2;
    }
    s.run(&mut cluster, StopCondition::Completion).unwrap();
    assert_eq!(s.program.checksums, golden);
}
