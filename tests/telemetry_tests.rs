//! End-to-end tests of the virtual-time telemetry layer: structural
//! validation of recorded traces, agreement between checkpoint phase
//! spans and the `CheckpointReport` arithmetic, and byte-exact
//! determinism of the Chrome trace export.

use checl::{CheclConfig, RestoreTarget};
use checl_repro as _;
use osproc::Cluster;
use simcore::qcheck::qcheck;
use simcore::telemetry::{self, Recorder, Track};
use simcore::{SimDuration, SimTime};
use workloads::{workload_by_name, CheclSession, StopCondition, WorkloadCfg};

/// Emit a random well-nested forest of spans (plus instants and async
/// pairs) and check that `validate` accepts it and counts correctly.
#[test]
fn random_balanced_traces_validate() {
    qcheck("random_balanced_traces_validate", 64, |g| {
        telemetry::start_recording();
        let names = ["alpha", "beta", "gamma", "delta"];
        let mut expected_spans = 0usize;
        let mut expected_instants = 0usize;
        let mut expected_async = 0usize;
        for pid in 1..=g.range(1, 4) {
            let _track = telemetry::track_scope(Track::process(pid));
            let mut t = SimTime::ZERO;
            // A few sibling span trees of random depth on this track.
            for _ in 0..g.usize_in(1, 5) {
                let depth = g.usize_in(1, 5);
                let mut stack = Vec::new();
                for level in 0..depth {
                    let name = *g.pick(&names);
                    t += SimDuration::from_nanos(g.range(1, 1000));
                    telemetry::span_begin("test", name, t, Vec::new());
                    stack.push(name);
                    if g.bool() {
                        t += SimDuration::from_nanos(g.range(0, 100));
                        telemetry::instant("test", "tick", t, Vec::new());
                        expected_instants += 1;
                    }
                    let _ = level;
                }
                while let Some(name) = stack.pop() {
                    t += SimDuration::from_nanos(g.range(0, 1000));
                    telemetry::span_end("test", name, t, Vec::new());
                    expected_spans += 1;
                }
            }
            // A couple of async pairs on a queue row of this process.
            for id in 0..g.range(0, 3) {
                let track = Track::process(pid).with_tid(100 + id);
                let start = t + SimDuration::from_nanos(g.range(1, 500));
                let end = start + SimDuration::from_nanos(g.range(1, 500));
                telemetry::async_begin("test", "job", start, track, id, Vec::new());
                telemetry::async_end("test", "job", end, track, id, Vec::new());
                expected_async += 1;
            }
        }
        let rec = telemetry::stop_recording().unwrap();
        let stats = telemetry::validate(&rec.events).expect("balanced trace must validate");
        assert_eq!(stats.spans, expected_spans);
        assert_eq!(stats.instants, expected_instants);
        assert_eq!(stats.async_pairs, expected_async);
        assert!(stats.max_depth >= 1);
    });
}

/// Structural violations are caught: an unclosed span, a stray end,
/// and a mismatched nesting order all fail validation.
#[test]
fn validate_rejects_malformed_traces() {
    // Unclosed span.
    telemetry::start_recording();
    telemetry::span_begin("test", "open", SimTime::ZERO, Vec::new());
    let rec = telemetry::stop_recording().unwrap();
    assert!(telemetry::validate(&rec.events).is_err());

    // End with no begin.
    telemetry::start_recording();
    telemetry::span_end("test", "stray", SimTime::ZERO, Vec::new());
    let rec = telemetry::stop_recording().unwrap();
    assert!(telemetry::validate(&rec.events).is_err());

    // Interleaved (non-nested) spans: a closes while b is innermost.
    telemetry::start_recording();
    let t = |n| SimTime::ZERO + SimDuration::from_nanos(n);
    telemetry::span_begin("test", "a", t(1), Vec::new());
    telemetry::span_begin("test", "b", t(2), Vec::new());
    telemetry::span_end("test", "a", t(3), Vec::new());
    telemetry::span_end("test", "b", t(4), Vec::new());
    let rec = telemetry::stop_recording().unwrap();
    assert!(telemetry::validate(&rec.events).is_err());
}

/// Run a real workload to a checkpoint under recording; returns the
/// recorder and the report.
fn record_checkpoint() -> (Recorder, checl::CheckpointReport) {
    telemetry::start_recording();
    let w = workload_by_name("oclMatrixMul").unwrap();
    let cfg = WorkloadCfg {
        scale: 1.0 / 64.0,
        ..WorkloadCfg::default()
    };
    let mut cluster = Cluster::with_standard_nodes(2);
    let node = cluster.node_ids()[0];
    let mut s = CheclSession::launch(
        &mut cluster,
        node,
        cldriver::vendor::nimbus(),
        CheclConfig::default(),
        w.script(&cfg),
    );
    s.run(&mut cluster, StopCondition::AfterKernel(1)).unwrap();
    let report = s.checkpoint(&mut cluster, "/nfs/telemetry.ckpt").unwrap();

    // Cross-vendor restart so restore spans land in the trace too.
    s.kill(&mut cluster);
    let nodes = cluster.node_ids();
    let resumed = CheclSession::restart(
        &mut cluster,
        nodes[1],
        "/nfs/telemetry.ckpt",
        cldriver::vendor::crimson(),
        RestoreTarget::default(),
    )
    .unwrap();
    drop(resumed);
    (telemetry::stop_recording().unwrap(), report)
}

/// The four checkpoint phase spans exist, validate cleanly (including
/// the quiescence invariant), and their durations sum to exactly the
/// printed `CheckpointReport::total()`.
#[test]
fn checkpoint_phase_spans_match_report() {
    let (rec, report) = record_checkpoint();
    telemetry::validate(&rec.events).expect("checkpoint trace must validate");

    let durations = telemetry::span_durations(&rec.events);
    assert_eq!(durations["checkpoint.sync"], report.sync);
    assert_eq!(durations["checkpoint.preprocess"], report.preprocess);
    assert_eq!(durations["checkpoint.write"], report.write);
    assert_eq!(durations["checkpoint.postprocess"], report.postprocess);
    assert_eq!(durations["checkpoint"], report.total());
    assert_eq!(
        durations["checkpoint.sync"]
            + durations["checkpoint.preprocess"]
            + durations["checkpoint.write"]
            + durations["checkpoint.postprocess"],
        report.total()
    );
    // The restart produced restore spans and a blcr read span.
    assert!(durations.contains_key("restart"));
    assert!(durations.contains_key("blcr.read"));
    assert!(durations.keys().any(|k| k.starts_with("restore.")));
    // Metrics single-source: one checkpoint, one restart.
    assert_eq!(rec.metrics.counter("cpr.checkpoints"), 1);
    assert_eq!(rec.metrics.counter("cpr.restarts"), 1);
    assert!(rec.metrics.counter("checl.api_calls") > 0);
    assert!(rec.metrics.counter("ipc.bytes") > 0);
}

/// Two identical runs produce byte-identical Chrome trace exports —
/// the virtual clock and the salt-free stable ids make the telemetry
/// fully deterministic.
#[test]
fn trace_export_is_deterministic() {
    let (rec_a, _) = record_checkpoint();
    let (rec_b, _) = record_checkpoint();
    let a = telemetry::export_chrome_trace(&rec_a);
    let b = telemetry::export_chrome_trace(&rec_b);
    assert!(!a.is_empty());
    assert_eq!(a, b, "identical runs must export identical traces");
}

/// A full MPI coordinated checkpoint trace validates, including the
/// per-rank quiescence windows and the cluster-track snapshot span.
#[test]
fn mpi_global_snapshot_trace_validates() {
    telemetry::start_recording();
    let mut cluster = Cluster::with_standard_nodes(2);
    let nodes = cluster.node_ids();
    let world = mpisim::MpiWorld::init(&mut cluster, &nodes, 4);
    world.barrier(&mut cluster);
    world.allreduce(&mut cluster, simcore::ByteSize::mib(1));
    world.send(&mut cluster, 0, 1, simcore::ByteSize::kib(64));
    for &p in world.pids() {
        cluster.process_mut(p).image.put("data", vec![7u8; 1 << 16]);
    }
    let snap = mpisim::coordinated_checkpoint(&mut cluster, &world, "/nfs/tele", blcr::checkpoint)
        .unwrap();
    assert_eq!(snap.files.len(), 4);
    let rec = telemetry::stop_recording().unwrap();
    let stats = telemetry::validate(&rec.events).expect("mpi trace must validate");
    assert!(stats.spans > 0);
    let durations = telemetry::span_durations(&rec.events);
    assert_eq!(durations["mpi.global_snapshot"], snap.elapsed);
    assert_eq!(rec.metrics.counter("mpi.global_snapshots"), 1);
    assert_eq!(rec.metrics.counter("blcr.checkpoints"), 4);
    // Rank tracks were named.
    assert!(rec.process_names.values().any(|n| n.starts_with("rank 0")));
}
