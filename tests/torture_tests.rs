//! Crash-point torture harness (ISSUE 10 tentpole cap).
//!
//! A supervised run is a dump → drain → commit → GC sequence; every
//! obs-event boundary inside it is a place the node can die. The
//! harness makes that literal: a baseline pass records the full event
//! ledger of a three-generation checkpointed run, then the same run is
//! replayed once *per event*, armed with
//! [`FaultPlan::crash_after_events`] so the filesystem goes dark at
//! exactly that boundary. Whatever the wreckage — a torn chunk store,
//! an unsealed live drain, a half-mirrored generation, a GC that
//! deleted the old dump but died before the new one sealed — the vault
//! chain must still restore a generation that runs to the bit-exact
//! baseline checksums. Swept across the sequential, pipelined, dedup
//! and live engine paths.
//!
//! A qcheck property closes the fencing story: under any random
//! partition-heal schedule, exactly one writer commits each generation
//! (stale-epoch writers are fenced and their staged dumps deleted), at
//! every point of the [`CprPolicy`] lattice.

use std::collections::BTreeSet;

use blcr::{CommitError, DumpVault};
use checl::{CheclConfig, CprPolicy, RestoreTarget};
use checl_repro as _;
use clspec::types::DeviceType;
use osproc::{Cluster, FaultPlan, NodeId};
use simcore::obs;
use simcore::qcheck::{qcheck, Gen};
use workloads::{BufInit, CheclSession, Op, Reg, Script, StopCondition};

const KIB: u64 = 1 << 10;

/// Three mutation waves over three buffers, with checksums at the end.
/// Returns the script and the op-count boundaries after each wave —
/// the torture loop cuts a generation at each boundary, so every
/// committed generation snapshots genuinely different buffer bytes.
fn torture_script() -> (Script, [u64; 3]) {
    let sizes: [u64; 3] = [256 * KIB, 192 * KIB, 128 * KIB];
    let mut ops = vec![
        Op::GetPlatform { out: 0 },
        Op::GetDevices {
            platform: 0,
            dtype: DeviceType::Gpu,
            out: 1,
            count: 1,
        },
        Op::CreateContext { device: 1, out: 2 },
        Op::CreateQueue {
            context: 2,
            device: 1,
            out: 3,
        },
    ];
    let buf0: Reg = 4;
    for (i, &size) in sizes.iter().enumerate() {
        ops.push(Op::CreateBuffer {
            context: 2,
            flags: clspec::types::MemFlags::READ_WRITE,
            size,
            init: Some(BufInit::RandomU32 {
                seed: 0x70_70 + i as u64,
            }),
            out: buf0 + i as Reg,
        });
    }
    let mut bounds = [0u64; 3];
    bounds[0] = ops.len() as u64;
    for wave in 1..3u64 {
        for (i, &size) in sizes.iter().enumerate() {
            ops.push(Op::WriteBuffer {
                queue: 3,
                buf: buf0 + i as Reg,
                size,
                init: BufInit::RandomU32 {
                    seed: 0xbad0 * wave + i as u64,
                },
            });
        }
        bounds[wave as usize] = ops.len() as u64;
    }
    for (i, &size) in sizes.iter().enumerate() {
        ops.push(Op::ReadBufferChecksum {
            queue: 3,
            buf: buf0 + i as Reg,
            size,
        });
    }
    (Script { ops }, bounds)
}

fn launch(cluster: &mut Cluster, node: NodeId, script: Script) -> CheclSession {
    CheclSession::launch(
        cluster,
        node,
        cldriver::vendor::nimbus(),
        CheclConfig::default(),
        script,
    )
}

/// What one torture run leaves behind: the cluster (with whatever the
/// crash tore), the vault metadata, and either the completed run's
/// checksums or the error that surfaced the crash.
struct Wreckage {
    cluster: Cluster,
    vault: DumpVault,
    node: NodeId,
    outcome: Result<Vec<u64>, String>,
    ledger: Option<obs::Ledger>,
}

/// Drive one full dump/drain/commit/GC sequence under `policy`,
/// optionally armed to crash after the `crash_after`-th obs event.
///
/// Generation 0 is committed *before* recording starts (and before the
/// fault arms), mirroring supervised runs: a job under supervision
/// always has a restore point, so "crash at the very first boundary"
/// restores gen 0 rather than having nowhere to go. The torture loop
/// then cuts three more generations at the wave boundaries; with
/// `keep = 2` the later commits GC the early ones, putting delete
/// boundaries in the sweep too.
fn torture_run(policy: &CprPolicy, crash_after: Option<u64>) -> Wreckage {
    let (script, bounds) = torture_script();
    let mut cluster = Cluster::with_standard_nodes(1);
    let node = cluster.node_ids()[0];
    let mut session = launch(&mut cluster, node, script);
    let mut vault = DumpVault::new("/local/torture", "/nfs/torture", 2);

    session
        .checkpoint_with_policy(&mut cluster, &vault.stage_path(), policy)
        .expect("gen 0 stage");
    if policy.live {
        session
            .complete_live_drain(&mut cluster)
            .expect("gen 0 drain")
            .expect("gen 0 drain parked");
    }
    vault
        .commit(&mut cluster, session.pid)
        .expect("gen 0 commit");

    obs::start_recording();
    if let Some(k) = crash_after {
        cluster.install_faults(FaultPlan::new(0xD0C).crash_after_events(k));
    }

    let outcome = (|| {
        for &bound in &bounds {
            session
                .run(&mut cluster, StopCondition::AfterOps(bound))
                .map_err(|e| format!("run: {e:?}"))?;
            let stage = vault.stage_path();
            let out = session
                .checkpoint_with_policy(&mut cluster, &stage, policy)
                .map_err(|e| format!("checkpoint: {e:?}"))?;
            if policy.live {
                // Let the drain race a slice of the next wave before
                // sealing, as a real live cut would.
                session
                    .run(&mut cluster, StopCondition::AfterOps(bound + 1))
                    .map_err(|e| format!("run: {e:?}"))?;
                session
                    .complete_live_drain(&mut cluster)
                    .map_err(|e| format!("drain: {e:?}"))?;
            }
            vault
                .commit_at(&mut cluster, session.pid, &out.path)
                .map_err(|e| format!("commit: {e:?}"))?;
            vault.take_retired_paths();
        }
        session
            .run(&mut cluster, StopCondition::Completion)
            .map_err(|e| format!("run: {e:?}"))?;
        Ok(session.program.checksums.clone())
    })();

    let ledger = obs::stop_recording();
    Wreckage {
        cluster,
        vault,
        node,
        outcome,
        ledger,
    }
}

/// Walk the vault chain newest-first and restore the first generation
/// that still restarts, then run it to completion.
fn restore_and_finish(wreck: &mut Wreckage, context: &str) -> Vec<u64> {
    let chain = wreck.vault.restore_chain();
    assert!(!chain.is_empty(), "{context}: empty restore chain");
    for path in &chain {
        let restored = CheclSession::restart_pipelined(
            &mut wreck.cluster,
            wreck.node,
            path,
            cldriver::vendor::nimbus(),
            RestoreTarget::default(),
        );
        if let Ok(mut s) = restored {
            s.run(&mut wreck.cluster, StopCondition::Completion)
                .unwrap_or_else(|e| panic!("{context}: restored run failed: {e:?}"));
            let sums = s.program.checksums.clone();
            s.kill(&mut wreck.cluster);
            return sums;
        }
    }
    panic!("{context}: no generation in {chain:?} restored");
}

fn torture_policies() -> Vec<(&'static str, CprPolicy)> {
    vec![
        ("sequential", CprPolicy::sequential()),
        ("pipelined", CprPolicy::pipelined()),
        ("dedup", CprPolicy::pipelined().dedup(true)),
        ("live", CprPolicy::pipelined().live(true)),
    ]
}

/// The tentpole sweep: for every engine path, kill the run at *every*
/// obs-event boundary of the baseline ledger and prove a committed
/// generation restores to the bit-exact baseline checksums.
#[test]
fn every_crash_point_restores_bit_exact() {
    for (label, policy) in torture_policies() {
        let baseline = torture_run(&policy, None);
        let golden = baseline
            .outcome
            .unwrap_or_else(|e| panic!("{label}: baseline failed: {e}"));
        let ledger = baseline.ledger.expect("baseline ledger");
        let total = ledger.len() as u64;
        assert!(total > 0, "{label}: baseline emitted no events");
        let kinds: BTreeSet<String> = ledger
            .events()
            .iter()
            .map(|e| e.kind.name().to_string())
            .collect();
        assert!(
            kinds.len() >= 2,
            "{label}: ledger too uniform to be a real boundary sweep: {kinds:?}"
        );

        let mut crashed = 0u64;
        for k in 1..=total {
            let ctx = format!("{label} @ boundary {k}/{total}");
            let mut wreck = torture_run(&policy, Some(k));
            // Disarm: the node is "replaced", the filesystem works again.
            wreck.cluster.take_faults();
            match std::mem::replace(&mut wreck.outcome, Err(String::new())) {
                // The boundary fell after the last filesystem write —
                // the run outlived the arming point and must be clean.
                Ok(sums) => assert_eq!(sums, golden, "{ctx}: survivor diverged"),
                Err(_) => {
                    crashed += 1;
                    let sums = restore_and_finish(&mut wreck, &ctx);
                    assert_eq!(sums, golden, "{ctx}: restore diverged");
                }
            }
        }
        assert!(
            crashed > 0,
            "{label}: no boundary actually tripped the crash gate"
        );
    }
}

/// Satellite: after any partition-heal schedule, exactly one writer
/// commits each generation. A writer holds the epoch it observed when
/// it last attached; failovers advance the vault epoch; a healed
/// (stale) writer's commit must be fenced and its staged dump deleted
/// — no double-commit, no orphan tmp file — at every point of the
/// [`CprPolicy`] lattice.
#[test]
fn partition_heal_commits_each_generation_exactly_once() {
    qcheck(
        "partition_heal_commits_each_generation_exactly_once",
        24,
        |g: &mut Gen| {
            let mut policy = CprPolicy::sequential();
            if g.bool() {
                policy = CprPolicy::pipelined();
            }
            let pipelined = policy.pipelined;
            policy = policy.incremental(g.bool() && pipelined);
            policy = policy.dedup(g.bool());
            if g.bool() && pipelined {
                policy = policy.live(true);
            }

            let (script, _bounds) = torture_script();
            let mut cluster = Cluster::with_standard_nodes(1);
            let node = cluster.node_ids()[0];
            let mut session = launch(&mut cluster, node, script);
            let mut vault = DumpVault::new("/local/fence", "/nfs/fence", 3);

            // The writer's view of the vault epoch: refreshed when it
            // (re)attaches, stale after a failover it has not seen.
            let mut held = vault.epoch();
            let mut committed: Vec<u64> = Vec::new();
            let mut fenced_stages: Vec<String> = Vec::new();

            for _ in 0..g.usize_in(4, 10) {
                match g.usize_in(0, 2) {
                    // Failover elsewhere: the vault epoch advances but
                    // this writer does not hear about it (partition).
                    0 => {
                        vault.advance_epoch();
                    }
                    // The partition heals: the writer re-attaches and
                    // observes the current epoch.
                    1 => {
                        held = vault.epoch();
                    }
                    // The writer stages a dump and tries to commit
                    // under whatever epoch it still holds.
                    _ => {
                        let stage = vault.stage_path();
                        let out = session
                            .checkpoint_with_policy(&mut cluster, &stage, &policy)
                            .expect("stage");
                        if policy.live {
                            session.complete_live_drain(&mut cluster).expect("drain");
                        }
                        let stale = held != vault.epoch();
                        let res = vault.commit_fenced(&mut cluster, session.pid, &out.path, held);
                        if stale {
                            match res {
                                Err(CommitError::Fenced { held: h, current }) => {
                                    assert_eq!(h, held);
                                    assert_eq!(current, vault.epoch());
                                }
                                other => {
                                    panic!("stale writer was not fenced: {other:?}")
                                }
                            }
                            assert!(
                                cluster.peek_file_on(node, &out.path).is_none(),
                                "fenced stage {} survived as an orphan",
                                out.path
                            );
                            fenced_stages.push(out.path);
                        } else {
                            let generation = res.expect("current-epoch commit was refused");
                            committed.push(generation.gen);
                        }
                        vault.take_retired_paths();
                    }
                }
            }

            // Every committed generation number is unique and
            // consecutive: a fenced writer never burned or reused one.
            for (i, gen) in committed.iter().enumerate() {
                assert_eq!(*gen, i as u64, "generation numbers not dense");
            }
            // The vault retains the newest `keep` of them, and no
            // fenced staging path is a live replica.
            let retained = vault.generations().len();
            assert_eq!(retained, committed.len().min(3));
            for g in vault.generations() {
                assert!(
                    cluster.peek_file_on(node, &g.primary).is_some(),
                    "retained primary {} missing",
                    g.primary
                );
            }
            session.kill(&mut cluster);
        },
    );
}
